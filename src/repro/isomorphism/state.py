"""Search state for the VF2-style subgraph-isomorphism matcher.

The state tracks a partial injective mapping from *pattern-graph* nodes to
*target-graph* nodes together with the reverse mapping, and offers the
feasibility checks of the VF2 family: semantic compatibility (labels/kinds)
and syntactic consistency (every already-mapped neighbour must be connected
in the same way in the target).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Set, Tuple

from ..core.graph import Graph
from ..core.triples import GraphNode, Literal, is_entity_ref

#: Node-compatibility predicate: (pattern graph, pattern node, target graph, target node) -> bool
NodeCompatibility = Callable[[Graph, GraphNode, Graph, GraphNode], bool]


def default_node_compatibility(
    pattern_graph: Graph, pattern_node: GraphNode, target_graph: Graph, target_node: GraphNode
) -> bool:
    """Entities map to entities of the same type; values map to equal values."""
    if isinstance(pattern_node, Literal):
        return isinstance(target_node, Literal) and pattern_node == target_node
    if not is_entity_ref(target_node):
        return False
    return pattern_graph.entity_type(pattern_node) == target_graph.entity_type(target_node)


@dataclass
class MatchState:
    """A partial injective mapping between two graphs' nodes."""

    pattern_graph: Graph
    target_graph: Graph
    node_compatible: NodeCompatibility = default_node_compatibility
    forward: Dict[GraphNode, GraphNode] = field(default_factory=dict)
    backward: Dict[GraphNode, GraphNode] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # mapping manipulation
    # ------------------------------------------------------------------ #

    def is_mapped(self, pattern_node: GraphNode) -> bool:
        return pattern_node in self.forward

    def is_used(self, target_node: GraphNode) -> bool:
        return target_node in self.backward

    def add(self, pattern_node: GraphNode, target_node: GraphNode) -> None:
        self.forward[pattern_node] = target_node
        self.backward[target_node] = pattern_node

    def remove(self, pattern_node: GraphNode) -> None:
        target = self.forward.pop(pattern_node, None)
        if target is not None:
            self.backward.pop(target, None)

    def __len__(self) -> int:
        return len(self.forward)

    def as_mapping(self) -> Dict[GraphNode, GraphNode]:
        return dict(self.forward)

    # ------------------------------------------------------------------ #
    # feasibility
    # ------------------------------------------------------------------ #

    def feasible(self, pattern_node: GraphNode, target_node: GraphNode) -> bool:
        """Can *pattern_node* be mapped to *target_node* in this state?"""
        if self.is_mapped(pattern_node) or self.is_used(target_node):
            return False
        if not self.node_compatible(
            self.pattern_graph, pattern_node, self.target_graph, target_node
        ):
            return False
        return self._edges_consistent(pattern_node, target_node)

    def _edges_consistent(self, pattern_node: GraphNode, target_node: GraphNode) -> bool:
        """Every mapped neighbour of *pattern_node* must be mirrored in the target."""
        if is_entity_ref(pattern_node):
            for triple in self.pattern_graph.out_triples(pattern_node):
                mapped_obj = self.forward.get(triple.obj)
                if mapped_obj is None:
                    continue
                if not is_entity_ref(target_node):
                    return False
                if not self.target_graph.has_triple(
                    target_node, triple.predicate, mapped_obj
                ):
                    return False
        for triple in self.pattern_graph.in_triples(pattern_node):
            mapped_subject = self.forward.get(triple.subject)
            if mapped_subject is None:
                continue
            if not is_entity_ref(mapped_subject):
                return False
            if not self.target_graph.has_triple(
                mapped_subject, triple.predicate, target_node
            ):
                return False
        return True

    # ------------------------------------------------------------------ #
    # verification (used once a mapping is complete)
    # ------------------------------------------------------------------ #

    def covers_all_pattern_triples(self) -> bool:
        """Does the (complete) mapping send every pattern triple into the target?"""
        for triple in self.pattern_graph.triples():
            subject = self.forward.get(triple.subject)
            obj = self.forward.get(triple.obj)
            if subject is None or obj is None:
                return False
            if not is_entity_ref(subject):
                return False
            if not self.target_graph.has_triple(subject, triple.predicate, obj):
                return False
        return True
