"""Compiled VF2 search over :class:`~repro.storage.snapshot.GraphSnapshot`.

When the target of a :class:`~repro.isomorphism.vf2.VF2Matcher` is a snapshot
(and node compatibility is the default), the search runs here in pure integer
space: the pattern graph is compiled once into index arrays, candidate sets
are frozensets of interned target ids intersected via the snapshot's CSR-
derived adjacency, and feasibility never hashes a node object.

The search replays the dict path *exactly*: the same most-constrained-first
node order (ties broken by pattern-node repr), and the same
``sorted(candidates, key=repr)`` branch order via the snapshot's
precomputed :meth:`~repro.storage.snapshot.GraphSnapshot.repr_rank` — so the
two paths yield identical mappings in the identical order with identical
search statistics, which the test suite asserts.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..core.graph import Graph
from ..core.triples import GraphNode, Literal, is_entity_ref
from ..exceptions import UnknownEntityError
from ..storage.snapshot import GraphSnapshot

_EMPTY: FrozenSet[int] = frozenset()


class CompiledPattern:
    """A pattern graph compiled against one target snapshot."""

    __slots__ = (
        "snapshot",
        "nodes",
        "index",
        "is_entity",
        "out_edges",
        "in_edges",
        "adjacent",
        "domains",
        "triples",
    )

    def __init__(self, pattern_graph: Graph, snapshot: GraphSnapshot) -> None:
        self.snapshot = snapshot
        nodes: List[GraphNode] = list(pattern_graph.entity_ids())
        nodes.extend(sorted(pattern_graph.value_nodes(), key=repr))
        self.nodes = nodes
        self.index = {node: position for position, node in enumerate(nodes)}
        self.is_entity = [is_entity_ref(node) for node in nodes]
        self.out_edges: List[List[Tuple[int, int]]] = [[] for _ in nodes]
        self.in_edges: List[List[Tuple[int, int]]] = [[] for _ in nodes]
        self.adjacent: List[List[int]] = [[] for _ in nodes]
        self.triples: List[Tuple[int, int, int]] = []
        for triple in pattern_graph.triples():
            subject = self.index[triple.subject]
            obj = self.index[triple.obj]
            pred = snapshot.pred_id(triple.predicate)
            self.out_edges[subject].append((pred, obj))
            self.in_edges[obj].append((pred, subject))
            self.adjacent[subject].append(obj)
            self.adjacent[obj].append(subject)
            self.triples.append((subject, pred, obj))
        # label-based initial domains, mirroring initial_candidates():
        # entities -> the target's contiguous type bucket, literals -> the
        # equal interned value node (or nothing)
        self.domains: List[FrozenSet[int]] = []
        for node in nodes:
            if isinstance(node, Literal):
                mapped = snapshot.id_of(node)
                self.domains.append(frozenset((mapped,)) if mapped is not None else _EMPTY)
            else:
                lo, hi = snapshot.type_range(pattern_graph.entity_type(node))
                self.domains.append(frozenset(range(lo, hi)))


class CompiledVF2:
    """Integer-space twin of the VF2 recursion in :mod:`repro.isomorphism.vf2`."""

    def __init__(
        self,
        pattern: CompiledPattern,
        stats,
        anchors: Optional[Dict[GraphNode, GraphNode]] = None,
    ) -> None:
        self._pattern = pattern
        self._snapshot = pattern.snapshot
        self._stats = stats
        self._anchors = dict(anchors or {})
        self._forward: List[Optional[int]] = [None] * len(pattern.nodes)
        self._used: set = set()

    # ------------------------------------------------------------------ #
    # the search
    # ------------------------------------------------------------------ #

    def iter_mappings(self) -> Iterator[Dict[GraphNode, GraphNode]]:
        pattern = self._pattern
        for pattern_node, target_node in self._anchors.items():
            position = pattern.index.get(pattern_node)
            if position is None:
                # the dict path's compatibility check consults the pattern
                # graph's entity table for entity-ref anchors and raises
                if is_entity_ref(pattern_node):
                    raise UnknownEntityError(pattern_node)
                return
            target_id = self._snapshot.id_of(target_node)
            if target_id is None:
                # mirrored from default_node_compatibility: an unknown
                # entity-ref target raises (target_graph.entity_type), an
                # unknown value or a target for a literal node just fails
                if pattern.is_entity[position] and is_entity_ref(target_node):
                    raise UnknownEntityError(str(target_node))
                return
            if not self._feasible(position, target_id):
                return
            self._forward[position] = target_id
            self._used.add(target_id)
        yield from self._search()

    def _search(self) -> Iterator[Dict[GraphNode, GraphNode]]:
        self._stats.states_visited += 1
        position = self._next_pattern_node()
        if position is None:
            if self._covers_all_triples():
                self._stats.solutions += 1
                yield self._decode_mapping()
            return
        snapshot = self._snapshot
        candidates = sorted(self._guided_candidates(position), key=snapshot.repr_rank)
        for candidate in candidates:
            self._stats.candidates_tried += 1
            if not self._feasible(position, candidate):
                continue
            self._forward[position] = candidate
            self._used.add(candidate)
            yield from self._search()
            self._forward[position] = None
            self._used.discard(candidate)

    # ------------------------------------------------------------------ #
    # candidate generation / ordering (mirrors isomorphism.candidates)
    # ------------------------------------------------------------------ #

    def _guided_candidates(self, position: int) -> FrozenSet[int]:
        pattern = self._pattern
        snapshot = self._snapshot
        forward = self._forward
        num_entities = snapshot.num_entities
        candidates: Optional[FrozenSet[int]] = None
        if pattern.is_entity[position]:
            for pred, obj in pattern.out_edges[position]:
                mapped_obj = forward[obj]
                if mapped_obj is None:
                    continue
                found = snapshot.subjects_ids(mapped_obj, pred)
                candidates = found if candidates is None else candidates & found
                if not candidates:
                    return _EMPTY
        for pred, subject in pattern.in_edges[position]:
            mapped_subject = forward[subject]
            if mapped_subject is None:
                continue
            if mapped_subject >= num_entities:
                return _EMPTY
            found = snapshot.objects_ids(mapped_subject, pred)
            candidates = found if candidates is None else candidates & found
            if not candidates:
                return _EMPTY
        if candidates is None:
            candidates = pattern.domains[position]
        return candidates

    def _next_pattern_node(self) -> Optional[int]:
        pattern = self._pattern
        forward = self._forward
        unmapped = [p for p in range(len(pattern.nodes)) if forward[p] is None]
        if not unmapped:
            return None
        adjacent = [
            p
            for p in unmapped
            if any(forward[nbr] is not None for nbr in pattern.adjacent[p])
        ]
        pool = adjacent if adjacent else unmapped
        return min(
            pool, key=lambda p: (len(self._guided_candidates(p)), repr(pattern.nodes[p]))
        )

    # ------------------------------------------------------------------ #
    # feasibility (mirrors MatchState.feasible)
    # ------------------------------------------------------------------ #

    def _feasible(self, position: int, target_id: int) -> bool:
        if self._forward[position] is not None or target_id in self._used:
            return False
        # default node compatibility == membership of the label-based domain
        if target_id not in self._pattern.domains[position]:
            return False
        return self._edges_consistent(position, target_id)

    def _edges_consistent(self, position: int, target_id: int) -> bool:
        pattern = self._pattern
        snapshot = self._snapshot
        forward = self._forward
        num_entities = snapshot.num_entities
        if pattern.is_entity[position]:
            for pred, obj in pattern.out_edges[position]:
                mapped_obj = forward[obj]
                if mapped_obj is None:
                    continue
                if target_id >= num_entities:
                    return False
                if mapped_obj not in snapshot.objects_ids(target_id, pred):
                    return False
        for pred, subject in pattern.in_edges[position]:
            mapped_subject = forward[subject]
            if mapped_subject is None:
                continue
            if mapped_subject >= num_entities:
                return False
            if target_id not in snapshot.objects_ids(mapped_subject, pred):
                return False
        return True

    def _covers_all_triples(self) -> bool:
        snapshot = self._snapshot
        forward = self._forward
        num_entities = snapshot.num_entities
        for subject, pred, obj in self._pattern.triples:
            mapped_subject = forward[subject]
            mapped_obj = forward[obj]
            if mapped_subject is None or mapped_obj is None:
                return False
            if mapped_subject >= num_entities:
                return False
            if mapped_obj not in snapshot.objects_ids(mapped_subject, pred):
                return False
        return True

    def _decode_mapping(self) -> Dict[GraphNode, GraphNode]:
        node_at = self._snapshot.node_at
        return {
            pattern_node: node_at(self._forward[position])
            for position, pattern_node in enumerate(self._pattern.nodes)
        }
