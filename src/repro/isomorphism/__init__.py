"""From-scratch subgraph-isomorphism machinery (VF2-style matcher)."""

from .compiled import CompiledPattern, CompiledVF2
from .state import MatchState, default_node_compatibility
from .vf2 import (
    VF2Matcher,
    VF2Statistics,
    brute_force_isomorphisms,
    is_subgraph_isomorphic,
    subgraph_isomorphisms,
)

__all__ = [
    "CompiledPattern",
    "CompiledVF2",
    "MatchState",
    "VF2Matcher",
    "VF2Statistics",
    "brute_force_isomorphisms",
    "default_node_compatibility",
    "is_subgraph_isomorphic",
    "subgraph_isomorphisms",
]
