"""A from-scratch VF2-style subgraph-isomorphism matcher.

This is the general-purpose matcher the paper's baseline ``EMVF2MR`` builds
on: it enumerates *all* injective mappings from a pattern graph into a target
graph (subgraph isomorphism, not induced), with pluggable node compatibility.
It is deliberately independent from the key-specific guided evaluator of
:mod:`repro.core.eval_guided`, and the test suite cross-checks the two (and a
brute-force matcher) on small graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..core.graph import Graph
from ..core.triples import GraphNode
from ..storage.snapshot import GraphSnapshot
from .candidates import guided_candidates, next_pattern_node
from .compiled import CompiledPattern, CompiledVF2
from .state import MatchState, NodeCompatibility, default_node_compatibility

#: A complete mapping from pattern nodes to target nodes.
Mapping = Dict[GraphNode, GraphNode]


@dataclass
class VF2Statistics:
    """Counters describing a matcher run (consumed by reports and benchmarks)."""

    states_visited: int = 0
    candidates_tried: int = 0
    solutions: int = 0

    def merge(self, other: "VF2Statistics") -> None:
        self.states_visited += other.states_visited
        self.candidates_tried += other.candidates_tried
        self.solutions += other.solutions


class VF2Matcher:
    """Enumerates subgraph isomorphisms from ``pattern_graph`` into ``target_graph``."""

    def __init__(
        self,
        pattern_graph: Graph,
        target_graph: Graph,
        node_compatible: NodeCompatibility = default_node_compatibility,
        anchors: Optional[Mapping] = None,
    ) -> None:
        """``anchors`` optionally pre-maps pattern nodes to target nodes."""
        self._pattern_graph = pattern_graph
        self._target_graph = target_graph
        self._node_compatible = node_compatible
        self._anchors = dict(anchors or {})
        self.stats = VF2Statistics()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def iter_mappings(self) -> Iterator[Mapping]:
        """Yield every complete mapping (lazily).

        When the target is a :class:`~repro.storage.snapshot.GraphSnapshot`
        (and node compatibility is the default), the search runs on the
        compiled integer-space path — same mappings, same order, same
        statistics, measured several times faster (see
        ``benchmarks/bench_snapshot_core.py``).
        """
        if (
            isinstance(self._target_graph, GraphSnapshot)
            and self._node_compatible is default_node_compatibility
        ):
            compiled = CompiledPattern(self._pattern_graph, self._target_graph)
            yield from CompiledVF2(compiled, self.stats, self._anchors).iter_mappings()
            return
        state = MatchState(
            self._pattern_graph, self._target_graph, self._node_compatible
        )
        for pattern_node, target_node in self._anchors.items():
            if not state.feasible(pattern_node, target_node):
                return
            state.add(pattern_node, target_node)
        yield from self._search(state)

    def find_all(self, limit: Optional[int] = None) -> List[Mapping]:
        """All mappings (optionally up to *limit*)."""
        found: List[Mapping] = []
        for mapping in self.iter_mappings():
            found.append(mapping)
            if limit is not None and len(found) >= limit:
                break
        return found

    def exists(self) -> bool:
        """True when at least one mapping exists."""
        for _ in self.iter_mappings():
            return True
        return False

    def count(self) -> int:
        """The number of distinct mappings."""
        return sum(1 for _ in self.iter_mappings())

    # ------------------------------------------------------------------ #
    # recursion
    # ------------------------------------------------------------------ #

    def _search(self, state: MatchState) -> Iterator[Mapping]:
        self.stats.states_visited += 1
        pattern_node = next_pattern_node(state)
        if pattern_node is None:
            if state.covers_all_pattern_triples():
                self.stats.solutions += 1
                yield state.as_mapping()
            return
        for candidate in sorted(guided_candidates(state, pattern_node), key=repr):
            self.stats.candidates_tried += 1
            if not state.feasible(pattern_node, candidate):
                continue
            state.add(pattern_node, candidate)
            yield from self._search(state)
            state.remove(pattern_node)


def subgraph_isomorphisms(
    pattern_graph: Graph,
    target_graph: Graph,
    anchors: Optional[Mapping] = None,
    limit: Optional[int] = None,
) -> List[Mapping]:
    """Convenience wrapper: all subgraph isomorphisms of *pattern_graph* in *target_graph*."""
    return VF2Matcher(pattern_graph, target_graph, anchors=anchors).find_all(limit=limit)


def is_subgraph_isomorphic(
    pattern_graph: Graph, target_graph: Graph, anchors: Optional[Mapping] = None
) -> bool:
    """True when *pattern_graph* embeds into *target_graph*."""
    return VF2Matcher(pattern_graph, target_graph, anchors=anchors).exists()


def brute_force_isomorphisms(
    pattern_graph: Graph, target_graph: Graph
) -> List[Mapping]:
    """A tiny brute-force enumerator used to validate the VF2 matcher in tests.

    Exponential in the number of pattern nodes; only use on very small graphs.
    """
    import itertools

    pattern_nodes: List[GraphNode] = list(pattern_graph.entity_ids())
    pattern_nodes.extend(sorted(pattern_graph.value_nodes(), key=repr))
    target_nodes: List[GraphNode] = list(target_graph.entity_ids())
    target_nodes.extend(sorted(target_graph.value_nodes(), key=repr))

    found: List[Mapping] = []
    for images in itertools.permutations(target_nodes, len(pattern_nodes)):
        mapping = dict(zip(pattern_nodes, images))
        if not all(
            default_node_compatibility(pattern_graph, p, target_graph, t)
            for p, t in mapping.items()
        ):
            continue
        ok = True
        for triple in pattern_graph.triples():
            subject = mapping[triple.subject]
            obj = mapping[triple.obj]
            if not isinstance(subject, str) or not target_graph.has_triple(
                subject, triple.predicate, obj
            ):
                ok = False
                break
        if ok:
            found.append(mapping)
    return found
