"""Candidate generation and variable ordering for the VF2-style matcher.

Good orderings matter far more than the core recursion: the matcher picks the
next pattern node among those adjacent to already-mapped nodes, preferring
rare labels (fewest candidates) first, which is the standard "most constrained
variable" heuristic also used by TurboIso-style engines.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..core.graph import Graph
from ..core.triples import GraphNode, Literal, is_entity_ref
from .state import MatchState


def initial_candidates(
    pattern_graph: Graph, target_graph: Graph, pattern_node: GraphNode
) -> Set[GraphNode]:
    """All target nodes that could possibly match *pattern_node* (no context)."""
    if isinstance(pattern_node, Literal):
        return {pattern_node} if pattern_node in target_graph.value_nodes() else set()
    etype = pattern_graph.entity_type(pattern_node)
    return set(target_graph.entities_of_type(etype))


def guided_candidates(state: MatchState, pattern_node: GraphNode) -> Set[GraphNode]:
    """Target candidates for *pattern_node* derived from mapped neighbours.

    When no neighbour of *pattern_node* is mapped yet the full label-based
    candidate set is returned.
    """
    pattern_graph = state.pattern_graph
    target_graph = state.target_graph
    candidates: Optional[Set[GraphNode]] = None

    if is_entity_ref(pattern_node):
        for triple in pattern_graph.out_triples(pattern_node):
            mapped_obj = state.forward.get(triple.obj)
            if mapped_obj is None:
                continue
            found = set(target_graph.subjects(triple.predicate, mapped_obj))
            candidates = found if candidates is None else candidates & found
            if not candidates:
                return set()
    for triple in pattern_graph.in_triples(pattern_node):
        mapped_subject = state.forward.get(triple.subject)
        if mapped_subject is None:
            continue
        if not is_entity_ref(mapped_subject):
            return set()
        found = set(target_graph.objects(mapped_subject, triple.predicate))
        candidates = found if candidates is None else candidates & found
        if not candidates:
            return set()

    if candidates is None:
        candidates = initial_candidates(pattern_graph, target_graph, pattern_node)
    return candidates


def next_pattern_node(state: MatchState) -> Optional[GraphNode]:
    """The next unmapped pattern node to branch on (most constrained first)."""
    pattern_graph = state.pattern_graph
    unmapped = [
        node
        for node in _all_pattern_nodes(pattern_graph)
        if not state.is_mapped(node)
    ]
    if not unmapped:
        return None
    # prefer nodes adjacent to the current partial mapping
    adjacent = [n for n in unmapped if _touches_mapping(state, n)]
    pool = adjacent if adjacent else unmapped
    return min(pool, key=lambda n: (len(guided_candidates(state, n)), repr(n)))


def _all_pattern_nodes(pattern_graph: Graph) -> List[GraphNode]:
    nodes: List[GraphNode] = list(pattern_graph.entity_ids())
    nodes.extend(sorted(pattern_graph.value_nodes(), key=repr))
    return nodes


def _touches_mapping(state: MatchState, pattern_node: GraphNode) -> bool:
    for neighbor in state.pattern_graph.neighbors(pattern_node):
        if state.is_mapped(neighbor):
            return True
    return False
