"""Compiled, immutable read layer under the matching hot paths.

The mutable :class:`~repro.core.graph.Graph` stays the single source of
truth for writes; this package compiles it into a :class:`GraphSnapshot` —
an interned, CSR-backed view that every read-side consumer (d-neighbourhood
extraction, candidate generation, the VF2 feasibility layer, the product
graph, the MR mappers and the VC supersteps) shares.  A snapshot is built
once per :attr:`Graph.version` and cached by
:class:`~repro.api.session.MatchSession`; the parallel runtimes pickle the
compact arrays once per worker instead of re-shipping dict-of-dict indexes.

The persistence layer (:mod:`repro.storage.store`) adds a versioned binary
on-disk format for snapshots and a :class:`SnapshotStore` directory cache
keyed by graph content fingerprint: cold starts ``mmap``-load the arrays
instead of rebuilding them, and store-backed snapshots pickle as path stubs
so process pools ship a file path, not the arrays.
"""

from .neighborhoods import SnapshotNeighborhoodIndex
from .snapshot import GraphSnapshot
from .store import (
    FORMAT_VERSION,
    SNAPSHOT_SUFFIX,
    SnapshotStore,
    as_snapshot_store,
    fingerprint_of,
    graph_fingerprint,
    read_snapshot,
    snapshot_info,
    verify_snapshot,
    write_snapshot,
)

__all__ = [
    "FORMAT_VERSION",
    "SNAPSHOT_SUFFIX",
    "GraphSnapshot",
    "SnapshotNeighborhoodIndex",
    "SnapshotStore",
    "as_snapshot_store",
    "fingerprint_of",
    "graph_fingerprint",
    "read_snapshot",
    "snapshot_info",
    "verify_snapshot",
    "write_snapshot",
]
