"""Compiled, immutable read layer under the matching hot paths.

The mutable :class:`~repro.core.graph.Graph` stays the single source of
truth for writes; this package compiles it into a :class:`GraphSnapshot` —
an interned, CSR-backed view that every read-side consumer (d-neighbourhood
extraction, candidate generation, the VF2 feasibility layer, the product
graph, the MR mappers and the VC supersteps) shares.  A snapshot is built
once per :attr:`Graph.version` and cached by
:class:`~repro.api.session.MatchSession`; the parallel runtimes pickle the
compact arrays once per worker instead of re-shipping dict-of-dict indexes.
"""

from .neighborhoods import SnapshotNeighborhoodIndex
from .snapshot import GraphSnapshot

__all__ = ["GraphSnapshot", "SnapshotNeighborhoodIndex"]
