"""A ``NeighborhoodIndex`` that extracts d-neighbourhoods in integer space.

Same contract as :class:`~repro.core.neighborhood.NeighborhoodIndex` (node
*sets* in, node *sets* out, clone/restrict/evict semantics unchanged), but:

* the BFS runs over the snapshot's CSR arrays
  (:meth:`GraphSnapshot.neighborhood_ids`) instead of hashing node objects
  edge by edge;
* pickling encodes every cached node set as a sorted array of interned ids —
  the compact payload the MR worker cache and the VC engine replicas ship
  once per worker — and decodes entries lazily on first use in the worker;
* :meth:`rebased` migrates still-fresh cache entries onto a rebuilt snapshot
  after a graph mutation (the session's journal-driven selective
  invalidation).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set

from ..core.key import KeySet
from ..core.neighborhood import NeighborhoodIndex, radius_per_type
from ..core.triples import GraphNode
from .snapshot import GraphSnapshot


class SnapshotNeighborhoodIndex(NeighborhoodIndex):
    """d-neighbourhood cache backed by a :class:`GraphSnapshot`."""

    def __init__(self, snapshot: GraphSnapshot, keys: KeySet) -> None:
        self._snapshot = snapshot
        self._graph = snapshot  # read surface only; satisfies the base class
        self._radius = radius_per_type(keys)
        self._cache: Dict[str, Set[GraphNode]] = {}
        # entries arriving through pickle stay id-encoded until first use
        self._encoded: Dict[str, object] = {}

    @property
    def snapshot(self) -> GraphSnapshot:
        return self._snapshot

    # ------------------------------------------------------------------ #
    # cache access (integer-space BFS)
    # ------------------------------------------------------------------ #

    def nodes(self, entity: str) -> Set[GraphNode]:
        cached = self._cache.get(entity)
        if cached is None:
            encoded = self._encoded.pop(entity, None)
            if encoded is not None:
                cached = self._snapshot.decode_ids(encoded)
            else:
                cached = self._snapshot.neighborhood_nodes(
                    entity, self.radius_for(entity)
                )
            self._cache[entity] = cached
        return cached

    def evict(self, entity: str) -> None:
        self._cache.pop(entity, None)
        self._encoded.pop(entity, None)

    def restrict(self, entity: str, allowed: Set[GraphNode]) -> None:
        current = self.nodes(entity)
        self._cache[entity] = (current & allowed) | {entity}
        self._encoded.pop(entity, None)

    def clone(self) -> "SnapshotNeighborhoodIndex":
        twin = object.__new__(SnapshotNeighborhoodIndex)
        twin._snapshot = self._snapshot
        twin._graph = self._snapshot
        twin._radius = dict(self._radius)
        twin._cache = dict(self._cache)
        twin._encoded = dict(self._encoded)
        return twin

    def rebased(
        self, snapshot: GraphSnapshot, evict: Iterable[str] = ()
    ) -> "SnapshotNeighborhoodIndex":
        """This index rebuilt over *snapshot*, dropping the *evict* entries.

        Cache entries that survive are node sets, which stay valid across
        snapshot rebuilds (only the *evicted* entities could have been staled
        by the mutation — the session computes that set from the journal).
        """
        twin = self.clone()
        twin._snapshot = snapshot
        twin._graph = snapshot
        for entity in evict:
            twin.evict(entity)
        # old-snapshot encodings cannot be decoded by the new snapshot
        for entity in list(twin._encoded):
            twin._cache.setdefault(entity, self._snapshot.decode_ids(twin._encoded[entity]))
            del twin._encoded[entity]
        return twin

    def rekeyed(
        self, keys: KeySet, evict: Iterable[str] = ()
    ) -> "SnapshotNeighborhoodIndex":
        """This index under a new key set, dropping the *evict* entries.

        A key-set delta changes per-type radii only for the types whose keys
        changed; passing those types' entities as *evict* keeps every other
        cached neighbourhood (its type's radius — and the graph — are
        untouched, so the cached node set is still exact).
        """
        twin = self.clone()
        twin._radius = radius_per_type(keys)
        for entity in evict:
            twin.evict(entity)
        return twin

    # ------------------------------------------------------------------ #
    # accounting (include still-encoded entries)
    # ------------------------------------------------------------------ #

    def total_size(self) -> int:
        return sum(len(nodes) for nodes in self._cache.values()) + sum(
            len(ids) for ids in self._encoded.values()
        )

    def max_size(self) -> int:
        sizes = [len(nodes) for nodes in self._cache.values()]
        sizes.extend(len(ids) for ids in self._encoded.values())
        return max(sizes, default=0)

    def cached_entities(self) -> Set[str]:
        return set(self._cache.keys()) | set(self._encoded.keys())

    def __len__(self) -> int:
        return len(self.cached_entities())

    # ------------------------------------------------------------------ #
    # pickling: ship interned-id arrays, decode lazily in the worker
    # ------------------------------------------------------------------ #

    def __getstate__(self):
        encoded = dict(self._encoded)
        for entity, nodes in self._cache.items():
            encoded[entity] = self._snapshot.encode_nodes(nodes)
        return (self._snapshot, dict(self._radius), encoded)

    def __setstate__(self, state) -> None:
        snapshot, radius, encoded = state
        self._snapshot = snapshot
        self._graph = snapshot
        self._radius = radius
        self._cache = {}
        self._encoded = encoded
