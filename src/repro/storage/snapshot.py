"""``GraphSnapshot``: an immutable, interned, CSR-backed view of a ``Graph``.

The snapshot assigns every node a dense integer id:

* entity ids come first, sorted by ``(type, entity id)`` — so the entities of
  one type occupy a *contiguous id range* (the type bucket), and within a
  bucket ids follow the sorted entity-id order that
  :meth:`~repro.core.graph.Graph.entities_of_type` reports;
* value nodes (:class:`~repro.core.triples.Literal`) follow, sorted by repr.

Predicates are interned the same way.  Adjacency is stored in CSR form
(offset + column arrays over node ids): forward ``(pred, obj)`` runs per
subject, backward ``(pred, subj)`` runs per object, and a deduplicated
undirected neighbour list per node that drives the d-neighbourhood BFS in
pure integer space.

Two API surfaces coexist:

* the **read surface of Graph** (``entity_type``, ``objects``, ``subjects``,
  ``has_triple``, ``neighbors``, ...), duck-type compatible so every existing
  read-side consumer — the guided evaluator, the pairing fixpoint, the
  declarative matcher, the product graph — runs on a snapshot unchanged;
* an **integer-space surface** (``objects_ids``, ``subjects_ids``,
  ``neighborhood_ids``, ``type_range``, ``repr_rank``) used by the compiled
  hot paths (CSR BFS, the compiled VF2 matcher).

Pickling ships only the compact arrays and interning tables; the decoded
per-process lookup maps are rebuilt lazily on first use in each worker
(the once-per-worker cost the PR 2 shared-payload contract amortizes).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from heapq import merge as _heap_merge
from operator import itemgetter as _itemgetter
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.graph import Graph
from ..core.triples import Entity, GraphNode, Literal, Triple, is_entity_ref
from ..exceptions import UnknownEntityError

#: Array typecode for node/predicate ids and CSR offsets.
_ID = "q"

# Optional vectorization: the patch path translates whole id columns through
# a remap table and splices offset spans; numpy turns those per-element
# Python loops into C-level gathers.  Everything falls back to the stdlib
# when numpy is absent — the outputs are bit-identical either way.
try:  # pragma: no cover - exercised wherever numpy is installed
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def _np_ids(buf) -> "object":
    """A zero-copy int64 view of an id column (array or store memoryview)."""
    return _np.frombuffer(buf, dtype=_np.int64)

#: The empty candidate set returned for unknown (node, predicate) lookups.
_EMPTY_IDS: FrozenSet[int] = frozenset()
_EMPTY_NODES: FrozenSet[GraphNode] = frozenset()


def _copy_ids(dst: array, src, lo: int, hi: int, remap) -> None:
    """Append ``src[lo:hi]`` to *dst*, translating ids through *remap*.

    With ``remap=None`` (identity) the copy is a C-level splice — array
    slices for in-memory snapshots, a buffer copy for mmap-backed ones.
    """
    if lo == hi:
        return
    if remap is None:
        if isinstance(src, array):
            dst.extend(src[lo:hi])
        else:  # memoryview over a store mapping
            dst.frombytes(src[lo:hi].tobytes())
    elif _np is not None and isinstance(remap, _np.ndarray):
        dst.frombytes(remap[_np_ids(src)[lo:hi]].tobytes())
    else:
        dst.extend([remap[x] for x in src[lo:hi]])


def _fill_offsets(
    offsets: array, old_offsets, span_start: int, span_end: int,
    old_start: int, old_end: int, base: int,
) -> None:
    """Fill ``offsets[span_start+1 : span_end+1]`` from a copied old span.

    Spans cover *consecutive* old rows (``old_start`` .. ``old_end - 1``) by
    construction, so the new offsets are the old ones shifted by *base*.
    """
    if _np is not None and span_end - span_start > 8:
        shifted = _np_ids(old_offsets)[old_start + 1 : old_end + 1] + base
        offsets[span_start + 1 : span_end + 1] = array(_ID, shifted.tobytes())
        return
    for index in range(span_start, span_end):
        offsets[index + 1] = base + old_offsets[old_start + 1 + index - span_start]


def _splice_csr2(
    old_offsets, old_a, old_b, touched_rows, old_for_new, a_remap, b_remap, num_rows
) -> Tuple[array, array, array]:
    """Rebuild a two-column CSR by splicing old spans with recomputed rows.

    *touched_rows* maps new row ids to recomputed ``(a, b)`` pair lists;
    every other row is copied from its old row (``old_for_new`` gives the
    old id per new id, ``None`` meaning identity), batching maximal spans of
    consecutive old rows into single copies.
    """
    offsets = array(_ID, bytes(8 * (num_rows + 1)))
    new_a = array(_ID)
    new_b = array(_ID)
    total = 0
    row = 0
    while row < num_rows:
        pairs = touched_rows.get(row)
        if pairs is not None:
            for a, b in pairs:
                new_a.append(a)
                new_b.append(b)
            total += len(pairs)
            offsets[row + 1] = total
            row += 1
            continue
        span_start = row
        old_start = row if old_for_new is None else old_for_new[row]
        old_end = old_start + 1
        row += 1
        while row < num_rows and row not in touched_rows:
            old_id = row if old_for_new is None else old_for_new[row]
            if old_id != old_end:
                break
            old_end += 1
            row += 1
        lo, hi = old_offsets[old_start], old_offsets[old_end]
        _copy_ids(new_a, old_a, lo, hi, a_remap)
        _copy_ids(new_b, old_b, lo, hi, b_remap)
        base = total - lo
        _fill_offsets(offsets, old_offsets, span_start, row, old_start, old_end, base)
        total = base + hi
    return offsets, new_a, new_b


def _splice_csr1(
    old_offsets, old_targets, touched_rows, old_for_new, remap, num_rows
) -> Tuple[array, array]:
    """Single-column variant of :func:`_splice_csr2` (undirected adjacency)."""
    offsets = array(_ID, bytes(8 * (num_rows + 1)))
    targets = array(_ID)
    total = 0
    row = 0
    while row < num_rows:
        members = touched_rows.get(row)
        if members is not None:
            targets.extend(members)
            total += len(members)
            offsets[row + 1] = total
            row += 1
            continue
        span_start = row
        old_start = row if old_for_new is None else old_for_new[row]
        old_end = old_start + 1
        row += 1
        while row < num_rows and row not in touched_rows:
            old_id = row if old_for_new is None else old_for_new[row]
            if old_id != old_end:
                break
            old_end += 1
            row += 1
        lo, hi = old_offsets[old_start], old_offsets[old_end]
        _copy_ids(targets, old_targets, lo, hi, remap)
        base = total - lo
        _fill_offsets(offsets, old_offsets, span_start, row, old_start, old_end, base)
        total = base + hi
    return offsets, targets


def _csr(per_row: Sequence[Sequence[Tuple[int, int]]]) -> Tuple[array, array, array]:
    """Pack per-row ``(a, b)`` pair lists into offset + two column arrays."""
    firsts = array(_ID)
    seconds = array(_ID)
    total = 0
    offsets = array(_ID, [0] * (len(per_row) + 1))
    for row, pairs in enumerate(per_row):
        total += len(pairs)
        offsets[row + 1] = total
        for a, b in pairs:
            firsts.append(a)
            seconds.append(b)
    return offsets, firsts, seconds


class GraphSnapshot:
    """An immutable, array-backed compilation of one ``Graph`` version.

    Build with :meth:`GraphSnapshot.build`; the snapshot records the source
    graph's :attr:`~repro.core.graph.Graph.version` so caches can detect
    staleness through the mutation journal.  All write methods of ``Graph``
    are deliberately absent.
    """

    __slots__ = (
        # --- patch provenance (never pickled): table segments proven
        # byte-identical to the patch base, so the store's segment-level
        # patch writer skips re-serializing them ------------------------- #
        "_unchanged_tables",
        # --- pickled core: interning tables + CSR arrays ---------------- #
        "version",
        "_node_of",        # id -> node object (entities first, then literals)
        "_id_of",          # node object -> id
        "_num_entities",
        "_etype_of",       # entity id -> type string
        "_type_ranges",    # type -> (lo, hi) contiguous entity-id bucket
        "_pred_of",        # pred id -> predicate string
        "_pred_ids",       # predicate string -> pred id
        "_fwd_offsets", "_fwd_preds", "_fwd_objs",
        "_bwd_offsets", "_bwd_preds", "_bwd_subjs",
        "_und_offsets", "_und_targets",
        # inverted value index: per-predicate (literal id, subject id)
        # postings sorted by (pred, literal, subject) — the blocking layer's
        # flat-key fast path streams one predicate run in a single pass
        "_vindex_offsets", "_vindex_literals", "_vindex_subjects",
        "_num_triples",
        # --- per-process lazy decode (never pickled) -------------------- #
        "_obj_map",        # subject eid -> pred -> frozenset of object nodes
        "_subj_map",       # object node -> pred -> frozenset of subject eids
        "_neighbor_map",   # node -> frozenset of undirected neighbour nodes
        "_out_triples_map",
        "_in_triples_map",
        "_int_objects",    # (subject id, pred id) -> frozenset of object ids
        "_int_subjects",   # (object id, pred id) -> frozenset of subject ids
        "_adjacency",      # id -> tuple of undirected neighbour ids (BFS form)
        "_value_node_set",
        "_repr_ranks",     # id -> rank of the node in global repr order
        # --- snapshot-store backing (set by repro.storage.store) -------- #
        "_store_path",         # file this snapshot is attached to, or None
        "_store_fingerprint",  # content fingerprint recorded in that file
    )

    def __init__(self) -> None:  # pragma: no cover - use GraphSnapshot.build
        raise TypeError("use GraphSnapshot.build(graph) to construct snapshots")

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, graph: Graph) -> "GraphSnapshot":
        """Compile *graph* into a snapshot of its current version."""
        snap = object.__new__(cls)
        snap.version = graph.version

        entities = sorted(graph.entities(), key=lambda e: (e.etype, e.eid))
        literals = sorted(graph.value_nodes(), key=repr)
        node_of: List[GraphNode] = [e.eid for e in entities]
        node_of.extend(literals)
        snap._node_of = tuple(node_of)
        snap._id_of = {node: index for index, node in enumerate(node_of)}
        snap._num_entities = len(entities)
        snap._etype_of = tuple(e.etype for e in entities)

        type_ranges: Dict[str, Tuple[int, int]] = {}
        start = 0
        for index, entity in enumerate(entities):
            if index == 0 or entity.etype != entities[index - 1].etype:
                start = index
            type_ranges[entity.etype] = (start, index + 1)
        snap._type_ranges = type_ranges

        preds = sorted(graph.predicates())
        snap._pred_of = tuple(preds)
        snap._pred_ids = {pred: index for index, pred in enumerate(preds)}

        num_nodes = len(node_of)
        id_of = snap._id_of
        pred_ids = snap._pred_ids
        fwd: List[List[Tuple[int, int]]] = [[] for _ in range(num_nodes)]
        bwd: List[List[Tuple[int, int]]] = [[] for _ in range(num_nodes)]
        und: List[Set[int]] = [set() for _ in range(num_nodes)]
        num_entities = snap._num_entities
        postings: List[Tuple[int, int, int]] = []
        count = 0
        for triple in graph.triples():
            count += 1
            sid = id_of[triple.subject]
            oid = id_of[triple.obj]
            pid = pred_ids[triple.predicate]
            fwd[sid].append((pid, oid))
            bwd[oid].append((pid, sid))
            und[sid].add(oid)
            und[oid].add(sid)
            if oid >= num_entities:  # literal object: a value-index posting
                postings.append((pid, oid, sid))
        snap._num_triples = count
        for row in fwd:
            row.sort()
        for row in bwd:
            row.sort()
        snap._fwd_offsets, snap._fwd_preds, snap._fwd_objs = _csr(fwd)
        snap._bwd_offsets, snap._bwd_preds, snap._bwd_subjs = _csr(bwd)

        und_offsets = array(_ID, [0] * (num_nodes + 1))
        und_targets = array(_ID)
        total = 0
        for node, targets in enumerate(und):
            total += len(targets)
            und_offsets[node + 1] = total
            und_targets.extend(sorted(targets))
        snap._und_offsets = und_offsets
        snap._und_targets = und_targets

        postings.sort()
        vindex_offsets = array(_ID, [0] * (len(preds) + 1))
        vindex_literals = array(_ID)
        vindex_subjects = array(_ID)
        for pid, oid, sid in postings:
            vindex_offsets[pid + 1] += 1
            vindex_literals.append(oid)
            vindex_subjects.append(sid)
        for index in range(1, len(vindex_offsets)):
            vindex_offsets[index] += vindex_offsets[index - 1]
        snap._vindex_offsets = vindex_offsets
        snap._vindex_literals = vindex_literals
        snap._vindex_subjects = vindex_subjects

        snap._reset_lazy()
        return snap

    # ------------------------------------------------------------------ #
    # delta patching
    # ------------------------------------------------------------------ #

    def patched(self, graph: Graph, touched: Iterable[GraphNode]) -> "GraphSnapshot":
        """Compile *graph* by splicing this snapshot with a mutation delta.

        *touched* is the journal window (:meth:`Graph.touched_since`) between
        this snapshot's version and the live graph — a superset of every node
        whose interning or adjacency rows may have changed.  The result is
        **bit-identical** to ``GraphSnapshot.build(graph)``: the same
        canonical interning order (entities by ``(type, id)``, literals by
        repr) and the same array contents, which is what lets the store
        patch files segment-by-segment and keeps every downstream consumer
        (blocking vindex scans, compiled VF2 type ranges, placement keys)
        oblivious to how the snapshot was produced.

        Cost is O(|touched rows| + |V|) with small, mostly C-level constants
        (array splices, one remap pass) instead of ``build()``'s
        per-triple Python object work: new terms are interned into the old
        order by merge, surviving ids get a monotone old→new remap, and only
        the rows of touched nodes are recomputed from the live graph.
        """
        if self._vindex_offsets is None:  # pre-vindex pickle: nothing to splice
            return GraphSnapshot.build(graph)

        id_of = self._id_of
        node_of = self._node_of
        etype_of = self._etype_of
        num_entities = self._num_entities
        num_nodes = len(node_of)

        touched_set = set(touched)
        # A retype moves an interned id to another type bucket — the only
        # non-monotone id move a delta can cause.  Rows referencing the moved
        # id would re-sort around it, so its neighbours join the recompute
        # set (any *removed* neighbour edge already touched both endpoints).
        retype_neighbors: Set[GraphNode] = set()
        for node in touched_set:
            if is_entity_ref(node):
                old = id_of.get(node)
                if (
                    old is not None
                    and graph.has_entity(node)
                    and graph.entity_type(node) != etype_of[old]
                ):
                    retype_neighbors |= graph.neighbors(node)
        touched_set |= retype_neighbors

        touched_entities: List[str] = []
        touched_literals: List[Literal] = []
        for node in touched_set:
            if is_entity_ref(node):
                touched_entities.append(node)
            else:
                touched_literals.append(node)

        # -- classify the delta: dead old ids, new interned terms -------- #
        dead: Set[int] = set()
        ent_inserts: List[Tuple[str, str]] = []  # (etype, eid)
        lit_inserts: List[Literal] = []
        recompute_entities: List[str] = []
        recompute_literals: List[Literal] = []
        for eid in touched_entities:
            old = id_of.get(eid)
            if graph.has_entity(eid):
                recompute_entities.append(eid)
                etype = graph.entity_type(eid)
                if old is None:
                    ent_inserts.append((etype, eid))
                elif etype_of[old] != etype:  # retype: move to the new bucket
                    dead.add(old)
                    ent_inserts.append((etype, eid))
            elif old is not None:
                dead.add(old)
        for literal in touched_literals:
            old = id_of.get(literal)
            if graph.in_triples(literal):
                recompute_literals.append(literal)
                if old is None:
                    lit_inserts.append(literal)
            elif old is not None:
                dead.add(old)

        snap = object.__new__(GraphSnapshot)
        snap.version = graph.version

        ents_unchanged = not ent_inserts and not any(
            old < num_entities for old in dead
        )
        lits_unchanged = not lit_inserts and not any(
            old >= num_entities for old in dead
        )
        identity = ents_unchanged and lits_unchanged
        if identity:
            # no interning change: reuse every table object outright
            snap._node_of = node_of
            snap._id_of = id_of
            snap._num_entities = num_entities
            snap._etype_of = etype_of
            snap._type_ranges = self._type_ranges
            remap: Optional[List[int]] = None
            old_for_new: Optional[List[int]] = None
            new_num_nodes = num_nodes
        else:
            if ents_unchanged:
                # the steady-state ingest shape — only the literal block
                # changed: the entity prefix is copied wholesale and the old
                # tables (types, buckets) are reused object-for-object
                remap = list(range(num_entities)) + [-1] * (num_nodes - num_entities)
                old_for_new = list(range(num_entities))
                new_nodes = list(node_of[:num_entities])
                new_etypes: Optional[List[str]] = None
            else:
                remap = [-1] * num_nodes
                old_for_new = []
                new_nodes = []
                new_etypes = []
                # entity inserts: position in the OLD entity order (insert
                # before that old id), bisecting the sorted (type, id) buckets
                type_starts = sorted(
                    (etype, span[0]) for etype, span in self._type_ranges.items()
                )
                positioned: List[Tuple[int, str, str]] = []
                for etype, eid in ent_inserts:
                    span = self._type_ranges.get(etype)
                    if span is not None:
                        pos = bisect_left(node_of, eid, span[0], span[1])
                    else:
                        at = bisect_left(type_starts, (etype, -1))
                        pos = type_starts[at][1] if at < len(type_starts) else num_entities
                    positioned.append((pos, etype, eid))
                positioned.sort()
                emit = 0
                for pos, etype, eid in positioned:
                    for oid in range(emit, pos):
                        if oid not in dead:
                            remap[oid] = len(new_nodes)
                            old_for_new.append(oid)
                            new_nodes.append(node_of[oid])
                            new_etypes.append(etype_of[oid])
                    emit = pos
                    old_for_new.append(-1)
                    new_nodes.append(eid)
                    new_etypes.append(etype)
                for oid in range(emit, num_entities):
                    if oid not in dead:
                        remap[oid] = len(new_nodes)
                        old_for_new.append(oid)
                        new_nodes.append(node_of[oid])
                        new_etypes.append(etype_of[oid])
            new_num_entities = len(new_nodes)

            # literal inserts: bisect the old repr order with lazy reprs
            def _lit_pos(key: str) -> int:
                lo, hi = num_entities, num_nodes
                while lo < hi:
                    mid = (lo + hi) // 2
                    if repr(node_of[mid]) < key:
                        lo = mid + 1
                    else:
                        hi = mid
                return lo

            lit_positioned = sorted(
                (_lit_pos(repr(literal)), repr(literal), literal)
                for literal in lit_inserts
            )
            #: first new id whose interning differs from the old literal
            #: block (feeds the incremental _id_of rebuild below)
            changed_from: Optional[int] = None
            emit = num_entities
            for pos, _key, literal in lit_positioned:
                if dead:
                    for oid in range(emit, pos):
                        if oid in dead:
                            if changed_from is None:
                                changed_from = len(new_nodes)
                        else:
                            remap[oid] = len(new_nodes)
                            old_for_new.append(oid)
                            new_nodes.append(node_of[oid])
                else:
                    shift = len(new_nodes) - emit
                    remap[emit:pos] = range(emit + shift, pos + shift)
                    old_for_new.extend(range(emit, pos))
                    new_nodes.extend(node_of[emit:pos])
                emit = pos
                if changed_from is None:
                    changed_from = len(new_nodes)
                old_for_new.append(-1)
                new_nodes.append(literal)
            if dead:
                for oid in range(emit, num_nodes):
                    if oid in dead:
                        if changed_from is None:
                            changed_from = len(new_nodes)
                    else:
                        remap[oid] = len(new_nodes)
                        old_for_new.append(oid)
                        new_nodes.append(node_of[oid])
            else:
                shift = len(new_nodes) - emit
                remap[emit:num_nodes] = range(emit + shift, num_nodes + shift)
                old_for_new.extend(range(emit, num_nodes))
                new_nodes.extend(node_of[emit:num_nodes])

            snap._node_of = tuple(new_nodes)
            snap._num_entities = new_num_entities
            if new_etypes is None:
                # entity interning untouched: the old id map survives from
                # the front; only the shifted literal tail is rewritten
                id_map = dict(id_of)
                for old in dead:
                    id_map.pop(node_of[old], None)
                if changed_from is not None:
                    for index in range(changed_from, len(new_nodes)):
                        id_map[new_nodes[index]] = index
                snap._id_of = id_map
                snap._etype_of = etype_of
                snap._type_ranges = self._type_ranges
            else:
                snap._id_of = {node: index for index, node in enumerate(new_nodes)}
                snap._etype_of = tuple(new_etypes)
                type_ranges: Dict[str, Tuple[int, int]] = {}
                start = 0
                for index, etype in enumerate(new_etypes):
                    if index == 0 or etype != new_etypes[index - 1]:
                        start = index
                    type_ranges[etype] = (start, index + 1)
                snap._type_ranges = type_ranges
            new_num_nodes = len(new_nodes)

        # -- predicates --------------------------------------------------- #
        new_preds = sorted(graph.predicates())
        preds_unchanged = list(self._pred_of) == new_preds
        if preds_unchanged:
            snap._pred_of = self._pred_of
            snap._pred_ids = self._pred_ids
            pred_remap: Optional[List[int]] = None
        else:
            snap._pred_of = tuple(new_preds)
            snap._pred_ids = {pred: index for index, pred in enumerate(new_preds)}
            pred_remap = [snap._pred_ids.get(pred, -1) for pred in self._pred_of]
        new_pred_ids = snap._pred_ids
        new_id_of = snap._id_of

        # -- recomputed rows for every touched, surviving node ------------ #
        fwd_rows: Dict[int, List[Tuple[int, int]]] = {}
        bwd_rows: Dict[int, List[Tuple[int, int]]] = {}
        und_rows: Dict[int, List[int]] = {}
        drop_subjects: Set[int] = set(dead)
        new_postings: List[Tuple[int, int, int]] = []
        for eid in recompute_entities:
            nid = new_id_of[eid]
            out_row: List[Tuple[int, int]] = []
            for triple in graph.out_triples(eid):
                oid = new_id_of[triple.obj]
                pid = new_pred_ids[triple.predicate]
                out_row.append((pid, oid))
                if oid >= snap._num_entities:
                    new_postings.append((pid, oid, nid))
            out_row.sort()
            fwd_rows[nid] = out_row
            bwd_rows[nid] = sorted(
                (new_pred_ids[t.predicate], new_id_of[t.subject])
                for t in graph.in_triples(eid)
            )
            und_rows[nid] = sorted(new_id_of[n] for n in graph.neighbors(eid))
            old = id_of.get(eid)
            if old is not None:
                drop_subjects.add(old)
        for literal in recompute_literals:
            nid = new_id_of[literal]
            fwd_rows[nid] = []
            bwd_rows[nid] = sorted(
                (new_pred_ids[t.predicate], new_id_of[t.subject])
                for t in graph.in_triples(literal)
            )
            und_rows[nid] = sorted(new_id_of[n] for n in graph.neighbors(literal))

        # id translation through the remap tables is the hot loop of a patch;
        # with numpy the splices gather whole columns at C speed instead
        splice_remap = remap
        splice_pred_remap = pred_remap
        if _np is not None:
            if remap is not None:
                splice_remap = _np.asarray(remap, dtype=_np.int64)
            if pred_remap is not None:
                splice_pred_remap = _np.asarray(pred_remap, dtype=_np.int64)

        snap._fwd_offsets, snap._fwd_preds, snap._fwd_objs = _splice_csr2(
            self._fwd_offsets, self._fwd_preds, self._fwd_objs,
            fwd_rows, old_for_new, splice_pred_remap, splice_remap, new_num_nodes,
        )
        snap._bwd_offsets, snap._bwd_preds, snap._bwd_subjs = _splice_csr2(
            self._bwd_offsets, self._bwd_preds, self._bwd_subjs,
            bwd_rows, old_for_new, splice_pred_remap, splice_remap, new_num_nodes,
        )
        snap._und_offsets, snap._und_targets = _splice_csr1(
            self._und_offsets, self._und_targets,
            und_rows, old_for_new, splice_remap, new_num_nodes,
        )

        # -- value index: filter touched subjects out, merge new postings - #
        new_postings.sort()
        vindex_offsets = array(_ID, bytes(8 * (len(new_preds) + 1)))
        vindex_literals = array(_ID)
        vindex_subjects = array(_ID)
        old_voffsets = self._vindex_offsets
        old_vlits = self._vindex_literals
        old_vsubjs = self._vindex_subjects
        old_run_of: Dict[int, int] = {}
        for old_pid in range(len(self._pred_of)):
            pid = old_pid if pred_remap is None else pred_remap[old_pid]
            if pid >= 0:
                old_run_of[pid] = old_pid
        cursor = 0
        total = 0
        num_new = len(new_postings)
        vec_lits = vec_subjs = vec_remap = vec_drop = None
        if _np is not None:
            vec_lits = _np_ids(old_vlits)
            vec_subjs = _np_ids(old_vsubjs)
            if remap is not None:
                vec_remap = (
                    splice_remap
                    if isinstance(splice_remap, _np.ndarray)
                    else _np.asarray(remap, dtype=_np.int64)
                )
            if drop_subjects:
                vec_drop = _np.fromiter(
                    drop_subjects, dtype=_np.int64, count=len(drop_subjects)
                )
        for pid in range(len(new_preds)):
            fresh: List[Tuple[int, int]] = []
            while cursor < num_new and new_postings[cursor][0] == pid:
                fresh.append(new_postings[cursor][1:])
                cursor += 1
            run: List[Tuple[int, int]] = []
            old_pid = old_run_of.get(pid)
            if old_pid is not None:
                lo, hi = old_voffsets[old_pid], old_voffsets[old_pid + 1]
                if vec_lits is not None:
                    # vectorized run: filter dropped subjects and translate
                    # ids with C-level gathers; untouched runs splice straight
                    # into the output columns without a Python-level pass
                    lits = vec_lits[lo:hi]
                    subjs = vec_subjs[lo:hi]
                    if vec_drop is not None and len(subjs):
                        keep = _np.isin(subjs, vec_drop, invert=True)
                        if not keep.all():
                            lits = lits[keep]
                            subjs = subjs[keep]
                    if vec_remap is not None and len(lits):
                        lits = vec_remap[lits]
                        subjs = vec_remap[subjs]
                    if not fresh:
                        vindex_literals.frombytes(
                            _np.ascontiguousarray(lits).tobytes()
                        )
                        vindex_subjects.frombytes(
                            _np.ascontiguousarray(subjs).tobytes()
                        )
                        total += len(lits)
                        vindex_offsets[pid + 1] = total
                        continue
                    run = list(zip(lits.tolist(), subjs.tolist()))
                elif remap is None:
                    for index in range(lo, hi):
                        sid = old_vsubjs[index]
                        if sid not in drop_subjects:
                            run.append((old_vlits[index], sid))
                else:
                    for index in range(lo, hi):
                        sid = old_vsubjs[index]
                        if sid not in drop_subjects:
                            run.append((remap[old_vlits[index]], remap[sid]))
            if fresh:
                run = list(_heap_merge(run, fresh))
            for lit_id, sid in run:
                vindex_literals.append(lit_id)
                vindex_subjects.append(sid)
            total += len(run)
            vindex_offsets[pid + 1] = total
        snap._vindex_offsets = vindex_offsets
        snap._vindex_literals = vindex_literals
        snap._vindex_subjects = vindex_subjects

        snap._num_triples = graph.num_triples
        if len(snap._fwd_objs) != snap._num_triples:
            raise RuntimeError(
                f"snapshot patch drifted: {len(snap._fwd_objs)} forward columns "
                f"for {snap._num_triples} triples (delta window inconsistent)"
            )
        snap._reset_lazy()
        snap._unchanged_tables = frozenset(
            (("entity_offsets", "entity_blob") if ents_unchanged else ())
            + (
                ("literal_tags", "literal_offsets", "literal_blob")
                if lits_unchanged
                else ()
            )
            + (("pred_offsets", "pred_blob") if preds_unchanged else ())
        )
        return snap

    def _reset_lazy(self) -> None:
        self._unchanged_tables = frozenset()
        self._store_path = None
        self._store_fingerprint = None
        self._obj_map = None
        self._subj_map = None
        self._neighbor_map = None
        self._out_triples_map = None
        self._in_triples_map = None
        self._int_objects = None
        self._int_subjects = None
        self._adjacency = None
        self._value_node_set = None
        self._repr_ranks = None

    # ------------------------------------------------------------------ #
    # pickling: compact arrays only, decode maps rebuilt per process
    # ------------------------------------------------------------------ #

    # _id_of is deliberately absent: it is exactly {node: i for i, node in
    # enumerate(_node_of)} and is rebuilt on unpickle, so worker payloads
    # carry the interning table once, not twice.
    _PICKLED = (
        "version",
        "_node_of",
        "_num_entities",
        "_etype_of",
        "_type_ranges",
        "_pred_of",
        "_pred_ids",
        "_fwd_offsets", "_fwd_preds", "_fwd_objs",
        "_bwd_offsets", "_bwd_preds", "_bwd_subjs",
        "_und_offsets", "_und_targets",
        "_vindex_offsets", "_vindex_literals", "_vindex_subjects",
        "_num_triples",
    )

    def __getstate__(self) -> Dict[str, object]:
        state = {}
        for name in self._PICKLED:
            value = getattr(self, name)
            if isinstance(value, memoryview):
                # mmap-backed segments (snapshot-store loads) materialize
                # into plain arrays so detached pickling keeps working
                value = array(_ID, value)
            state[name] = value
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        # states pickled before the value index existed: degrade gracefully
        # (value_postings reports None and consumers fall back to traversal)
        for name in ("_vindex_offsets", "_vindex_literals", "_vindex_subjects"):
            if name not in state:
                object.__setattr__(self, name, None)
        self._id_of = {node: index for index, node in enumerate(self._node_of)}
        self._reset_lazy()

    def __reduce__(self):
        if self._store_path is not None:
            # attach-by-path: ship the store file path (a few hundred bytes),
            # not the arrays — the receiving process mmaps the same file, so
            # every worker on a machine shares one physical copy
            return (
                _attach_stored_snapshot,
                (self._store_path, self._store_fingerprint, self.version),
            )
        return (_restore_snapshot, (self.__getstate__(),))

    # ------------------------------------------------------------------ #
    # snapshot-store backing
    # ------------------------------------------------------------------ #

    def _mark_stored(self, path: str, fingerprint: str) -> None:
        """Attach this snapshot to its on-disk store file (see ``__reduce__``)."""
        self._store_path = path
        self._store_fingerprint = fingerprint

    @property
    def store_path(self) -> Optional[str]:
        """The snapshot-store file backing this snapshot, or ``None``."""
        return self._store_path

    @property
    def store_fingerprint(self) -> Optional[str]:
        """The content fingerprint recorded in the backing file, or ``None``."""
        return self._store_fingerprint

    # ------------------------------------------------------------------ #
    # interning surface
    # ------------------------------------------------------------------ #

    def id_of(self, node: GraphNode) -> Optional[int]:
        """The interned id of *node*, or ``None`` when it is not in the graph."""
        return self._id_of.get(node)

    def node_at(self, node_id: int) -> GraphNode:
        """The node object with interned id *node_id*."""
        return self._node_of[node_id]

    def pred_id(self, predicate: str) -> int:
        """The interned predicate id (``-1`` for unknown predicates)."""
        return self._pred_ids.get(predicate, -1)

    def type_range(self, etype: str) -> Tuple[int, int]:
        """The contiguous entity-id bucket ``[lo, hi)`` of *etype*."""
        return self._type_ranges.get(etype, (0, 0))

    @property
    def num_interned_nodes(self) -> int:
        """Total number of interned node ids (entities + value nodes)."""
        return len(self._node_of)

    def decode_ids(self, ids: Iterable[int]) -> Set[GraphNode]:
        """Decode interned ids back into a set of node objects."""
        node_of = self._node_of
        return {node_of[i] for i in ids}

    def encode_nodes(self, nodes: Iterable[GraphNode]) -> array:
        """Encode node objects into a sorted array of interned ids."""
        id_of = self._id_of
        return array(_ID, sorted(id_of[node] for node in nodes))

    def placement_key(self, key: object) -> object:
        """Map shuffle/placement keys onto interned ids.

        Entity ids and value nodes become their interned integer id, tuples
        map component-wise (candidate pairs become ``(id1, id2)``); anything
        unknown passes through unchanged.  Feeding interned ids (not bulky
        reprs) to :func:`~repro.runtime.partition.stable_hash` keeps worker
        placement deterministic while hashing a handful of digits.
        """
        if isinstance(key, tuple):
            return tuple(self.placement_key(item) for item in key)
        mapped = self._id_of.get(key)
        return key if mapped is None else mapped

    def repr_rank(self, node_id: int) -> int:
        """The rank of the node in the global ``sorted(nodes, key=repr)`` order.

        The compiled VF2 matcher orders candidate ids by this rank, which
        reproduces the dict path's ``sorted(candidates, key=repr)`` branching
        order exactly (node reprs are unique across a graph's nodes).
        """
        ranks = self._repr_ranks
        if ranks is None:
            order = sorted(range(len(self._node_of)), key=lambda i: repr(self._node_of[i]))
            ranks = array(_ID, [0] * len(order))
            for rank, index in enumerate(order):
                ranks[index] = rank
            self._repr_ranks = ranks
        return ranks[node_id]

    # ------------------------------------------------------------------ #
    # integer-space adjacency (compiled hot paths)
    # ------------------------------------------------------------------ #

    def _ensure_int_maps(self) -> None:
        if self._int_objects is not None:
            return
        int_objects: Dict[Tuple[int, int], Set[int]] = {}
        offsets, preds, objs = self._fwd_offsets, self._fwd_preds, self._fwd_objs
        for sid in range(len(self._node_of)):
            for index in range(offsets[sid], offsets[sid + 1]):
                int_objects.setdefault((sid, preds[index]), set()).add(objs[index])
        int_subjects: Dict[Tuple[int, int], Set[int]] = {}
        offsets, preds, subjs = self._bwd_offsets, self._bwd_preds, self._bwd_subjs
        for oid in range(len(self._node_of)):
            for index in range(offsets[oid], offsets[oid + 1]):
                int_subjects.setdefault((oid, preds[index]), set()).add(subjs[index])
        self._int_objects = {key: frozenset(val) for key, val in int_objects.items()}
        self._int_subjects = {key: frozenset(val) for key, val in int_subjects.items()}

    def objects_ids(self, subject_id: int, pred_id: int) -> FrozenSet[int]:
        """Interned object ids with ``(subject, pred, o)`` in the graph."""
        self._ensure_int_maps()
        return self._int_objects.get((subject_id, pred_id), _EMPTY_IDS)

    def subjects_ids(self, object_id: int, pred_id: int) -> FrozenSet[int]:
        """Interned subject ids with ``(s, pred, object)`` in the graph."""
        self._ensure_int_maps()
        return self._int_subjects.get((object_id, pred_id), _EMPTY_IDS)

    def out_ids(self, node_id: int, pred_id: int) -> List[int]:
        """Object ids of ``(node, pred, o)`` straight off the CSR row.

        Unlike :meth:`objects_ids` this never materializes the whole-graph
        integer maps: the forward row is sorted by ``(pred, obj)``, so one
        bisection isolates the predicate run — O(log row + matches) per call,
        which is what per-entity signature traversal and incremental rebasing
        want.
        """
        offsets, preds, objs = self._fwd_offsets, self._fwd_preds, self._fwd_objs
        lo, hi = offsets[node_id], offsets[node_id + 1]
        start = bisect_left(preds, pred_id, lo, hi)
        end = bisect_right(preds, pred_id, start, hi)
        return list(objs[start:end])

    def in_ids(self, node_id: int, pred_id: int) -> List[int]:
        """Subject ids of ``(s, pred, node)`` straight off the CSR row."""
        offsets, preds, subjs = self._bwd_offsets, self._bwd_preds, self._bwd_subjs
        lo, hi = offsets[node_id], offsets[node_id + 1]
        start = bisect_left(preds, pred_id, lo, hi)
        end = bisect_right(preds, pred_id, start, hi)
        return list(subjs[start:end])

    def value_postings(self, pred_id: int):
        """The inverted value-index run of *pred_id*.

        Returns ``(literal ids, subject ids)`` — two parallel id sequences
        sorted by ``(literal, subject)`` covering every triple of that
        predicate whose object is a literal — or ``None`` when the predicate
        is unknown or this snapshot carries no value index (instances
        unpickled from pre-index states).
        """
        offsets = getattr(self, "_vindex_offsets", None)
        if offsets is None or pred_id < 0 or pred_id >= len(offsets) - 1:
            return None
        lo, hi = offsets[pred_id], offsets[pred_id + 1]
        return self._vindex_literals[lo:hi], self._vindex_subjects[lo:hi]

    def adjacency(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-id undirected neighbour tuples (the BFS working form).

        Decoded from the CSR arrays once per process; the CSR arrays remain
        the pickled representation.
        """
        adjacency = self._adjacency
        if adjacency is None:
            offsets, targets = self._und_offsets, self._und_targets
            target_list = targets.tolist()
            adjacency = tuple(
                tuple(target_list[offsets[index] : offsets[index + 1]])
                for index in range(len(self._node_of))
            )
            self._adjacency = adjacency
        return adjacency

    #: Above this node count, the BFS visited-set switches from a bytearray
    #: (O(num_nodes) allocation per call, unbeatable per-edge cost) to an int
    #: set (allocation proportional to the neighbourhood, not the graph).
    FLAG_BFS_LIMIT = 1 << 16

    def neighborhood_ids(self, root_id: int, radius: int) -> List[int]:
        """The interned ids within *radius* undirected hops of *root_id*.

        A pure integer BFS (ids returned in BFS order, root first) — no node
        objects are hashed while exploring, which is where the snapshot path
        beats the dict path.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        result = [root_id]
        if radius == 0:
            return result
        adjacency = self.adjacency()
        use_flags = len(self._node_of) <= self.FLAG_BFS_LIMIT
        if use_flags:
            flags = bytearray(len(self._node_of))
            flags[root_id] = 1
        else:
            seen = {root_id}
        frontier = result
        for _ in range(radius):
            next_frontier: List[int] = []
            append = next_frontier.append
            if use_flags:
                for node in frontier:
                    for nbr in adjacency[node]:
                        if not flags[nbr]:
                            flags[nbr] = 1
                            append(nbr)
            else:
                for node in frontier:
                    for nbr in adjacency[node]:
                        if nbr not in seen:
                            seen.add(nbr)
                            append(nbr)
            if not next_frontier:
                break
            result += next_frontier
            frontier = next_frontier
        return result

    def neighborhood_nodes(self, entity: str, radius: int) -> Set[GraphNode]:
        """The d-neighbourhood of *entity* as a set of node objects."""
        root = self._id_of.get(entity)
        if root is None or root >= self._num_entities:
            raise UnknownEntityError(entity)
        ids = self.neighborhood_ids(root, radius)
        if len(ids) == 1:
            return {self._node_of[ids[0]]}
        return set(_itemgetter(*ids)(self._node_of))

    # ------------------------------------------------------------------ #
    # Graph read surface (duck-type compatible)
    # ------------------------------------------------------------------ #

    @property
    def num_entities(self) -> int:
        return self._num_entities

    @property
    def num_triples(self) -> int:
        return self._num_triples

    @property
    def num_nodes(self) -> int:
        return len(self._node_of)

    def __len__(self) -> int:
        return self._num_triples

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Triple):
            return self.has_triple(item.subject, item.predicate, item.obj)
        if isinstance(item, str):
            return self.has_entity(item)
        return False

    def has_entity(self, eid: str) -> bool:
        index = self._id_of.get(eid)
        return index is not None and index < self._num_entities

    def _entity_index(self, eid: str) -> int:
        index = self._id_of.get(eid) if isinstance(eid, str) else None
        if index is None or index >= self._num_entities:
            raise UnknownEntityError(str(eid))
        return index

    def entity(self, eid: str) -> Entity:
        index = self._entity_index(eid)
        return Entity(eid, self._etype_of[index])

    def entity_type(self, eid: str) -> str:
        return self._etype_of[self._entity_index(eid)]

    def entities(self) -> Iterator[Entity]:
        for index in range(self._num_entities):
            yield Entity(self._node_of[index], self._etype_of[index])

    def entity_ids(self) -> Iterator[str]:
        return iter(self._node_of[: self._num_entities])

    def entities_of_type(self, etype: str) -> List[str]:
        lo, hi = self._type_ranges.get(etype, (0, 0))
        return list(self._node_of[lo:hi])

    def types(self) -> Set[str]:
        return set(self._type_ranges.keys())

    def predicates(self) -> Set[str]:
        return set(self._pred_of)

    def value_nodes(self) -> FrozenSet[Literal]:
        if self._value_node_set is None:
            self._value_node_set = frozenset(self._node_of[self._num_entities :])
        return self._value_node_set

    def triples(self) -> Iterator[Triple]:
        node_of, pred_of = self._node_of, self._pred_of
        offsets, preds, objs = self._fwd_offsets, self._fwd_preds, self._fwd_objs
        for sid in range(self._num_entities):
            subject = node_of[sid]
            for index in range(offsets[sid], offsets[sid + 1]):
                yield Triple(subject, pred_of[preds[index]], node_of[objs[index]])

    def to_graph(self) -> "Graph":
        """Reconstruct a mutable :class:`~repro.core.graph.Graph`.

        Content-faithful by construction (same entities, same triples), so
        ``fingerprint_of(snapshot.to_graph()) == snapshot`` fingerprint —
        the property WAL recovery relies on when the journal's base state
        lives in a snapshot store rather than in memory.
        """
        from ..core.graph import Graph  # lazy: storage must not import core eagerly

        graph = Graph()
        for entity in self.entities():
            graph.add_entity(entity.eid, entity.etype)
        for triple in self.triples():
            graph.add_triple(triple)
        return graph

    # -- decoded adjacency maps (built once per process) ----------------- #

    def _ensure_read_maps(self) -> None:
        if self._obj_map is not None:
            return
        node_of, pred_of = self._node_of, self._pred_of
        obj_map: Dict[str, Dict[str, frozenset]] = {}
        offsets, preds, objs = self._fwd_offsets, self._fwd_preds, self._fwd_objs
        for sid in range(self._num_entities):
            lo, hi = offsets[sid], offsets[sid + 1]
            if lo == hi:
                continue
            per_pred: Dict[str, set] = {}
            for index in range(lo, hi):
                per_pred.setdefault(pred_of[preds[index]], set()).add(node_of[objs[index]])
            obj_map[node_of[sid]] = {
                pred: frozenset(found) for pred, found in per_pred.items()
            }
        subj_map: Dict[GraphNode, Dict[str, frozenset]] = {}
        offsets, preds, subjs = self._bwd_offsets, self._bwd_preds, self._bwd_subjs
        for oid in range(len(node_of)):
            lo, hi = offsets[oid], offsets[oid + 1]
            if lo == hi:
                continue
            per_pred = {}
            for index in range(lo, hi):
                per_pred.setdefault(pred_of[preds[index]], set()).add(node_of[subjs[index]])
            subj_map[node_of[oid]] = {
                pred: frozenset(found) for pred, found in per_pred.items()
            }
        self._subj_map = subj_map
        self._obj_map = obj_map

    def objects(self, subject: str, predicate: str) -> FrozenSet[GraphNode]:
        self._ensure_read_maps()
        per_pred = self._obj_map.get(subject)
        if per_pred is None:
            return _EMPTY_NODES
        return per_pred.get(predicate, _EMPTY_NODES)

    def subjects(self, predicate: str, obj: GraphNode) -> FrozenSet[str]:
        self._ensure_read_maps()
        per_pred = self._subj_map.get(obj)
        if per_pred is None:
            return _EMPTY_NODES
        return per_pred.get(predicate, _EMPTY_NODES)

    def has_triple(self, subject: str, predicate: str, obj: GraphNode) -> bool:
        return obj in self.objects(subject, predicate)

    def neighbors(self, node: GraphNode) -> FrozenSet[GraphNode]:
        if self._neighbor_map is None:
            node_of = self._node_of
            offsets, targets = self._und_offsets, self._und_targets
            self._neighbor_map = {
                node_of[index]: frozenset(
                    node_of[targets[i]] for i in range(offsets[index], offsets[index + 1])
                )
                for index in range(len(node_of))
                if offsets[index] != offsets[index + 1]
            }
        return self._neighbor_map.get(node, _EMPTY_NODES)

    def degree(self, node: GraphNode) -> int:
        index = self._id_of.get(node)
        if index is None:
            return 0
        return self._und_offsets[index + 1] - self._und_offsets[index]

    def out_triples(self, subject: str) -> FrozenSet[Triple]:
        if self._out_triples_map is None:
            per_subject: Dict[str, List[Triple]] = {}
            for triple in self.triples():
                per_subject.setdefault(triple.subject, []).append(triple)
            self._out_triples_map = {
                subj: frozenset(found) for subj, found in per_subject.items()
            }
        return self._out_triples_map.get(subject, _EMPTY_NODES)

    def in_triples(self, obj: GraphNode) -> FrozenSet[Triple]:
        if self._in_triples_map is None:
            per_object: Dict[GraphNode, List[Triple]] = {}
            for triple in self.triples():
                per_object.setdefault(triple.obj, []).append(triple)
            self._in_triples_map = {
                node: frozenset(found) for node, found in per_object.items()
            }
        return self._in_triples_map.get(obj, _EMPTY_NODES)

    def induced_subgraph(self, nodes: Iterable[GraphNode]) -> Graph:
        """The induced subgraph as a fresh, mutable :class:`Graph`."""
        keep = set(nodes)
        sub = Graph()
        for node in keep:
            if is_entity_ref(node) and self.has_entity(node):
                sub.add_entity(node, self.entity_type(node))
        for node in keep:
            if not (is_entity_ref(node) and self.has_entity(node)):
                continue
            for triple in self.out_triples(node):
                if triple.obj in keep:
                    sub.add_triple(triple)
        return sub

    def stats(self) -> Dict[str, int]:
        return {
            "entities": self.num_entities,
            "values": len(self._node_of) - self._num_entities,
            "nodes": self.num_nodes,
            "triples": self.num_triples,
            "types": len(self._type_ranges),
            "predicates": len(self._pred_of),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphSnapshot(version={self.version}, entities={self.num_entities}, "
            f"triples={self.num_triples}, types={len(self._type_ranges)})"
        )


def _restore_snapshot(state: Dict[str, object]) -> GraphSnapshot:
    snap = object.__new__(GraphSnapshot)
    snap.__setstate__(state)
    return snap


def _attach_stored_snapshot(path: str, fingerprint, graph_version) -> GraphSnapshot:
    """Unpickle hook for store-backed snapshots: re-attach by ``mmap``.

    The file is re-validated against the fingerprint and ``Graph.version``
    recorded at pickling time, so a swapped or stale file raises a typed
    :class:`~repro.exceptions.StoreError` instead of silently diverging.
    """
    from .store import read_snapshot  # local import: store imports this module

    return read_snapshot(
        path, expect_fingerprint=fingerprint, expect_graph_version=graph_version
    )
