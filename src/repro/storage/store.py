"""On-disk persistence for :class:`~repro.storage.snapshot.GraphSnapshot`.

The snapshot compiles a graph into interning tables + CSR ``int64`` arrays;
this module gives that compilation a **versioned binary file format** and a
**directory cache** (:class:`SnapshotStore`) keyed by a content fingerprint
of the source graph, so cold starts skip the build entirely and a process
pool on one machine shares one physical copy of the arrays through the page
cache.

File layout (all integers little-endian)::

    offset  0   magic            b"RKGSNAPS"                       8 bytes
    offset  8   format version   u16  (FORMAT_VERSION)             2 bytes
    offset 10   reserved         u16  (zero)                       2 bytes
    offset 12   header length    u32                               4 bytes
    offset 16   header           UTF-8 JSON, `header length` bytes
    pad to 8    segment area     raw segments, each 8-byte aligned

The JSON header records the source graph's :attr:`Graph.version`, the
content fingerprint, byte order, node/triple counts, the entity-type ranges
and a ``{name: [offset, length]}`` segment table (offsets relative to the
segment area).  Segments are the eight CSR arrays as raw ``int64`` bytes,
plus three *string tables* (entity ids, predicates, literals) stored as an
``int64`` offsets array over a concatenated UTF-8 blob; literals carry one
tag byte each (str/int/float/bool/None inline, pickle only as a fallback
for exotic hashable values).

Loads go through :func:`read_snapshot`, which by default ``mmap``\\ s the
file and exposes every array segment as a read-only :class:`memoryview`
over the mapping — no bytes are copied, and concurrent readers of one file
share physical memory.  A snapshot loaded this way (or saved through the
store) remembers its path and **pickles as a path stub**: process-pool
workers re-attach by ``mmap`` instead of receiving the arrays through the
pipe (the runtime's attach-by-path mode).

Every structural problem raises a typed :class:`~repro.exceptions.StoreError`
subclass so opportunistic callers can fall back to a clean rebuild.
"""

from __future__ import annotations

import json
import mmap
import os
import pickle
import struct
import sys
import tempfile
import threading
import zlib
from array import array
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.graph import Graph
from ..core.triples import Literal
from ..exceptions import (
    StoreError,
    StoreFormatError,
    StoreMissError,
    StoreStaleError,
    StoreVersionError,
)
from .snapshot import _ID, GraphSnapshot

#: File magic: identifies a Repro Keys Graph SNAPShot file.
MAGIC = b"RKGSNAPS"

#: Format version of files this build writes (and the only one it reads).
#: Version 2 added the inverted value-index segments (``vindex_*``) that back
#: the blocking layer; version-1 files raise a clean
#: :class:`~repro.exceptions.StoreVersionError`, which ``get_or_build``
#: answers with a rebuild-and-save of the current format.
FORMAT_VERSION = 2

#: File suffix used by :class:`SnapshotStore` entries.
SNAPSHOT_SUFFIX = ".snap"

#: ``magic + format version + reserved + header length``.
_PREAMBLE = struct.Struct("<8sHHI")

#: The raw ``int64`` array segments, in file order.
_ARRAY_SEGMENTS = (
    "fwd_offsets",
    "fwd_preds",
    "fwd_objs",
    "bwd_offsets",
    "bwd_preds",
    "bwd_subjs",
    "und_offsets",
    "und_targets",
    "vindex_offsets",
    "vindex_literals",
    "vindex_subjects",
)

#: The string-table segments, in file order.
_TABLE_SEGMENTS = (
    "entity_offsets",
    "entity_blob",
    "pred_offsets",
    "pred_blob",
    "literal_tags",
    "literal_offsets",
    "literal_blob",
)

_ALL_SEGMENTS = _ARRAY_SEGMENTS + _TABLE_SEGMENTS


def _pad8(length: int) -> int:
    return (length + 7) & ~7


# --------------------------------------------------------------------------- #
# content fingerprinting
# --------------------------------------------------------------------------- #


def _encode_literal(literal: Literal) -> Tuple[bytes, bytes]:
    """Encode one literal as ``(tag, payload)``; text forms round-trip exactly.

    ``type() is`` checks (not ``isinstance``) keep subclasses on the generic
    pickle path, whose decode restores the exact object.
    """
    value = literal.value
    if type(value) is str:
        return b"s", value.encode("utf-8")
    if type(value) is bool:
        return b"b", b"1" if value else b"0"
    if type(value) is int:
        return b"i", str(value).encode("ascii")
    if type(value) is float:
        return b"f", repr(value).encode("ascii")
    if value is None:
        return b"n", b""
    return b"p", pickle.dumps(value, protocol=4)


def _decode_literal(tag: int, payload: bytes) -> Literal:
    if tag == ord("s"):
        return Literal(payload.decode("utf-8"))
    if tag == ord("b"):
        return Literal(payload == b"1")
    if tag == ord("i"):
        return Literal(int(payload))
    if tag == ord("f"):
        return Literal(float(payload))
    if tag == ord("n"):
        return Literal(None)
    if tag == ord("p"):
        return Literal(pickle.loads(payload))
    raise StoreFormatError(f"unknown literal tag {tag!r} in snapshot file")


# The fingerprint implementation lives in core.fingerprint (Graph maintains
# the accumulator incrementally); these re-exports keep the store module the
# public home of the fingerprint API.
from ..core.fingerprint import (  # noqa: E402  (re-export)
    _chunk,
    _fingerprint_value,
    fingerprint_of,
    graph_fingerprint,
)


# --------------------------------------------------------------------------- #
# writing
# --------------------------------------------------------------------------- #


def _string_table(strings: Sequence[str]) -> Tuple[bytes, bytes]:
    """Pack *strings* into ``(offsets, blob)`` — int64 offsets over UTF-8."""
    offsets = array(_ID, [0] * (len(strings) + 1))
    parts: List[bytes] = []
    total = 0
    for index, text in enumerate(strings):
        encoded = text.encode("utf-8")
        parts.append(encoded)
        total += len(encoded)
        offsets[index + 1] = total
    return offsets.tobytes(), b"".join(parts)


def _literal_table(literals: Sequence[Literal]) -> Tuple[bytes, bytes, bytes]:
    """Pack *literals* into ``(tags, offsets, blob)``."""
    tags = bytearray()
    offsets = array(_ID, [0] * (len(literals) + 1))
    parts: List[bytes] = []
    total = 0
    for index, literal in enumerate(literals):
        tag, payload = _encode_literal(literal)
        tags += tag
        parts.append(payload)
        total += len(payload)
        offsets[index + 1] = total
    return bytes(tags), offsets.tobytes(), b"".join(parts)


#: Array segment name -> snapshot attribute.
_ARRAY_ATTRS = (
    "_fwd_offsets", "_fwd_preds", "_fwd_objs",
    "_bwd_offsets", "_bwd_preds", "_bwd_subjs",
    "_und_offsets", "_und_targets",
    "_vindex_offsets", "_vindex_literals", "_vindex_subjects",
)


def _snapshot_segments(
    snapshot: GraphSnapshot, *, skip: Iterable[str] = ()
) -> Dict[str, bytes]:
    """The raw segment payloads of *snapshot*, in no particular order.

    Names in *skip* are omitted (the segment-patch writer fills those from
    the base file instead of re-serializing them).
    """
    skipped = set(skip)
    segments: Dict[str, bytes] = {}
    for name, attr in zip(_ARRAY_SEGMENTS, _ARRAY_ATTRS):
        if name not in skipped:
            # bytes() handles both array('q') values and mmap-backed memoryviews
            segments[name] = bytes(getattr(snapshot, attr))
    node_of = snapshot._node_of
    num_entities = snapshot._num_entities
    if not skipped >= {"entity_offsets", "entity_blob"}:
        entity_offsets, entity_blob = _string_table(node_of[:num_entities])
        segments["entity_offsets"] = entity_offsets
        segments["entity_blob"] = entity_blob
    if not skipped >= {"pred_offsets", "pred_blob"}:
        pred_offsets, pred_blob = _string_table(snapshot._pred_of)
        segments["pred_offsets"] = pred_offsets
        segments["pred_blob"] = pred_blob
    if not skipped >= {"literal_tags", "literal_offsets", "literal_blob"}:
        tags, literal_offsets, literal_blob = _literal_table(node_of[num_entities:])
        segments["literal_tags"] = tags
        segments["literal_offsets"] = literal_offsets
        segments["literal_blob"] = literal_blob
    return segments


def write_snapshot(
    snapshot: GraphSnapshot,
    path: Union[str, os.PathLike],
    *,
    fingerprint: str,
    graph_version: Optional[int] = None,
    segments: Optional[Dict[str, bytes]] = None,
) -> Path:
    """Serialize *snapshot* to *path* in the versioned binary format.

    *fingerprint* is the content fingerprint of the source graph
    (:func:`graph_fingerprint`); *graph_version* defaults to the version the
    snapshot was compiled from.  The write is atomic (temp file + rename)
    and deterministic: the same snapshot always produces identical bytes.
    *segments* optionally supplies pre-serialized payloads (the
    segment-patch path passes a mix of fresh and base-file bytes).
    """
    target = Path(path)
    if segments is None:
        segments = _snapshot_segments(snapshot)

    table: Dict[str, Tuple[int, int]] = {}
    checksum = 0
    offset = 0
    for name in _ALL_SEGMENTS:
        payload = segments[name]
        table[name] = (offset, len(payload))
        checksum = zlib.crc32(payload, checksum)
        offset = _pad8(offset + len(payload))

    header = {
        "format_version": FORMAT_VERSION,
        "graph_version": snapshot.version if graph_version is None else graph_version,
        "fingerprint": fingerprint,
        "byteorder": sys.byteorder,
        "itemsize": 8,
        "num_entities": snapshot._num_entities,
        "num_nodes": len(snapshot._node_of),
        "num_triples": snapshot._num_triples,
        "num_predicates": len(snapshot._pred_of),
        "types": [
            [etype, lo, hi] for etype, (lo, hi) in sorted(snapshot._type_ranges.items())
        ],
        "checksum": checksum,
        "segments": {name: list(span) for name, span in table.items()},
    }
    header_bytes = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    preamble = _PREAMBLE.pack(MAGIC, FORMAT_VERSION, 0, len(header_bytes))
    data_start = _pad8(len(preamble) + len(header_bytes))

    # a unique temp name per writer: concurrent saves of the same fingerprint
    # each write their own inode and the last os.replace wins atomically, so
    # mmap readers can never observe a torn file
    fd, temp = tempfile.mkstemp(
        dir=str(target.parent) or ".", prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(preamble)
            handle.write(header_bytes)
            handle.write(b"\x00" * (data_start - len(preamble) - len(header_bytes)))
            position = 0
            for name in _ALL_SEGMENTS:
                payload = segments[name]
                handle.write(payload)
                position += len(payload)
                padded = _pad8(position)
                handle.write(b"\x00" * (padded - position))
                position = padded
        os.chmod(temp, 0o644)  # mkstemp's 0600 would hide the file from pool users
        os.replace(temp, target)
    except BaseException:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise
    return target


def patch_snapshot(
    snapshot: GraphSnapshot,
    path: Union[str, os.PathLike],
    *,
    base_path: Union[str, os.PathLike],
    fingerprint: str,
    graph_version: Optional[int] = None,
) -> Tuple[Path, Dict[str, int]]:
    """Write *snapshot* to *path*, reusing unchanged segments of *base_path*.

    The base file's segment table is diffed against the new snapshot:
    table segments the snapshot proved unchanged while patching (its
    patch provenance, see :meth:`GraphSnapshot.patched`) are copied from
    the base file without re-serialization — skipping the O(|V|) string
    and literal table rebuilds — and array segments that compare
    byte-equal to the base count as reused in the returned stats.  The
    output file is **byte-identical** to a full :func:`write_snapshot` of
    the same snapshot; only the work to produce it is delta-proportional.
    The write is atomic (temp file + rename), exactly like a full write.

    Returns ``(path, stats)`` with ``segments_reused`` /
    ``segments_rewritten`` counts.
    """
    source = Path(base_path)
    info = snapshot_info(source)
    with open(source, "rb") as handle:
        base_raw = handle.read()
    data_start = info["data_start"]
    _check_segments(info, data_start, len(base_raw), source)
    base_table = info["segments"]

    unchanged = getattr(snapshot, "_unchanged_tables", frozenset())
    reusable = {name for name in unchanged if name in base_table}
    fresh = _snapshot_segments(snapshot, skip=reusable)
    stats = {"segments_reused": 0, "segments_rewritten": 0}
    segments: Dict[str, bytes] = {}
    for name in _ALL_SEGMENTS:
        offset, length = base_table[name]
        base_payload = base_raw[data_start + offset : data_start + offset + length]
        if name in reusable:
            segments[name] = base_payload
            stats["segments_reused"] += 1
        else:
            segments[name] = fresh[name]
            if fresh[name] == base_payload:
                stats["segments_reused"] += 1
            else:
                stats["segments_rewritten"] += 1
    target = write_snapshot(
        snapshot,
        path,
        fingerprint=fingerprint,
        graph_version=graph_version,
        segments=segments,
    )
    return target, stats


# --------------------------------------------------------------------------- #
# reading
# --------------------------------------------------------------------------- #


def _read_header(raw: bytes, path: Path) -> Tuple[dict, int]:
    """Parse and validate preamble + header; returns ``(header, data_start)``."""
    if len(raw) < _PREAMBLE.size:
        raise StoreFormatError(f"{path}: truncated preamble ({len(raw)} bytes)")
    magic, version, _reserved, header_len = _PREAMBLE.unpack_from(raw)
    if magic != MAGIC:
        raise StoreFormatError(f"{path}: bad magic {magic!r} (not a snapshot file)")
    if version != FORMAT_VERSION:
        raise StoreVersionError(
            f"{path}: format version {version} is not the supported {FORMAT_VERSION}"
        )
    header_end = _PREAMBLE.size + header_len
    if len(raw) < header_end:
        raise StoreFormatError(f"{path}: truncated header ({len(raw)} of {header_end} bytes)")
    try:
        header = json.loads(raw[_PREAMBLE.size : header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreFormatError(f"{path}: unreadable header ({exc})") from exc
    for field in ("format_version", "graph_version", "fingerprint", "byteorder",
                  "segments", "types", "num_entities", "num_nodes", "num_triples",
                  "num_predicates", "checksum"):
        if field not in header:
            raise StoreFormatError(f"{path}: header is missing the {field!r} field")
    if header["byteorder"] != sys.byteorder:
        raise StoreFormatError(
            f"{path}: written on a {header['byteorder']}-endian machine, "
            f"this one is {sys.byteorder}-endian"
        )
    return header, _pad8(header_end)


def _check_segments(header: dict, data_start: int, file_size: int, path: Path) -> None:
    segments = header["segments"]
    for name in _ALL_SEGMENTS:
        if name not in segments:
            raise StoreFormatError(f"{path}: header is missing segment {name!r}")
        offset, length = segments[name]
        if offset < 0 or length < 0 or data_start + offset + length > file_size:
            raise StoreFormatError(
                f"{path}: segment {name!r} ({offset}+{length}) exceeds the "
                f"file size ({file_size} bytes); the file is truncated"
            )


def _decode_strings(offsets_raw, blob, count: int) -> List[str]:
    offsets = memoryview(offsets_raw).cast(_ID)
    return [bytes(blob[offsets[i] : offsets[i + 1]]).decode("utf-8") for i in range(count)]


def read_snapshot(
    path: Union[str, os.PathLike],
    *,
    use_mmap: bool = True,
    expect_fingerprint: Optional[str] = None,
    expect_graph_version: Optional[int] = None,
    attach: bool = True,
) -> GraphSnapshot:
    """Load a :class:`GraphSnapshot` from *path*.

    With ``use_mmap=True`` (the default) the array segments become read-only
    :class:`memoryview`\\ s over a shared file mapping — nothing is copied
    and every process mapping the same file shares one physical copy.  The
    optional ``expect_*`` arguments make staleness a hard error
    (:class:`~repro.exceptions.StoreStaleError`); with ``attach=True`` the
    returned snapshot remembers *path* and pickles as a path stub.
    """
    source = Path(path)
    try:
        handle = open(source, "rb")
    except FileNotFoundError as exc:
        raise StoreMissError(f"{source}: no such snapshot file") from exc
    except OSError as exc:
        raise StoreError(f"{source}: cannot open snapshot file ({exc})") from exc
    with handle:
        head = handle.read(_PREAMBLE.size + 4096)
        if len(head) >= _PREAMBLE.size:
            header_len = _PREAMBLE.unpack_from(head)[3]
            if len(head) < _PREAMBLE.size + header_len:
                head += handle.read(_PREAMBLE.size + header_len - len(head))
        header, data_start = _read_header(head, source)
        file_size = os.fstat(handle.fileno()).st_size
        _check_segments(header, data_start, file_size, source)
        if expect_fingerprint is not None and header["fingerprint"] != expect_fingerprint:
            raise StoreStaleError(
                f"{source}: stored fingerprint {header['fingerprint'][:12]}… does "
                f"not match the graph's {expect_fingerprint[:12]}…"
            )
        if expect_graph_version is not None and header["graph_version"] != expect_graph_version:
            raise StoreStaleError(
                f"{source}: stored Graph.version {header['graph_version']} is stale "
                f"(the graph is at version {expect_graph_version})"
            )
        if use_mmap:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            data = memoryview(mapped)  # keeps the mapping alive
        else:
            handle.seek(0)
            data = memoryview(handle.read())

    def segment(name: str):
        offset, length = header["segments"][name]
        return data[data_start + offset : data_start + offset + length]

    snap = object.__new__(GraphSnapshot)
    snap.version = header["graph_version"]
    num_entities = header["num_entities"]
    num_nodes = header["num_nodes"]

    entity_ids = _decode_strings(segment("entity_offsets"), segment("entity_blob"), num_entities)
    literal_tags = segment("literal_tags")
    literal_offsets = memoryview(segment("literal_offsets")).cast(_ID)
    literal_blob = segment("literal_blob")
    num_literals = num_nodes - num_entities
    if len(literal_tags) != num_literals or len(literal_offsets) != num_literals + 1:
        raise StoreFormatError(f"{source}: literal table does not match the node counts")
    node_of: List[object] = list(entity_ids)
    for index in range(num_literals):
        payload = bytes(literal_blob[literal_offsets[index] : literal_offsets[index + 1]])
        node_of.append(_decode_literal(literal_tags[index], payload))
    snap._node_of = tuple(node_of)
    snap._id_of = {node: index for index, node in enumerate(node_of)}
    snap._num_entities = num_entities

    type_ranges: Dict[str, Tuple[int, int]] = {}
    etype_of: List[str] = [""] * num_entities
    for etype, lo, hi in header["types"]:
        if not (0 <= lo <= hi <= num_entities):
            raise StoreFormatError(f"{source}: type range {etype!r} [{lo}, {hi}) is invalid")
        type_ranges[etype] = (lo, hi)
        for index in range(lo, hi):
            etype_of[index] = etype
    snap._type_ranges = type_ranges
    snap._etype_of = tuple(etype_of)

    preds = _decode_strings(
        segment("pred_offsets"), segment("pred_blob"), header["num_predicates"]
    )
    snap._pred_of = tuple(preds)
    snap._pred_ids = {pred: index for index, pred in enumerate(preds)}

    for name, attr in zip(
        _ARRAY_SEGMENTS,
        (
            "_fwd_offsets", "_fwd_preds", "_fwd_objs",
            "_bwd_offsets", "_bwd_preds", "_bwd_subjs",
            "_und_offsets", "_und_targets",
            "_vindex_offsets", "_vindex_literals", "_vindex_subjects",
        ),
    ):
        raw = segment(name)
        if len(raw) % 8:
            raise StoreFormatError(f"{source}: segment {name!r} is not an int64 array")
        setattr(snap, attr, raw.cast(_ID))
    if len(snap._fwd_offsets) != num_nodes + 1 or len(snap._und_offsets) != num_nodes + 1:
        raise StoreFormatError(f"{source}: CSR offsets do not match the node count")
    if len(snap._vindex_offsets) != header["num_predicates"] + 1:
        raise StoreFormatError(
            f"{source}: value-index offsets do not match the predicate count"
        )

    snap._num_triples = header["num_triples"]
    snap._reset_lazy()
    if attach:
        snap._mark_stored(str(source), header["fingerprint"])
    return snap


def snapshot_info(path: Union[str, os.PathLike]) -> Dict[str, object]:
    """The header of the snapshot file at *path*, plus its file size.

    Reads only the preamble and header — never the array segments.
    """
    source = Path(path)
    try:
        with open(source, "rb") as handle:
            head = handle.read(_PREAMBLE.size)
            if len(head) == _PREAMBLE.size:
                head += handle.read(_PREAMBLE.unpack_from(head)[3])
            header, data_start = _read_header(head, source)
            file_size = os.fstat(handle.fileno()).st_size
    except FileNotFoundError as exc:
        raise StoreMissError(f"{source}: no such snapshot file") from exc
    except OSError as exc:
        raise StoreError(f"{source}: cannot open snapshot file ({exc})") from exc
    info = dict(header)
    info["path"] = str(source)
    info["file_size"] = file_size
    info["data_start"] = data_start
    return info


def verify_snapshot(
    path: Union[str, os.PathLike], graph: Optional[Graph] = None
) -> Dict[str, object]:
    """Fully validate the snapshot file at *path*; returns its header info.

    Checks structure (magic, format version, segment bounds), the payload
    checksum, and that the arrays decode into a well-formed snapshot.  With
    *graph* given, also checks the content fingerprint and ``Graph.version``
    against the live graph.  Raises a :class:`~repro.exceptions.StoreError`
    subclass on the first failure.
    """
    source = Path(path)
    info = snapshot_info(source)
    data_start = info["data_start"]
    with open(source, "rb") as handle:
        raw = handle.read()
    _check_segments(info, data_start, len(raw), source)
    checksum = 0
    for name in _ALL_SEGMENTS:
        offset, length = info["segments"][name]
        checksum = zlib.crc32(raw[data_start + offset : data_start + offset + length], checksum)
    if checksum != info["checksum"]:
        raise StoreFormatError(
            f"{source}: segment checksum {checksum:#010x} does not match the "
            f"recorded {info['checksum']:#010x}; the payload is corrupt"
        )
    expect_fingerprint = graph_fingerprint(graph) if graph is not None else None
    expect_version = graph.version if graph is not None else None
    snapshot = read_snapshot(
        source,
        use_mmap=False,
        expect_fingerprint=expect_fingerprint,
        expect_graph_version=expect_version,
        attach=False,
    )
    if snapshot.num_triples != sum(
        1 for _ in snapshot.triples()
    ):  # pragma: no cover - structural invariant
        raise StoreFormatError(f"{source}: triple count does not match the CSR arrays")
    return info


# --------------------------------------------------------------------------- #
# the directory cache
# --------------------------------------------------------------------------- #


class SnapshotStore:
    """A directory of snapshot files keyed by graph content fingerprint.

    ``store.save(snapshot, graph=g)`` writes ``<root>/<fingerprint>.snap``
    (atomically, deterministically) and marks the in-memory snapshot as
    store-backed, so pickling it — e.g. into a process pool's shared
    payload — ships the file path instead of the arrays.
    ``store.load(graph)`` fingerprints the live graph, mmap-loads the
    matching file and validates the recorded fingerprint and
    ``Graph.version``; any mismatch raises a typed
    :class:`~repro.exceptions.StoreError` (callers fall back to a build).
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self._root = Path(root)
        # service/session observability: cumulative counters of this store
        # handle (per process — the file cache itself is shared machine-wide)
        self.hits = 0
        self.misses = 0
        self.saves = 0
        self.builds = 0
        self.patches = 0
        self.patched_segments_reused = 0
        self.patched_segments_rewritten = 0
        # per-fingerprint build coordination: concurrent sessions sharing one
        # store handle serialize the miss path per graph, so N tenants racing
        # on a cold graph pay for exactly one physical build + write
        self._locks_guard = threading.Lock()
        self._build_locks: Dict[str, threading.Lock] = {}

    def __getstate__(self) -> Dict[str, object]:
        # stores travel inside MatchConfig; locks don't pickle and counters
        # are per-handle observability, so a copy restarts both
        return {"root": str(self._root)}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__init__(state["root"])  # type: ignore[misc]

    @property
    def root(self) -> Path:
        return self._root

    def metrics(self) -> Dict[str, int]:
        """Cumulative load/save counters of this store handle."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "saves": self.saves,
            "builds": self.builds,
            "patches": self.patches,
            "patched_segments_reused": self.patched_segments_reused,
            "patched_segments_rewritten": self.patched_segments_rewritten,
        }

    def _build_lock(self, fingerprint: str) -> threading.Lock:
        with self._locks_guard:
            lock = self._build_locks.get(fingerprint)
            if lock is None:
                lock = self._build_locks[fingerprint] = threading.Lock()
            return lock

    def get_or_build(
        self,
        graph: Graph,
        build: Callable[[], GraphSnapshot],
        *,
        fingerprint: Optional[str] = None,
        timed: Optional[Callable[[str, Callable[[], object]], object]] = None,
    ) -> Tuple[GraphSnapshot, bool]:
        """The stored snapshot for *graph*, building-and-saving on a cold miss.

        Returns ``(snapshot, loaded)`` where *loaded* says whether the
        snapshot came off the store (``True``) or from *build* (``False``).
        The miss path is serialized per fingerprint, so concurrent callers
        racing on the same cold graph perform **exactly one** build: the
        first caller builds and writes, the rest block briefly and then load
        the freshly written file.  Any :class:`~repro.exceptions.StoreError`
        on the load path falls back to a build; an unwritable store never
        fails the call.

        *timed* is an optional ``timed(phase, thunk)`` hook (the session
        artifact cache passes its phase timer) wrapping the load / save
        steps under the phases ``snapshot_store_load`` /
        ``snapshot_store_save``.
        """
        if timed is None:
            timed = lambda _phase, thunk: thunk()  # noqa: E731
        if fingerprint is None:
            fingerprint = timed(
                "snapshot_store_load", lambda: fingerprint_of(graph)
            )
        with self._build_lock(fingerprint):
            try:
                loaded = timed(
                    "snapshot_store_load",
                    lambda: self.load(graph, fingerprint=fingerprint, count=False),
                )
            except StoreError:
                loaded = None
            if loaded is not None:
                self.hits += 1
                return loaded, True
            self.misses += 1
            snapshot = build()
            self.builds += 1
            try:
                timed(
                    "snapshot_store_save",
                    lambda: self.save(snapshot, fingerprint=fingerprint),
                )
            except (StoreError, OSError):
                pass
            return snapshot, False

    def path_for(self, fingerprint: str) -> Path:
        """The file a snapshot with *fingerprint* is stored at."""
        return self._root / f"{fingerprint}{SNAPSHOT_SUFFIX}"

    def save(
        self,
        snapshot: GraphSnapshot,
        *,
        graph: Optional[Graph] = None,
        fingerprint: Optional[str] = None,
    ) -> Path:
        """Write *snapshot* into the store; returns the file path.

        The fingerprint is computed from *graph* when given (cheaper reads),
        else from the snapshot's own read surface — both hash the same
        content, so the two keys are identical by construction.
        """
        if fingerprint is None:
            fingerprint = fingerprint_of(snapshot if graph is None else graph)
        self._root.mkdir(parents=True, exist_ok=True)
        path = write_snapshot(snapshot, self.path_for(fingerprint), fingerprint=fingerprint)
        snapshot._mark_stored(str(path), fingerprint)
        self.saves += 1
        return path

    def patch(
        self,
        snapshot: GraphSnapshot,
        *,
        base: Union[GraphSnapshot, str, None],
        fingerprint: Optional[str] = None,
        prune_base: bool = False,
    ) -> Path:
        """Save *snapshot* by patching the store file it was derived from.

        *base* is the snapshot this one was patched from (ideally
        store-backed, so its file is known) or a bare fingerprint.  Only
        the segments whose bytes changed are re-serialized; the rest are
        carried over from the base file, and the result — byte-identical
        to a full save — lands under the new fingerprint via atomic
        rename.  Falls back to a plain :meth:`save` when the base file is
        missing or unreadable, so callers never have to special-case cold
        stores.  With ``prune_base=True`` the base file is unlinked after
        a successful patch (streaming ingest would otherwise leave one
        file per batch behind; concurrent readers that already mmap'd the
        base keep a live mapping through the open inode).
        """
        if fingerprint is None:
            fingerprint = fingerprint_of(snapshot)
        if isinstance(base, GraphSnapshot):
            base_fingerprint = base.store_fingerprint
            if base.store_path is not None:
                base_path: Optional[Path] = Path(base.store_path)
            elif base_fingerprint is not None:
                base_path = self.path_for(base_fingerprint)
            else:
                base_path = None
        else:
            base_fingerprint = base
            base_path = self.path_for(base) if base else None
        if fingerprint == base_fingerprint and base_path is not None:
            # the delta cancelled out: the base file already is this content
            snapshot._mark_stored(str(base_path), fingerprint)
            return base_path
        if base_path is None or not base_path.is_file():
            return self.save(snapshot, fingerprint=fingerprint)
        self._root.mkdir(parents=True, exist_ok=True)
        try:
            path, stats = patch_snapshot(
                snapshot,
                self.path_for(fingerprint),
                base_path=base_path,
                fingerprint=fingerprint,
            )
        except (StoreError, OSError):
            return self.save(snapshot, fingerprint=fingerprint)
        snapshot._mark_stored(str(path), fingerprint)
        self.patches += 1
        self.patched_segments_reused += stats["segments_reused"]
        self.patched_segments_rewritten += stats["segments_rewritten"]
        if prune_base and base_path != path:
            try:
                base_path.unlink()
            except OSError:
                pass
        return path

    def load(
        self,
        graph: Graph,
        *,
        fingerprint: Optional[str] = None,
        count: bool = True,
    ) -> GraphSnapshot:
        """The stored snapshot matching *graph*, mmap-attached.

        Raises :class:`~repro.exceptions.StoreMissError` when no file exists
        for the graph's fingerprint and :class:`~repro.exceptions.StoreError`
        subclasses for unreadable or stale files.  Pass *fingerprint* when
        the caller has already fingerprinted the graph.  ``count=False``
        leaves the hit/miss counters to the caller (:meth:`get_or_build`
        classifies its own outcomes).
        """
        if fingerprint is None:
            fingerprint = fingerprint_of(graph)
        # The fingerprint fully determines the compiled arrays, but not
        # Graph.version: a mutate-then-undo sequence returns to the same
        # content at a higher version.  Accept any file with the right
        # fingerprint and rebase its version onto the live graph's, so
        # journal-delta consumers see a current snapshot.
        try:
            snapshot = read_snapshot(
                self.path_for(fingerprint),
                expect_fingerprint=fingerprint,
            )
        except StoreError:
            if count:
                self.misses += 1
            raise
        snapshot.version = graph.version
        if count:
            self.hits += 1
        return snapshot

    def load_fingerprint(self, fingerprint: str) -> GraphSnapshot:
        """Load a stored snapshot by fingerprint (no live graph to check)."""
        return read_snapshot(self.path_for(fingerprint), expect_fingerprint=fingerprint)

    def contains(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).is_file()

    def __contains__(self, fingerprint: object) -> bool:
        return isinstance(fingerprint, str) and self.contains(fingerprint)

    def fingerprints(self) -> List[str]:
        """The fingerprints of every stored snapshot (sorted)."""
        if not self._root.is_dir():
            return []
        return sorted(
            entry.name[: -len(SNAPSHOT_SUFFIX)]
            for entry in self._root.iterdir()
            if entry.name.endswith(SNAPSHOT_SUFFIX)
        )

    def __len__(self) -> int:
        return len(self.fingerprints())

    def __str__(self) -> str:
        return str(self._root)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SnapshotStore({str(self._root)!r}, entries={len(self)})"


def as_snapshot_store(
    value: Union[None, str, os.PathLike, "SnapshotStore"]
) -> Optional["SnapshotStore"]:
    """Coerce a configuration value (path or store) into a store, or None."""
    if value is None or isinstance(value, SnapshotStore):
        return value
    return SnapshotStore(value)
