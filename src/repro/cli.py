"""Command-line interface: ``repro-keys`` / ``python -m repro.cli``.

Sub-commands:

* ``match``      — load a graph and a key set (DSL files) and run entity matching;
* ``check``      — check ``G |= Q(x)`` for every key and report violations;
* ``generate``   — write a synthetic dataset (graph + keys) to DSL files;
* ``bench``      — run one of the paper's sweeps and print the series;
* ``algorithms`` — list the registered matching backends and their options
  (``--json`` for the machine-readable catalog service clients consume);
* ``snapshot``   — operate on stored ``GraphSnapshot`` files
  (``save`` / ``info`` / ``verify``);
* ``serve``      — run the long-lived matching service (JSON over HTTP):
  named graphs, concurrent match requests with admission control, progress
  streaming and ``/metrics`` observability (see ``repro.service``).

``match --snapshot-store DIR`` consults an on-disk snapshot store before
compiling the graph (a warm file is ``mmap``-loaded, skipping the build) and
writes freshly built snapshots back; ``--profile`` reports whether the
snapshot was loaded or built.

All matching dispatch goes through the algorithm registry: ``match`` accepts
``--fanout`` and generic ``--set key=value`` backend options, which are
validated against the chosen backend's :class:`~repro.api.AlgorithmSpec`.
``match`` and ``bench`` also accept ``--executor {serial,thread,process}``
and ``--workers N`` to run the task batches on a real executor pool
(measured wall-clock seconds are reported next to the simulated cluster
seconds; results are identical to the classic path).  Dataset names are
resolved through the dataset registry (:mod:`repro.datasets.registry`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional, Sequence

from .api import MatchSession, algorithm_specs
from .api.registry import ALGORITHMS
from .benchlib import figure_table, processors_sweep, run_experiment, speedup_summary
from .core.matching import violations
from .core.parser import load_graph, load_keys, save_graph, save_keys
from .datasets.registry import DATASETS, dataset_factory, make_dataset
from .exceptions import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-keys",
        description="Keys for graphs: entity matching with recursive graph-pattern keys",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    match_parser = subparsers.add_parser("match", help="run entity matching on DSL files")
    match_parser.add_argument("--graph", required=True, help="graph DSL file")
    match_parser.add_argument("--keys", required=True, help="key DSL file")
    match_parser.add_argument(
        "--algorithm", default="EMOptVC", choices=list(ALGORITHMS), help="algorithm to use"
    )
    match_parser.add_argument("--processors", type=int, default=4, help="simulated workers")
    match_parser.add_argument(
        "--executor",
        choices=["serial", "thread", "process"],
        default=None,
        help="real execution runtime for the task batches (default: classic "
        "in-process execution; 'process' delivers wall-clock parallelism)",
    )
    match_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="real worker count of the executor pool (default: --processors "
        "capped at the machine's CPU count; requires --executor)",
    )
    match_parser.add_argument(
        "--fanout",
        type=int,
        default=None,
        help="bounded-message fan-out budget (EMOptVC only)",
    )
    match_parser.add_argument(
        "--set",
        dest="options",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="backend option passthrough, e.g. --set prioritize=false (repeatable)",
    )
    match_parser.add_argument(
        "--blocking",
        choices=["off", "auto", "force"],
        default="off",
        help="sub-quadratic candidate generation via signature blocking: "
        "'auto' blocks every certified key shape and falls back to the "
        "quadratic enumeration per uncertifiable type, 'force' errors out "
        "instead of falling back (results are identical in every mode)",
    )
    match_parser.add_argument(
        "--incremental",
        action="store_true",
        help="request an incremental run: seed from the session's previous "
        "result and re-chase only journal-affected candidate pairs (a "
        "one-shot CLI invocation has no previous result, so this falls back "
        "to a full run; --profile reports the delta provenance)",
    )
    match_parser.add_argument(
        "--profile",
        action="store_true",
        help="print per-phase timings (snapshot build, candidates, product "
        "graph), snapshot load-vs-build provenance, incremental delta "
        "provenance and per-round/superstep counters after the run",
    )
    match_parser.add_argument(
        "--snapshot-store",
        default=None,
        metavar="DIR",
        help="directory cache of compiled graph snapshots: mmap-load the "
        "snapshot when a file matching the graph is stored, write it back "
        "after a build",
    )

    check_parser = subparsers.add_parser("check", help="check key satisfaction (G |= Q(x))")
    check_parser.add_argument("--graph", required=True, help="graph DSL file")
    check_parser.add_argument("--keys", required=True, help="key DSL file")

    generate_parser = subparsers.add_parser("generate", help="generate a synthetic dataset")
    generate_parser.add_argument(
        "--dataset",
        default="synthetic",
        choices=list(DATASETS),
        help="which registered dataset to build",
    )
    generate_parser.add_argument("--keys-count", type=int, default=20, dest="num_keys")
    generate_parser.add_argument("--chain-length", type=int, default=2)
    generate_parser.add_argument("--radius", type=int, default=2)
    generate_parser.add_argument("--scale", type=float, default=1.0)
    generate_parser.add_argument("--seed", type=int, default=7)
    generate_parser.add_argument("--out-graph", required=True, help="output graph DSL file")
    generate_parser.add_argument("--out-keys", required=True, help="output key DSL file")

    bench_parser = subparsers.add_parser("bench", help="run a processors sweep and print it")
    bench_parser.add_argument(
        "--dataset",
        default="synthetic",
        choices=list(DATASETS),
    )
    bench_parser.add_argument("--processors", type=int, nargs="+", default=[4, 8, 12, 16, 20])
    bench_parser.add_argument("--scale", type=float, default=1.0)
    bench_parser.add_argument(
        "--executor",
        choices=["serial", "thread", "process"],
        default=None,
        help="run the sweep's backends on a real executor and report measured "
        "wall-clock seconds next to the simulated cluster seconds",
    )
    bench_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="real worker count of the executor pool (requires --executor)",
    )

    algorithms_parser = subparsers.add_parser(
        "algorithms", help="list the registered matching algorithms and their options"
    )
    algorithms_parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output: one JSON object per backend with "
        "name, family, description, capabilities and typed options (what "
        "service clients use to discover backends)",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the long-lived matching service (JSON over HTTP): register "
        "named graphs, submit concurrent match requests, poll status and "
        "stream progress — all graphs multiplex one shared snapshot store",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument("--port", type=int, default=8765, help="bind port")
    serve_parser.add_argument(
        "--snapshot-store",
        default=None,
        metavar="DIR",
        help="shared on-disk snapshot store every registered graph "
        "multiplexes (strongly recommended: restarts warm-start off disk)",
    )
    serve_parser.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        help="worker threads executing match requests concurrently",
    )
    serve_parser.add_argument(
        "--max-queued",
        type=int,
        default=16,
        help="requests allowed to wait for a worker before new submissions "
        "are rejected with HTTP 429",
    )
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request queue-wait deadline (overridable per "
        "request; default: no deadline)",
    )
    serve_parser.add_argument(
        "--graph",
        dest="graphs",
        action="append",
        default=[],
        metavar="NAME=GRAPH_FILE:KEYS_FILE",
        help="pre-register a named graph from DSL files at startup "
        "(repeatable); more graphs can be registered over HTTP",
    )
    serve_parser.add_argument(
        "--wal",
        default=None,
        metavar="DIR",
        help="write-ahead journal root: every graph's ingest ops are "
        "journalled before they apply, and a restart replays any window "
        "a crash left un-flushed (fingerprint-verified)",
    )
    serve_parser.add_argument(
        "--fsync",
        choices=["always", "batch", "off"],
        default="batch",
        help="WAL durability: fsync every op / every flushed batch / never "
        "(default: batch)",
    )
    serve_parser.add_argument(
        "--max-pending-ops",
        type=int,
        default=None,
        metavar="N",
        help="bound the per-graph un-flushed ingest window; windows that "
        "would exceed it get HTTP 429 with a measured Retry-After",
    )
    serve_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="graceful-drain budget on SIGTERM/Ctrl-C: how long to wait "
        "for queued requests before stopping (default: 30s per worker)",
    )
    serve_parser.add_argument(
        "--profile",
        action="store_true",
        help="print the final /metrics scrape as JSON after shutdown "
        "(admission, ingest staleness, WAL and drain counters)",
    )

    ingest_parser = subparsers.add_parser(
        "ingest",
        help="consume a continuous mutation stream (JSONL) against a graph, "
        "folding it into incremental re-matches in latency-budgeted batches",
    )
    ingest_parser.add_argument("--graph", required=True, help="graph DSL file")
    ingest_parser.add_argument("--keys", required=True, help="key DSL file")
    ingest_parser.add_argument(
        "--ops",
        required=True,
        metavar="FILE",
        help="mutation stream: one JSON op per line ('-' reads stdin, so a "
        "producer can pipe mutations in continuously)",
    )
    ingest_parser.add_argument(
        "--algorithm", default="EMOptVC", choices=list(ALGORITHMS), help="algorithm to use"
    )
    ingest_parser.add_argument(
        "--blocking",
        choices=["off", "auto", "force"],
        default="off",
        help="signature blocking for the candidate universe (see 'match')",
    )
    ingest_parser.add_argument(
        "--latency-budget",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="flush a batch once its oldest unflushed mutation is this old; "
        "the published result is never more than one batch stale "
        "(default: 0.25s)",
    )
    ingest_parser.add_argument(
        "--batch-ops",
        type=int,
        default=None,
        metavar="N",
        help="also flush whenever N mutations have accumulated",
    )
    ingest_parser.add_argument(
        "--snapshot-store",
        default=None,
        metavar="DIR",
        help="snapshot store directory; each flushed batch patches the "
        "stored snapshot segment-by-segment instead of rewriting it",
    )
    ingest_parser.add_argument(
        "--max-pending-ops",
        type=int,
        default=None,
        metavar="N",
        help="bound the un-flushed pending window: flush early instead of "
        "letting apply-then-flush debt grow without limit",
    )
    ingest_parser.add_argument(
        "--wal",
        default=None,
        metavar="DIR",
        help="write-ahead journal directory for this stream: ops are "
        "journalled before they apply and each flush is checkpointed "
        "with the post-flush graph fingerprint",
    )
    ingest_parser.add_argument(
        "--fsync",
        choices=["always", "batch", "off"],
        default="batch",
        help="WAL durability: fsync every op / every flushed batch / never "
        "(default: batch)",
    )
    ingest_parser.add_argument(
        "--resume",
        action="store_true",
        help="recover a journal left by a crashed run: replay its "
        "un-checkpointed ops through the pipeline (fingerprint-verified) "
        "before consuming the stream; without this flag a non-empty "
        "journal is an error",
    )
    ingest_parser.add_argument(
        "--json",
        action="store_true",
        help="print the ingest report as JSON instead of the human summary",
    )
    ingest_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-batch progress lines",
    )

    snapshot_parser = subparsers.add_parser(
        "snapshot", help="operate on stored GraphSnapshot files"
    )
    snapshot_sub = snapshot_parser.add_subparsers(dest="snapshot_command", required=True)
    save_parser = snapshot_sub.add_parser(
        "save", help="compile a graph DSL file and write the snapshot to disk"
    )
    save_parser.add_argument("--graph", required=True, help="graph DSL file")
    save_target = save_parser.add_mutually_exclusive_group(required=True)
    save_target.add_argument(
        "--store", metavar="DIR", help="write into a snapshot store directory"
    )
    save_target.add_argument("--out", metavar="FILE", help="write to an explicit file")
    info_parser = snapshot_sub.add_parser(
        "info", help="print the header of a stored snapshot file"
    )
    info_parser.add_argument("file", help="stored snapshot file")
    verify_parser = snapshot_sub.add_parser(
        "verify", help="fully validate a stored snapshot file (structure + checksum)"
    )
    verify_parser.add_argument("file", help="stored snapshot file")
    verify_parser.add_argument(
        "--graph",
        default=None,
        help="also check the fingerprint and Graph.version against this DSL file",
    )
    return parser


def _parse_option_value(raw: str) -> object:
    """Coerce a ``--set`` value: int, float or bool when possible, else str."""
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for converter in (int, float):
        try:
            return converter(raw)
        except ValueError:
            continue
    return raw


def _parse_options(pairs: Sequence[str]) -> Dict[str, object]:
    options: Dict[str, object] = {}
    for item in pairs:
        key, separator, raw = item.partition("=")
        if not separator or not key:
            raise ReproError(f"--set expects KEY=VALUE, got {item!r}")
        if key in ("algorithm", "processors"):
            raise ReproError(f"use --{key} instead of --set {key}=...")
        options[key] = _parse_option_value(raw)
    return options


def _command_match(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    keys = load_keys(args.keys)
    options = _parse_options(args.options)
    if args.fanout is not None:
        options["fanout"] = args.fanout
    session = MatchSession(graph, snapshot_store=args.snapshot_store).with_keys(keys)
    result = session.run(
        args.algorithm,
        processors=args.processors,
        executor=args.executor,
        workers=args.workers,
        incremental=True if args.incremental else None,
        blocking=args.blocking,
        **options,
    )
    print(f"algorithm      : {result.algorithm}")
    print(f"processors     : {result.processors}")
    if args.executor is not None:
        workers = args.workers if args.workers is not None else "auto"
        print(f"executor       : {args.executor} ({workers} workers)")
    print(f"identified     : {result.num_identified} pairs")
    print(f"simulated time : {result.simulated_seconds:.2f} s")
    print(f"wall time      : {result.wall_seconds:.3f} s")
    if args.profile:
        _print_profile(session, result)
    for e1, e2 in sorted(result.pairs()):
        print(f"  {e1} == {e2}")
    return 0


def _print_profile(session: MatchSession, result) -> None:
    """Per-phase timing report for ``match --profile``.

    Artifact-build phases come from the session cache's timers; the solve
    phase is the backend's measured wall clock minus the artifact builds.
    Round/superstep counters come straight from the ``EMResult`` statistics.
    """
    timings = session.phase_timings()
    print("profile:")
    info = session.cache_info()
    if info.store_hits:
        provenance = f"loaded from store ({info.store_hits} hit(s))"
    elif info.store_misses:
        provenance = f"built (store miss: {info.store_misses}), saved back"
    else:
        provenance = "built in process (no snapshot store)"
    print(f"  {'snapshot source':<24} : {provenance}")
    if info.snapshot_patches:
        print(
            f"  {'snapshot refresh':<24} : {info.snapshot_patches} patch(es), "
            f"{info.snapshot_builds} rebuild(s) — patched arrays are "
            f"bit-identical to a recompile"
        )
    delta = session.last_delta()
    if delta is not None:
        if delta.mode == "full":
            print(f"  {'delta provenance':<24} : full run ({delta.reason})")
        else:
            print(
                f"  {'delta provenance':<24} : {delta.mode} "
                f"(touched {delta.touched_nodes} node(s), rechecked "
                f"{delta.pairs_rechecked}, skipped {delta.pairs_skipped}, "
                f"seeded {delta.seed_merges} merge(s), dropped "
                f"{delta.dropped_classes} class(es))"
            )
    for phase in (
        "snapshot_store_load",
        "snapshot_build",
        "snapshot_patch",
        "snapshot_store_save",
        "snapshot_store_patch",
        "neighborhood_index_build",
        "blocking_index_build",
        "blocking_index_rebase",
        "blocking_collision",
        "blocking_pairing_filter",
        "candidates_build",
        "candidates_rebase",
        "dependency_map_build",
        "dependency_map_rebase",
        "product_graph_build",
        "product_graph_rebase",
    ):
        if phase in timings:
            print(f"  {phase:<24} : {timings[phase] * 1000.0:9.2f} ms")
    solve = max(0.0, result.wall_seconds - sum(timings.values()))
    print(f"  {'solve':<24} : {solve * 1000.0:9.2f} ms")
    if info.blocking_index_builds or info.blocking_index_rebases:
        print(
            f"  {'blocking':<24} : {info.blocking_blocks_touched} block(s) "
            f"touched, {info.blocking_pairs_pruned} pair(s) pruned vs "
            f"quadratic"
        )
    stats = result.stats
    counters = {
        "rounds": stats.rounds,
        "checks": stats.checks,
        "messages_processed": stats.messages_processed,
        "shuffled_records": stats.shuffled_records,
        "work_units": stats.work_units,
    }
    for name, value in counters.items():
        if value:
            print(f"  {name:<24} : {value:9d}")


def _command_check(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    keys = load_keys(args.keys)
    any_violation = False
    for key in keys:
        found = violations(graph, key)
        status = "satisfied" if not found else f"{len(found)} violating pair(s)"
        print(f"{key.name:30s} {status}")
        for e1, e2 in found:
            any_violation = True
            print(f"  duplicate candidates: {e1} / {e2}")
    return 1 if any_violation else 0


def _command_generate(args: argparse.Namespace) -> int:
    graph, keys = make_dataset(
        args.dataset,
        num_keys=args.num_keys,
        chain_length=args.chain_length,
        radius=args.radius,
        scale=args.scale,
        seed=args.seed,
    )
    save_graph(graph, args.out_graph)
    save_keys(keys, args.out_keys)
    print(f"wrote {graph.num_triples} triples to {args.out_graph}")
    print(f"wrote {keys.cardinality} keys to {args.out_keys}")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    spec = processors_sweep(
        experiment_id=f"cli-{args.dataset}",
        dataset_name=args.dataset,
        dataset_factory=dataset_factory(args.dataset),
        processors=args.processors,
        scale=args.scale,
        executor=args.executor,
        workers=args.workers,
    )
    result = run_experiment(spec)
    print(figure_table(result, include_wall=args.executor is not None))
    print(speedup_summary(result))
    return 0


def _command_snapshot(args: argparse.Namespace) -> int:
    from .storage import (
        GraphSnapshot,
        SnapshotStore,
        graph_fingerprint,
        snapshot_info,
        verify_snapshot,
        write_snapshot,
    )

    if args.snapshot_command == "save":
        graph = load_graph(args.graph)
        snapshot = GraphSnapshot.build(graph)
        fingerprint = graph_fingerprint(graph)
        if args.store is not None:
            path = SnapshotStore(args.store).save(snapshot, fingerprint=fingerprint)
        else:
            path = write_snapshot(snapshot, args.out, fingerprint=fingerprint)
        print(f"wrote        : {path}")
        print(f"fingerprint  : {fingerprint}")
        print(f"graph version: {snapshot.version}")
        print(f"file size    : {os.path.getsize(path)} bytes")
        print(
            f"contents     : {snapshot.num_entities} entities, "
            f"{snapshot.num_nodes - snapshot.num_entities} values, "
            f"{snapshot.num_triples} triples"
        )
        return 0

    if args.snapshot_command == "info":
        info = snapshot_info(args.file)
        print(f"file          : {info['path']} ({info['file_size']} bytes)")
        print(f"format version: {info['format_version']}")
        print(f"graph version : {info['graph_version']}")
        print(f"fingerprint   : {info['fingerprint']}")
        print(f"byte order    : {info['byteorder']}-endian")
        print(
            f"contents      : {info['num_entities']} entities, "
            f"{info['num_nodes'] - info['num_entities']} values, "
            f"{info['num_triples']} triples, "
            f"{info['num_predicates']} predicates, {len(info['types'])} types"
        )
        for name, (offset, length) in sorted(info["segments"].items()):
            print(f"  segment {name:<16} : {length:>10} bytes @ {offset}")
        return 0

    # verify
    graph = load_graph(args.graph) if args.graph is not None else None
    from .exceptions import StoreError

    try:
        info = verify_snapshot(args.file, graph)
    except StoreError as error:
        print(f"FAIL: {error}")
        return 1
    checked = "structure, checksum, decode"
    if graph is not None:
        checked += ", fingerprint, graph version"
    print(f"OK: {args.file} ({checked})")
    print(f"fingerprint   : {info['fingerprint']}")
    print(f"graph version : {info['graph_version']}")
    return 0


def _command_algorithms(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        from .service.wire import algorithm_catalog

        print(json.dumps({"algorithms": algorithm_catalog()}, indent=2, sort_keys=True))
        return 0
    print(f"{'name':<10} {'family':<15} {'options':<40} description")
    for spec in algorithm_specs():
        options = ", ".join(
            f"{option.name}={option.default!r}" for option in spec.options
        ) or "-"
        print(f"{spec.name:<10} {spec.family:<15} {options:<40} {spec.description}")
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    import contextlib
    import json as json_module

    from .service.ingest import IngestPipeline, iter_jsonl

    graph = load_graph(args.graph)
    keys = load_keys(args.keys)
    session = MatchSession(graph, snapshot_store=args.snapshot_store).with_keys(keys)

    wal = None
    recovery = None
    if args.wal is not None:
        from .core.fingerprint import fingerprint_of
        from .service.wal import WriteAheadLog, replay

        wal = WriteAheadLog(
            args.wal, fsync=args.fsync, base_fingerprint=fingerprint_of(graph)
        )
        if wal.has_records():
            if not args.resume:
                raise ReproError(
                    f"WAL at {args.wal} holds records from a previous run; "
                    f"pass --resume to replay them (or point --wal at a "
                    f"fresh directory)"
                )
            recovery = replay(wal, session)
            if not args.json and not args.quiet:
                print(
                    f"recovered      : {recovery.ops_replayed} op(s) replayed "
                    f"in {recovery.batches} batch(es), "
                    f"{recovery.checkpoints_verified} checkpoint(s) verified, "
                    f"{recovery.pending_replayed} pending op(s) salvaged"
                )

    baseline = session.run(args.algorithm, blocking=args.blocking)
    if not args.json:
        print(
            f"baseline       : {baseline.num_identified} pairs "
            f"({args.algorithm}, blocking={args.blocking})"
        )

    def on_batch(result, report):
        if args.json or args.quiet:
            return
        delta = session.last_delta()
        mode = delta.mode if delta is not None else "full"
        rechecked = delta.pairs_rechecked if delta is not None else 0
        print(
            f"batch {report.batches:>4}   : {result.num_identified} pairs, "
            f"mode={mode}, rechecked={rechecked}"
        )

    pipeline = IngestPipeline(
        session,
        latency_budget=args.latency_budget,
        max_batch_ops=args.batch_ops,
        max_pending_ops=args.max_pending_ops,
        wal=wal,
        on_batch=on_batch,
    )
    try:
        with contextlib.ExitStack() as stack:
            if args.ops == "-":
                stream = sys.stdin
            else:
                stream = stack.enter_context(open(args.ops, "r", encoding="utf-8"))
            report = pipeline.run(iter_jsonl(stream))
    finally:
        if wal is not None:
            wal.close()

    if args.json:
        payload = report.as_dict()
        result = pipeline.last_result or baseline
        payload["identified"] = result.num_identified
        if recovery is not None:
            payload["recovery"] = recovery.as_dict()
        if wal is not None:
            payload["wal"] = wal.metrics()
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0
    result = pipeline.last_result or baseline
    print(f"ops applied    : {report.ops_applied}")
    print(f"batches        : {report.batches} ({report.delta_modes})")
    print(f"identified     : {result.num_identified} pairs")
    print(f"throughput     : {report.mutations_per_second:.1f} mutations/s")
    print(
        f"staleness      : p50 {report.staleness_p50 * 1000.0:.1f} ms, "
        f"p95 {report.staleness_p95 * 1000.0:.1f} ms, "
        f"max {report.staleness_max * 1000.0:.1f} ms"
    )
    print(
        f"time split     : apply {report.apply_seconds:.3f} s, "
        f"rerun {report.rerun_seconds:.3f} s"
    )
    info = session.cache_info()
    print(
        f"snapshots      : {info.snapshot_patches} patch(es), "
        f"{info.snapshot_builds} build(s)"
    )
    if wal is not None:
        metrics = wal.metrics()
        print(
            f"wal            : {metrics['appends']} append(s), "
            f"{metrics['checkpoints']} checkpoint(s), "
            f"{metrics['bytes_written']} bytes, fsync={metrics['fsync_policy']}"
        )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import json as json_module

    from .service import MatchingService, make_http_server
    from .service.server import install_drain_handlers

    service = MatchingService(
        store=args.snapshot_store,
        max_inflight=args.max_inflight,
        max_queued=args.max_queued,
        default_timeout=args.timeout,
        wal_root=args.wal,
        wal_fsync=args.fsync,
        max_pending_ops=args.max_pending_ops,
        drain_timeout=args.drain_timeout,
    )
    for item in args.graphs:
        name, separator, files = item.partition("=")
        graph_file, colon, keys_file = files.partition(":")
        if not separator or not colon or not name or not graph_file or not keys_file:
            raise ReproError(
                f"--graph expects NAME=GRAPH_FILE:KEYS_FILE, got {item!r}"
            )
        entry = service.register_graph(
            name,
            load_graph(graph_file),
            load_keys(keys_file),
            source=f"cli:{graph_file}",
            warm=True,
        )
        print(
            f"registered {name!r}: {entry.graph.num_entities} entities, "
            f"{entry.keys.cardinality} keys"
        )
        if entry.last_recovery is not None:
            print(
                f"  recovered from WAL: "
                f"{entry.last_recovery['ops_replayed']} op(s) replayed, "
                f"{entry.last_recovery['checkpoints_verified']} "
                f"checkpoint(s) verified"
            )
    server = make_http_server(service, args.host, args.port)
    install_drain_handlers(service, server, args.drain_timeout)
    host, port = server.server_address[:2]
    store = args.snapshot_store or "(in-memory only)"
    wal = args.wal or "(not journalled)"
    print(f"repro serve listening on http://{host}:{port}")
    print(f"  snapshot store : {store}")
    print(f"  write-ahead log: {wal} (fsync={args.fsync})")
    print(f"  admission      : {args.max_inflight} in flight, {args.max_queued} queued")
    print(
        "  endpoints      : /healthz /algorithms /graphs "
        "/graphs/<name>/ingest /match /requests /metrics"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
        service.drain(args.drain_timeout)
        final = service.metrics()
        service.close()
    if args.profile:
        print(json_module.dumps(final, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the CLI; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "match": _command_match,
        "check": _command_check,
        "generate": _command_generate,
        "bench": _command_bench,
        "algorithms": _command_algorithms,
        "snapshot": _command_snapshot,
        "serve": _command_serve,
        "ingest": _command_ingest,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
