"""Typed matching configuration: the knobs of a run, in one place.

A :class:`MatchConfig` consolidates what used to be scattered positional
arguments (``processors``) and unreachable backend knobs (``fanout``,
``prioritize``, ``reduce_neighborhoods``) into one validated value object.
Options are a free-form mapping validated *per backend* against the
:class:`~repro.api.registry.AlgorithmSpec` of the chosen algorithm, so a new
backend knob never requires touching the dispatcher — declare it in the
backend's ``options`` and it flows through ``MatchConfig`` untouched.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple, Union

from ..exceptions import ConfigError
from ..runtime import EXECUTOR_KINDS
from ..storage.store import SnapshotStore
from .registry import AlgorithmRegistry, AlgorithmSpec, REGISTRY

#: Default algorithm of the public API (the paper's best performer).
DEFAULT_ALGORITHM = "EMOptVC"

#: Default simulated worker count (the paper's sweeps start at p=4).
DEFAULT_PROCESSORS = 4


@dataclass(frozen=True)
class MatchConfig:
    """The full configuration of one entity-matching run.

    ``processors`` is the *simulated* cluster size ``p`` observed by the cost
    models; ``executor`` / ``workers`` select the *real* execution runtime
    (``"serial"`` / ``"thread"`` / ``"process"`` pools of ``workers`` real
    workers; ``None`` keeps the classic in-process execution).  Executor
    support is validated per backend at :meth:`resolve` time against the
    ``"executors"`` capability of the chosen
    :class:`~repro.api.registry.AlgorithmSpec`.
    """

    algorithm: str = DEFAULT_ALGORITHM
    processors: int = DEFAULT_PROCESSORS
    options: Mapping[str, object] = field(default_factory=dict)
    executor: Optional[str] = None
    workers: Optional[int] = None
    #: on-disk snapshot store (a directory path or a ``SnapshotStore``):
    #: sessions consult it before compiling a ``GraphSnapshot`` and write
    #: freshly built snapshots back; ``None`` keeps the in-memory-only path
    snapshot_store: Union[None, str, os.PathLike, SnapshotStore] = None
    #: run incrementally by default: after graph mutations, re-chase only the
    #: journal-affected candidate pairs seeded from the previous result
    #: (sessions fall back to a full run when no previous result exists or
    #: the journal window expired)
    incremental: bool = False
    #: candidate enumeration strategy: ``"off"`` is the quadratic per-type
    #: scan, ``"auto"`` enumerates through signature blocks with a per-type
    #: quadratic fallback for keys the prover cannot certify, ``"force"``
    #: raises instead of falling back (see :mod:`repro.matching.blocking`).
    #: Validated per backend at :meth:`resolve` time against the
    #: ``"blocking"`` capability.
    blocking: str = "off"

    def __post_init__(self) -> None:
        if not isinstance(self.incremental, bool):
            raise ConfigError(
                f"incremental must be a bool, got {self.incremental!r}"
            )
        if self.blocking not in ("off", "auto", "force"):
            raise ConfigError(
                f"unknown blocking mode {self.blocking!r}; "
                f"expected one of off, auto, force"
            )
        if not isinstance(self.processors, int) or isinstance(self.processors, bool):
            raise ConfigError(f"processors must be an int, got {self.processors!r}")
        if self.processors < 1:
            raise ConfigError(f"processors must be >= 1, got {self.processors}")
        if self.executor is not None and self.executor not in EXECUTOR_KINDS:
            raise ConfigError(
                f"unknown executor {self.executor!r}; "
                f"expected one of {', '.join(EXECUTOR_KINDS)}"
            )
        if self.workers is not None:
            if not isinstance(self.workers, int) or isinstance(self.workers, bool):
                raise ConfigError(f"workers must be an int, got {self.workers!r}")
            if self.workers < 1:
                raise ConfigError(f"workers must be >= 1, got {self.workers}")
            if self.executor is None:
                raise ConfigError("workers requires an executor (e.g. executor='process')")
        if self.snapshot_store is not None and not isinstance(
            self.snapshot_store, (str, os.PathLike, SnapshotStore)
        ):
            raise ConfigError(
                f"snapshot_store must be a directory path or a SnapshotStore, "
                f"got {type(self.snapshot_store).__name__} {self.snapshot_store!r}"
            )
        # freeze the options mapping into a plain dict we own
        object.__setattr__(self, "options", dict(self.options))

    def __hash__(self) -> int:
        # the generated frozen-dataclass hash would choke on the options dict
        return hash(
            (
                self.algorithm,
                self.processors,
                self.executor,
                self.workers,
                None if self.snapshot_store is None else str(self.snapshot_store),
                self.incremental,
                self.blocking,
                tuple(sorted(self.options.items())),
            )
        )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable wire form (the service's request schema).

        The snapshot store travels as its directory path (``str``) — a live
        :class:`SnapshotStore` handle is a per-process object.
        """
        return {
            "algorithm": self.algorithm,
            "processors": self.processors,
            "executor": self.executor,
            "workers": self.workers,
            "snapshot_store": (
                None if self.snapshot_store is None else str(self.snapshot_store)
            ),
            "incremental": self.incremental,
            "blocking": self.blocking,
            "options": dict(self.options),
        }

    #: the keys :meth:`from_dict` accepts — anything else is a client error
    _WIRE_FIELDS = frozenset(
        ("algorithm", "processors", "executor", "workers",
         "snapshot_store", "incremental", "blocking", "options")
    )

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "MatchConfig":
        """Build a config from a wire mapping, rejecting unknown keys.

        Raises :class:`~repro.exceptions.ConfigError` on unknown keys or
        ill-typed values (the same validation the constructor applies), so a
        service front end can turn any bad request into a clean 400.
        """
        unknown = sorted(set(payload) - cls._WIRE_FIELDS)
        if unknown:
            raise ConfigError(
                f"unknown config field(s): {', '.join(unknown)} "
                f"(accepted: {', '.join(sorted(cls._WIRE_FIELDS))})"
            )
        options = payload.get("options", {})
        if not isinstance(options, Mapping):
            raise ConfigError(f"options must be a mapping, got {options!r}")
        kwargs: Dict[str, object] = {"options": dict(options)}
        for name in ("algorithm", "processors", "executor", "workers",
                     "snapshot_store", "incremental", "blocking"):
            if name in payload and payload[name] is not None:
                kwargs[name] = payload[name]
        if "algorithm" in kwargs and not isinstance(kwargs["algorithm"], str):
            raise ConfigError(f"algorithm must be a string, got {kwargs['algorithm']!r}")
        return cls(**kwargs)  # type: ignore[arg-type]

    def with_options(self, **options: object) -> "MatchConfig":
        """A copy of this config with *options* merged in."""
        merged = dict(self.options)
        merged.update(options)
        return replace(self, options=merged)

    def using(self, algorithm: str, **options: object) -> "MatchConfig":
        """A copy targeting *algorithm*, replacing the backend options."""
        return replace(self, algorithm=algorithm, options=dict(options))

    def resolve(
        self, registry: Optional[AlgorithmRegistry] = None
    ) -> Tuple[AlgorithmSpec, Dict[str, object]]:
        """Look up the algorithm spec and validate the options against it.

        Raises :class:`~repro.exceptions.MatchingError` for unknown algorithm
        names and :class:`~repro.exceptions.ConfigError` for options the
        backend does not accept (or of the wrong type), or when an executor
        is requested from a backend without the ``"executors"`` capability.
        """
        # explicit None-check: an empty registry is falsy (it has __len__)
        spec = (REGISTRY if registry is None else registry).get(self.algorithm)
        if self.executor is not None and "executors" not in spec.capabilities:
            raise ConfigError(
                f"algorithm {spec.name!r} does not support executor selection "
                f"(requested executor={self.executor!r})"
            )
        if self.blocking != "off" and "blocking" not in spec.capabilities:
            raise ConfigError(
                f"algorithm {spec.name!r} does not support blocked candidate "
                f"generation (requested blocking={self.blocking!r})"
            )
        return spec, spec.validate_options(self.options)

    def validated(self, registry: Optional[AlgorithmRegistry] = None) -> "MatchConfig":
        """Validate and return self (fluent form of :meth:`resolve`)."""
        self.resolve(registry)
        return self

    def describe(self) -> str:
        """Human-readable one-liner, e.g. for provenance logs."""
        parts = [f"p={self.processors}"]
        if self.executor is not None:
            parts.append(f"executor={self.executor}")
            if self.workers is not None:
                parts.append(f"workers={self.workers}")
        if self.snapshot_store is not None:
            parts.append(f"store={str(self.snapshot_store)!r}")
        if self.incremental:
            parts.append("incremental")
        if self.blocking != "off":
            parts.append(f"blocking={self.blocking}")
        parts.extend(f"{k}={v!r}" for k, v in sorted(self.options.items()))
        return f"{self.algorithm}({', '.join(parts)})"
