"""Public matching API: algorithm registry, typed config and session facade.

Layering note: the matching backends in :mod:`repro.matching` import
:mod:`repro.api.registry` at import time to register themselves, while
:mod:`repro.api.session` imports :mod:`repro.matching` for the cached
artifacts (candidate sets, product graphs).  To keep that acyclic, this
package eagerly exposes only the registry/config/event layer and loads the
session module lazily on first attribute access (PEP 562).
"""

from __future__ import annotations

from .config import DEFAULT_ALGORITHM, DEFAULT_PROCESSORS, MatchConfig
from .events import EventStream, ProgressEvent, ProgressObserver
from .registry import (
    ALGORITHMS,
    REGISTRY,
    AlgorithmRegistry,
    AlgorithmSpec,
    AlgorithmsView,
    OptionSpec,
    algorithm_specs,
    get_algorithm,
    register_algorithm,
)

_LAZY_SESSION_EXPORTS = (
    "DeltaProvenance",
    "MatchSession",
    "Session",
    "SessionCacheInfo",
)

__all__ = [
    "ALGORITHMS",
    "AlgorithmRegistry",
    "AlgorithmSpec",
    "AlgorithmsView",
    "DEFAULT_ALGORITHM",
    "DEFAULT_PROCESSORS",
    "DeltaProvenance",
    "EventStream",
    "MatchConfig",
    "MatchSession",
    "OptionSpec",
    "ProgressEvent",
    "ProgressObserver",
    "REGISTRY",
    "Session",
    "SessionCacheInfo",
    "algorithm_specs",
    "get_algorithm",
    "register_algorithm",
]


def __getattr__(name: str):
    if name in _LAZY_SESSION_EXPORTS:
        from . import session

        value = getattr(session, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY_SESSION_EXPORTS))
