"""``MatchSession``: one configurable entry point for repeated matching runs.

A session owns a graph, a key set and the expensive precomputed artifacts the
backends share — the :class:`~repro.core.neighborhood.NeighborhoodIndex`, the
candidate sets (per filter flavour), the product graph and the per-key
traversal orders — so a benchmark sweep that runs all six algorithms on the
same input builds each of them exactly once instead of once per algorithm::

    from repro import MatchSession

    session = MatchSession(graph).with_keys(keys)
    opt = session.using("EMOptVC", processors=8, fanout=4).run()
    mr = session.run("EMOptMR")          # reuses the neighbourhood index

Sessions also support incremental re-matching: mutating the graph (e.g.
``graph.add_value(...)`` or ``graph.remove_edge(...)``) between runs is
detected via the graph's mutation journal, and only the artifacts a mutation
could have staled are evicted or rebased before the next run.  Going further,
``session.rerun()`` (= ``run(incremental=True)``) seeds the next run from the
previous result and re-chases only the journal-affected candidate pairs —
bit-identical to a full run, with :meth:`MatchSession.last_delta` reporting
the delta provenance.  Observers registered with
:meth:`MatchSession.on_progress` receive per-round
:class:`~repro.api.events.ProgressEvent` notifications, and
:attr:`MatchSession.history` records the (config, result) provenance of every
run.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import os

from ..core.equivalence import Pair
from ..core.graph import Graph
from ..core.key import KeySet
from ..core.neighborhood import NeighborhoodIndex, radius_per_type
from ..exceptions import MatchingError, StoreError
from ..matching.blocking import BlockingIndex
from ..matching.candidates import (
    CandidateSet,
    build_candidates,
    build_filtered_candidates,
)
from ..matching.incremental import (
    DependencyArtifact,
    IncrementalState,
    extra_dependency_edges,
    plan_delta,
    rebase_filtered_candidates,
    touched_entity_nodes,
)
from ..matching.product_graph import ProductGraph
from ..matching.result import EMResult
from ..matching.traversal_order import traversal_orders
from ..storage import GraphSnapshot, SnapshotNeighborhoodIndex
from ..storage.store import SnapshotStore, as_snapshot_store
from .config import MatchConfig
from .events import _LOGGER as _EVENT_LOGGER
from .events import EventStream, ProgressEvent, ProgressObserver
from .registry import ALGORITHMS, get_algorithm


@dataclass(frozen=True)
class SessionCacheInfo:
    """Build counters of a session's artifact cache (for tests and tuning)."""

    snapshot_builds: int = 0
    neighborhood_index_builds: int = 0
    candidate_builds: int = 0
    product_graph_builds: int = 0
    traversal_order_builds: int = 0
    invalidations: int = 0
    #: snapshots served from / missing in the configured on-disk store
    #: (both stay 0 when the session has no snapshot store)
    store_hits: int = 0
    store_misses: int = 0
    #: filtered candidate sets / product graphs migrated onto a new graph
    #: version by journal-delta rebasing instead of a from-scratch rebuild
    candidate_rebases: int = 0
    product_graph_rebases: int = 0
    #: snapshots produced by patching the previous compiled snapshot with the
    #: mutation delta instead of recompiling from scratch (the patched arrays
    #: are bit-identical to a rebuild; counted separately from
    #: ``snapshot_builds``, which counts full recompiles only)
    snapshot_patches: int = 0
    #: incremental (delta) runs actually executed — silent fallbacks to a
    #: full run (no previous result, expired journal window) do not count
    incremental_runs: int = 0
    #: cumulative candidate pairs re-chased / skipped across incremental
    #: runs; per run, rechecked + skipped == |L| of the new graph
    pairs_rechecked: int = 0
    pairs_skipped: int = 0
    #: blocking-layer observability: signature index builds / journal-delta
    #: rebases, blocks enumerated, and candidate pairs pruned vs. the
    #: quadratic baseline (cumulative across blocked candidate builds)
    blocking_index_builds: int = 0
    blocking_index_rebases: int = 0
    blocking_blocks_touched: int = 0
    blocking_pairs_pruned: int = 0
    #: key-set deltas applied by selective per-type invalidation
    #: (:meth:`SessionArtifacts.rekeyed`) instead of a full cache drop
    key_rebases: int = 0


@dataclass(frozen=True)
class DeltaProvenance:
    """How the last requested incremental run was actually executed."""

    #: ``"incremental"`` (delta re-chase), ``"reused"`` (delta touched
    #: nothing: previous result returned as-is) or ``"full"`` (fallback).
    mode: str
    #: why an incremental request fell back to a full run (``mode="full"``).
    reason: Optional[str] = None
    #: journal-delta statistics (zero for full fallbacks).
    touched_nodes: int = 0
    pairs_rechecked: int = 0
    pairs_skipped: int = 0
    dropped_classes: int = 0
    seed_merges: int = 0


class SessionArtifacts:
    """The per-session cache of precomputed matching artifacts.

    Backends receive this object as their ``artifacts`` argument and ask it
    for candidate sets / product graphs instead of rebuilding them.  Flavours
    are keyed by ``(filtered, reduce_neighborhoods, blocked)``; all flavours
    share one underlying :class:`NeighborhoodIndex` (reduced flavours
    restrict a clone, never the shared base) and one
    :class:`~repro.matching.blocking.BlockingIndex` (the ``auto`` and
    ``force`` modes enumerate identical pairs whenever ``force`` is
    accepted, so one ``blocked`` flavour bit serves both).

    The cache is **safe for concurrent callers**: every accessor runs under a
    build-once re-entrant lock, so two requests racing on a cold artifact
    never duplicate the build and never observe a half-built value — the
    second caller blocks until the first caller's build is published, then
    returns the same object.  One ``SessionArtifacts`` may therefore be
    shared by many sessions on the same ``(graph, keys)`` (the service layer
    multiplexes all requests for a named graph through one instance).
    """

    #: patch-vs-rebuild threshold: a journal delta touching more than this
    #: fraction of the snapshot's interned nodes recompiles the snapshot
    #: instead of patching it (a near-total patch recomputes almost every
    #: CSR row *and* pays the splice bookkeeping, so a clean build wins)
    SNAPSHOT_PATCH_MAX_FRACTION = 0.5

    def __init__(
        self,
        graph: Graph,
        keys: KeySet,
        snapshot_store: Optional[SnapshotStore] = None,
    ) -> None:
        self._graph = graph
        self._keys = keys
        # per-type key lists snapshotted for rekeyed()'s delta detection:
        # diffing against this baseline (not against the live KeySet object)
        # also catches in-place KeySet mutation between with_keys calls
        self._keyed_types = {
            etype: list(keys.keys_for_type(etype)) for etype in keys.target_types()
        }
        #: optional on-disk snapshot store consulted before every build
        self.snapshot_store = snapshot_store
        # build-once lock: accessors nest (product graph → candidates →
        # index → snapshot), so the lock must be re-entrant
        self._lock = threading.RLock()
        self._version = graph.version
        self._snapshot: Optional[GraphSnapshot] = None
        self._index: Optional[SnapshotNeighborhoodIndex] = None
        self._blocking_index: Optional[BlockingIndex] = None
        self._candidates: Dict[Tuple[bool, bool, bool], CandidateSet] = {}
        self._dependency_maps: Dict[Tuple[bool, bool, bool], DependencyArtifact] = {}
        self._product_graphs: Dict[Tuple[bool, bool, bool], ProductGraph] = {}
        self._orders: Optional[Dict[str, object]] = None
        # journal-delta rebasing: artifacts staled by a mutation wait here
        # (with the union of delta-affected entities) until the accessor
        # migrates them onto the new graph version instead of rebuilding
        self._stale_candidates: Dict[Tuple[bool, bool, bool], Tuple[CandidateSet, set]] = {}
        self._stale_product_graphs: Dict[Tuple[bool, bool, bool], Tuple[ProductGraph, set]] = {}
        self._stale_dependency_maps: Dict[Tuple[bool, bool, bool], Tuple[DependencyArtifact, set]] = {}
        # build counters exposed through SessionCacheInfo
        self.snapshot_builds = 0
        self.index_builds = 0
        self.candidate_builds = 0
        self.product_graph_builds = 0
        self.order_builds = 0
        self.invalidations = 0
        self.store_hits = 0
        self.store_misses = 0
        self.candidate_rebases = 0
        self.product_graph_rebases = 0
        self.snapshot_patches = 0
        self.incremental_runs = 0
        self.pairs_rechecked = 0
        self.pairs_skipped = 0
        self.blocking_index_builds = 0
        self.blocking_index_rebases = 0
        self.blocking_blocks_touched = 0
        self.blocking_pairs_pruned = 0
        self.key_rebases = 0
        #: cumulative seconds spent building each artifact kind (CLI --profile)
        self.timings: Dict[str, float] = {}

    def _timed(self, phase: str, build):
        started = time.perf_counter()
        result = build()
        self.timings[phase] = self.timings.get(phase, 0.0) + (
            time.perf_counter() - started
        )
        return result

    # -- cache lifecycle ------------------------------------------------- #

    def reset(self) -> None:
        """Drop every cached artifact (e.g. after a key-set change).

        The incremental-run counters are reset alongside: a manual
        invalidation severs the delta chain (the next incremental run falls
        back to a full one), so the per-delta accounting restarts too.
        """
        with self._lock:
            self._snapshot = None
            self._index = None
            self._blocking_index = None
            self._candidates.clear()
            self._dependency_maps.clear()
            self._product_graphs.clear()
            self._stale_candidates.clear()
            self._stale_product_graphs.clear()
            self._stale_dependency_maps.clear()
            self._orders = None
            self._version = self._graph.version
            self.invalidations += 1
            self.incremental_runs = 0
            self.pairs_rechecked = 0
            self.pairs_skipped = 0

    def rekeyed(self, keys: KeySet) -> set:
        """Swap the key set, invalidating only what the key delta affects.

        Returns the set of entity types whose key lists actually changed
        (added, removed, or edited keys).  The graph-only artifacts — the
        compiled snapshot and every cached neighbourhood of an *unchanged*
        type (same keys ⇒ same per-type radius) — survive untouched.  The
        key-derived artifacts are parked for delta rebasing with the changed
        types' entities as the affected set, so the next access re-runs the
        pairing fixpoint and dependency-row derivation only for those pairs:

        * a pair of an unchanged type keeps its pairing verdict — pairing is
          the simulation fixpoint of the pair's own type's key patterns over
          graph-only d-neighbourhoods, so no other type's keys enter it;
        * a dependency edge between two unchanged-type pairs is a
          neighbourhood-containment fact plus the dependent's own
          ``depends_on_types`` — both unchanged — while edges to pairs that
          vanished (type lost its keys) or appeared (type gained keys) are
          unlinked/probed by the rebase's removed/fresh handling.

        The blocking index and traversal orders are dropped outright: their
        per-type signature schemes/orders derive from the keys and rebuild
        in one cheap pass on next use.  An empty return means the key lists
        are identical and every cached artifact (and any incremental seed
        state the caller holds) is still exact.
        """
        with self._lock:
            old_by_type = self._keyed_types
            new_by_type = {
                etype: list(keys.keys_for_type(etype))
                for etype in keys.target_types()
            }
            changed = {
                etype
                for etype in set(old_by_type) | set(new_by_type)
                if old_by_type.get(etype) != new_by_type.get(etype)
            }
            self._keys = keys
            self._keyed_types = new_by_type
            if not changed:
                return changed
            affected = {
                entity
                for entity in self._graph.entity_ids()
                if self._graph.entity_type(entity) in changed
            }
            self._stash_for_rebase(affected)
            if self._index is not None:
                self._index = self._index.rekeyed(keys, evict=affected)
            self._blocking_index = None
            self._orders = None
            self.invalidations += 1
            self.key_rebases += 1
            return changed

    def stale_entities(self, touched: set) -> set:
        """Entities whose cached d-neighbourhood a *touched* node set stales.

        An entity is stale when it was touched itself or when its cached
        (pre-mutation) neighbourhood contains a touched node.  By the
        locality argument in :mod:`repro.matching.incremental` this also
        covers every entity whose *new* neighbourhood gained a touched node.
        """
        with self._lock:
            if self._index is None:
                return set()
            return {
                entity
                for entity in self._index.cached_entities()
                if entity in touched or touched & self._index.nodes(entity)
            }

    def _touched_ball_entities(self, touched: set) -> set:
        """Entities within key radius of any touched node, on the new graph.

        The delta-proportional superset of every entity whose d-ball a
        mutation could have entered or left: walk any old or new path from
        such an entity towards the mutation and the first touched node on it
        is reached through edges present on both sides of the delta, so a
        BFS from the touched nodes over the *new* snapshot finds the entity
        within the same radius.  (A node removed outright anchors through
        its old neighbours: deleting its edges touched them all.)  Unlike
        :meth:`stale_entities` this does not depend on which neighbourhoods
        happen to be cached.
        """
        snapshot = self.snapshot()
        radius = max(radius_per_type(self._keys).values(), default=0)
        seen: set = set()
        for node in touched:
            root = snapshot.id_of(node)
            if root is None:
                continue
            seen.update(snapshot.neighborhood_ids(root, radius))
        num_entities = snapshot.num_entities
        node_of = snapshot._node_of
        return {node_of[index] for index in seen if index < num_entities}

    def refresh(self, stale_hint: Optional[set] = None) -> None:
        """Reconcile the cache with any graph mutations since the last run.

        When the mutation journal still covers the delta, the compiled
        :class:`GraphSnapshot` is *patched* — only the journal-touched CSR
        rows are recomputed and spliced into the previous arrays, with the
        result bit-identical to a recompile (see :meth:`_patched_snapshot`
        for the patch-vs-rebuild size threshold) — and the derived
        artifacts are *rebased* instead of rebuilt: the
        neighbourhood index evicts only the entities a touched node could
        have staled, and the filtered candidate sets / product graphs are
        parked for :func:`~repro.matching.incremental.rebase_filtered_candidates`
        (re-running the pairing fixpoint only for delta-affected pairs) on
        their next access.  An expired journal window drops everything.

        *stale_hint* lets a caller that already ran :meth:`stale_entities`
        for the same journal window (the incremental planner) pass the
        result in, skipping the second neighbourhood sweep.
        """
        with self._lock:
            version = self._graph.version
            if version == self._version:
                return
            touched = self._graph.touched_since(self._version)
            if touched is None or self._index is None:
                self._candidates.clear()
                self._product_graphs.clear()
                self._dependency_maps.clear()
                self._stale_candidates.clear()
                self._stale_product_graphs.clear()
                self._stale_dependency_maps.clear()
                self._index = None
                self._blocking_index = None
                self._snapshot = None
            else:
                stale = stale_hint if stale_hint is not None else self.stale_entities(touched)
                affected = set(stale) | touched_entity_nodes(self._graph, touched)
                self._stash_for_rebase(affected)
                old_snapshot = self._snapshot
                self._snapshot = self._patched_snapshot(old_snapshot, touched)
                self._index = self._index.rebased(self.snapshot(), evict=sorted(stale))
                if self._blocking_index is not None:
                    # the index holds a signature for EVERY entity of a
                    # certified type — not just those with cached
                    # neighbourhoods — so the stale_entities sweep is not a
                    # sound affected set here: an entity never pulled into
                    # the neighbourhood cache (e.g. one that never collided)
                    # would keep a stale signature after a radius-local
                    # edit.  Sweep the touched nodes' radius ball over the
                    # new snapshot instead (sound by the first-touched-node
                    # locality argument, both mutation directions).
                    signature_stale = affected | self._touched_ball_entities(
                        touched
                    )
                    old_blocking = self._blocking_index
                    self._blocking_index = self._timed(
                        "blocking_index_rebase",
                        lambda: old_blocking.rebased(
                            self._graph,
                            snapshot=self.snapshot(),
                            affected_entities=signature_stale,
                        ),
                    )
                    self.blocking_index_rebases += 1
            self._version = version
            self.invalidations += 1

    def _stash_for_rebase(self, affected: set) -> None:
        """Park filtered candidates / product graphs for delta rebasing.

        Entries parked by an earlier delta and never re-accessed stay parked
        with their affected set widened to the union of both windows (the
        per-window stale computation remains sound for each delta).
        """
        for flavor, (artifact, previous) in list(self._stale_candidates.items()):
            self._stale_candidates[flavor] = (artifact, previous | affected)
        for flavor, (artifact, previous) in list(self._stale_product_graphs.items()):
            self._stale_product_graphs[flavor] = (artifact, previous | affected)
        for flavor, (artifact, previous) in list(self._stale_dependency_maps.items()):
            self._stale_dependency_maps[flavor] = (artifact, previous | affected)
        for flavor, candidates in self._candidates.items():
            filtered = flavor[0]
            if filtered and candidates.pair_supports is not None:
                self._stale_candidates[flavor] = (candidates, set(affected))
        for flavor, product_graph in self._product_graphs.items():
            self._stale_product_graphs[flavor] = (product_graph, set(affected))
        for flavor, dependents in self._dependency_maps.items():
            self._stale_dependency_maps[flavor] = (dependents, set(affected))
        self._candidates.clear()
        self._product_graphs.clear()
        self._dependency_maps.clear()

    def _patched_snapshot(
        self, old: Optional[GraphSnapshot], touched: set
    ) -> Optional[GraphSnapshot]:
        """Patch *old* onto the current graph version, or ``None`` to rebuild.

        Chooses patch-vs-rebuild by delta size (patching recomputes only the
        touched CSR rows, so it wins exactly when the delta is a small
        fraction of the graph) and treats any patch failure as a miss: the
        caller's next :meth:`snapshot` access recompiles from scratch, which
        is always correct because the patched arrays are bit-identical to a
        rebuild whenever patching succeeds.  A successful patch is written
        through to the configured snapshot store via
        :meth:`SnapshotStore.patch`, so the on-disk file advances by a
        segment-level diff instead of a full rewrite.
        """
        if old is None:
            return None
        if len(touched) > self.SNAPSHOT_PATCH_MAX_FRACTION * max(1, old.num_nodes):
            return None
        try:
            patched = self._timed(
                "snapshot_patch", lambda: old.patched(self._graph, touched)
            )
        except Exception:
            return None
        self.snapshot_patches += 1
        store = self.snapshot_store
        if store is not None:
            try:
                self._timed(
                    "snapshot_store_patch",
                    lambda: store.patch(
                        patched,
                        base=old,
                        fingerprint=self._graph.content_fingerprint(),
                    ),
                )
            except (StoreError, OSError):
                pass
        return patched

    # -- artifact accessors (the backend-facing surface) ----------------- #

    def snapshot(self) -> GraphSnapshot:
        """The compiled, immutable read view of the session's graph.

        Built once per :attr:`Graph.version`; every read-side artifact below
        (and every backend run through the session) shares it.  With a
        :attr:`snapshot_store` configured, the store is consulted first
        (an ``mmap`` load of a warm file skips the build entirely) and a
        freshly built snapshot is written back; *any*
        :class:`~repro.exceptions.StoreError` — missing file, corruption,
        format or staleness mismatch — falls back to a clean rebuild.  The
        store's miss path is additionally serialized per graph fingerprint
        (:meth:`SnapshotStore.get_or_build`), so sibling sessions sharing a
        store build each snapshot exactly once machine-process-wide.
        """
        with self._lock:
            if self._snapshot is None:
                store = self.snapshot_store
                if store is not None:
                    snapshot, loaded = store.get_or_build(
                        self._graph, self._build_snapshot, timed=self._timed
                    )
                    self._snapshot = snapshot
                    if loaded:
                        self.store_hits += 1
                    else:
                        self.store_misses += 1
                else:
                    self._snapshot = self._build_snapshot()
            return self._snapshot

    def _build_snapshot(self) -> GraphSnapshot:
        snapshot = self._timed(
            "snapshot_build", lambda: GraphSnapshot.build(self._graph)
        )
        self.snapshot_builds += 1
        return snapshot

    def neighborhood_index(self) -> SnapshotNeighborhoodIndex:
        with self._lock:
            if self._index is None:
                snapshot = self.snapshot()
                self._index = self._timed(
                    "neighborhood_index_build",
                    lambda: SnapshotNeighborhoodIndex(snapshot, self._keys),
                )
                self.index_builds += 1
            return self._index

    def blocking_index(self) -> BlockingIndex:
        """The shared signature index of the blocking layer (built once)."""
        with self._lock:
            if self._blocking_index is None:
                snapshot = self.snapshot()
                self._blocking_index = self._timed(
                    "blocking_index_build",
                    lambda: BlockingIndex.build(
                        self._graph, self._keys, snapshot=snapshot
                    ),
                )
                self.blocking_index_builds += 1
            return self._blocking_index

    def candidates(
        self,
        *,
        filtered: bool,
        reduce_neighborhoods: bool = False,
        blocking: str = "off",
    ) -> CandidateSet:
        with self._lock:
            return self._candidates_locked(
                filtered=filtered,
                reduce_neighborhoods=reduce_neighborhoods,
                blocking=blocking,
            )

    def _candidates_locked(
        self,
        *,
        filtered: bool,
        reduce_neighborhoods: bool = False,
        blocking: str = "off",
    ) -> CandidateSet:
        blocked = blocking != "off"
        blocking_index: Optional[BlockingIndex] = None
        if blocked:
            blocking_index = self.blocking_index()
            if blocking == "force":
                # "auto" and "force" share one cached flavour (identical
                # pairs when force is accepted), so force re-validates the
                # certification even on a cache hit
                blocking_index.require_certified()
        flavor = (filtered, reduce_neighborhoods, blocked)
        cached = self._candidates.get(flavor)
        if cached is None:
            index = self.neighborhood_index()
            snapshot = self.snapshot()
            stale = self._stale_candidates.pop(flavor, None)
            if stale is not None and filtered:
                old, affected = stale
                cached = self._timed(
                    "candidates_rebase",
                    lambda: rebase_filtered_candidates(
                        old,
                        self._graph,
                        self._keys,
                        snapshot=snapshot,
                        index=index,
                        affected_entities=affected,
                        reduce_neighborhoods=reduce_neighborhoods,
                        blocking=blocking,
                        blocking_index=blocking_index,
                    ),
                )
                self.candidate_rebases += 1
            elif filtered:
                cached = self._timed(
                    "candidates_build",
                    lambda: build_filtered_candidates(
                        self._graph,
                        self._keys,
                        reduce_neighborhoods=reduce_neighborhoods,
                        index=index,
                        snapshot=snapshot,
                        blocking=blocking,
                        blocking_index=blocking_index,
                    ),
                )
                self.candidate_builds += 1
            else:
                cached = self._timed(
                    "candidates_build",
                    lambda: build_candidates(
                        self._graph,
                        self._keys,
                        index=index,
                        snapshot=snapshot,
                        blocking=blocking,
                        blocking_index=blocking_index,
                    ),
                )
                self.candidate_builds += 1
            if cached.blocking is not None:
                self.blocking_blocks_touched += cached.blocking.blocks_touched
                self.blocking_pairs_pruned += cached.blocking.pairs_pruned
                for phase, seconds in (
                    ("blocking_collision", cached.blocking.collision_seconds),
                    ("blocking_pairing_filter", cached.blocking.filter_seconds),
                ):
                    self.timings[phase] = self.timings.get(phase, 0.0) + seconds
            self._candidates[flavor] = cached
        return cached

    def dependency_map(
        self,
        *,
        filtered: bool,
        reduce_neighborhoods: bool = False,
        blocking: str = "off",
    ):
        with self._lock:
            return self._dependency_map_locked(
                filtered=filtered,
                reduce_neighborhoods=reduce_neighborhoods,
                blocking=blocking,
            )

    def _dependency_map_locked(
        self,
        *,
        filtered: bool,
        reduce_neighborhoods: bool = False,
        blocking: str = "off",
    ):
        flavor = (filtered, reduce_neighborhoods, blocking != "off")
        cached = self._dependency_maps.get(flavor)
        if cached is None:
            candidates = self.candidates(
                filtered=filtered,
                reduce_neighborhoods=reduce_neighborhoods,
                blocking=blocking,
            )
            stale = self._stale_dependency_maps.pop(flavor, None)
            if stale is not None:
                old, affected = stale
                # reduced flavours: entities whose restriction drifted via an
                # affected partner pair count as affected for the row rebase
                affected = affected | (candidates.restriction_drift or set())
                cached = self._timed(
                    "dependency_map_rebase",
                    lambda: old.rebased(self.snapshot(), self._keys, candidates, affected),
                )
            else:
                cached = self._timed(
                    "dependency_map_build",
                    lambda: DependencyArtifact.build(self.snapshot(), self._keys, candidates),
                )
            self._dependency_maps[flavor] = cached
        return cached.forward

    def product_graph(
        self,
        *,
        filtered: bool,
        reduce_neighborhoods: bool = False,
        blocking: str = "off",
    ) -> ProductGraph:
        with self._lock:
            return self._product_graph_locked(
                filtered=filtered,
                reduce_neighborhoods=reduce_neighborhoods,
                blocking=blocking,
            )

    def _product_graph_locked(
        self,
        *,
        filtered: bool,
        reduce_neighborhoods: bool = False,
        blocking: str = "off",
    ) -> ProductGraph:
        flavor = (filtered, reduce_neighborhoods, blocking != "off")
        cached = self._product_graphs.get(flavor)
        if cached is None:
            candidates = self.candidates(
                filtered=filtered,
                reduce_neighborhoods=reduce_neighborhoods,
                blocking=blocking,
            )
            dependents = self.dependency_map(
                filtered=filtered,
                reduce_neighborhoods=reduce_neighborhoods,
                blocking=blocking,
            )
            stale = self._stale_product_graphs.pop(flavor, None)
            if stale is not None:
                old, affected = stale
                affected = affected | (candidates.restriction_drift or set())
                cached = self._timed(
                    "product_graph_rebase",
                    lambda: old.rebased(
                        self.snapshot(),
                        candidates,
                        affected,
                        dependents=dependents,
                        keys=self._keys,
                    ),
                )
                self.product_graph_rebases += 1
            else:
                cached = self._timed(
                    "product_graph_build",
                    lambda: ProductGraph(
                        self.snapshot(), self._keys, candidates, dependents=dependents
                    ),
                )
                self.product_graph_builds += 1
            self._product_graphs[flavor] = cached
        return cached

    def traversal_orders(self):
        with self._lock:
            if self._orders is None:
                self._orders = traversal_orders(self._keys)
                self.order_builds += 1
            return self._orders

    def cache_info(self) -> SessionCacheInfo:
        with self._lock:
            return self._cache_info_locked()

    def _cache_info_locked(self) -> SessionCacheInfo:
        return SessionCacheInfo(
            snapshot_builds=self.snapshot_builds,
            neighborhood_index_builds=self.index_builds,
            candidate_builds=self.candidate_builds,
            product_graph_builds=self.product_graph_builds,
            traversal_order_builds=self.order_builds,
            invalidations=self.invalidations,
            store_hits=self.store_hits,
            store_misses=self.store_misses,
            candidate_rebases=self.candidate_rebases,
            product_graph_rebases=self.product_graph_rebases,
            snapshot_patches=self.snapshot_patches,
            incremental_runs=self.incremental_runs,
            pairs_rechecked=self.pairs_rechecked,
            pairs_skipped=self.pairs_skipped,
            blocking_index_builds=self.blocking_index_builds,
            blocking_index_rebases=self.blocking_index_rebases,
            blocking_blocks_touched=self.blocking_blocks_touched,
            blocking_pairs_pruned=self.blocking_pairs_pruned,
            key_rebases=self.key_rebases,
        )


class MatchSession:
    """A fluent facade over the algorithm registry with artifact caching.

    Sessions are safe for concurrent callers: :meth:`run` bodies serialize on
    a per-session lock (so concurrent ``run()`` / :meth:`run_async` calls on
    one session are bit-identical to issuing them serially), while sibling
    sessions run fully in parallel.  Passing a shared ``artifacts`` cache —
    or configuring sibling sessions with one shared ``snapshot_store`` —
    lets many sessions on the same graph pay for each expensive artifact
    exactly once (the service layer's multiplexing contract).
    """

    def __init__(
        self,
        graph: Graph,
        keys: Optional[KeySet] = None,
        config: Optional[MatchConfig] = None,
        *,
        snapshot_store: Union[None, str, "os.PathLike", SnapshotStore] = None,
        artifacts: Optional[SessionArtifacts] = None,
    ) -> None:
        if artifacts is not None:
            if artifacts._graph is not graph:
                raise MatchingError(
                    "shared artifacts were built for a different graph object"
                )
            if keys is None:
                keys = artifacts._keys
            elif keys is not artifacts._keys:
                raise MatchingError(
                    "shared artifacts were built for a different key set"
                )
        self._graph = graph
        self._keys = keys
        self._config = config or MatchConfig()
        if snapshot_store is not None:
            self._config = replace(self._config, snapshot_store=snapshot_store)
        self._artifacts: Optional[SessionArtifacts] = artifacts
        # injected (service-shared) artifact caches are never rekeyed by
        # this session's with_keys — other tenants still match under the
        # registered keys, so the session detaches instead
        self._owns_artifacts = artifacts is None
        self._observers: List[ProgressObserver] = []
        self._history: List[Tuple[MatchConfig, EMResult]] = []
        #: run-body lock: concurrent runs on one session serialize here
        self._lock = threading.RLock()
        #: (observer, exception) pairs recorded by the hardened dispatcher,
        #: newest last (bounded; see _MAX_OBSERVER_ERRORS)
        self._observer_errors: List[Tuple[ProgressObserver, BaseException]] = []
        #: seed state for incremental re-matching (set after every run)
        self._incremental: Optional[IncrementalState] = None
        #: delta provenance of the last run (None for classic full runs)
        self._last_delta: Optional[DeltaProvenance] = None

    #: how many observer failures a session remembers (oldest evicted first)
    _MAX_OBSERVER_ERRORS = 32

    # -- fluent configuration -------------------------------------------- #

    def with_keys(self, keys: KeySet) -> "MatchSession":
        """Set (or replace) the key set, invalidating by key-set *delta*.

        When the session already holds built artifacts, the new key set is
        diffed per entity type against the keys the artifacts were built
        under (a snapshot taken at build time, so in-place ``KeySet.add``
        mutations are detected too): the compiled snapshot and the cached
        neighbourhoods / candidate verdicts / dependency rows of unchanged
        types all survive, and only the changed types' entries are
        re-derived on the next run (see :meth:`SessionArtifacts.rekeyed`).
        The incremental seed state is dropped whenever the delta is
        non-empty: a previous result under different keys is not a valid
        seed.
        """
        with self._lock:
            changed: Optional[set] = None
            if self._artifacts is not None:
                if self._owns_artifacts:
                    changed = self._artifacts.rekeyed(keys)
                else:
                    # shared cache: detach rather than rekey other tenants
                    self._artifacts = None
            self._keys = keys
            if changed is None or changed:
                self._incremental = None
        return self

    def using(
        self,
        algorithm: str,
        *,
        processors: Optional[int] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        snapshot_store: Union[None, str, "os.PathLike", SnapshotStore] = None,
        incremental: Optional[bool] = None,
        blocking: Optional[str] = None,
        **options: object,
    ) -> "MatchSession":
        """Choose the default algorithm (and its options) for :meth:`run`.

        ``executor`` / ``workers`` select the real execution runtime for the
        chosen backend (``None`` keeps the session default / classic path).
        The session default is inherited only by backends that support
        executors — the same gate :meth:`run` applies — so
        ``using("chase").run()`` and ``run("chase")`` behave identically.
        ``snapshot_store`` configures (or replaces) the on-disk snapshot
        store the session's artifact cache consults; ``None`` keeps the
        current one.  ``incremental`` sets the default run mode (``None``
        keeps the current default), as does ``blocking``
        (``"off"``/``"auto"``/``"force"`` candidate enumeration).
        """
        if executor is None and self._config.executor is not None:
            if self._supports_executors(algorithm):
                executor = self._config.executor
                workers = self._config.workers if workers is None else workers
        self._config = MatchConfig(
            algorithm=algorithm,
            processors=self._config.processors if processors is None else processors,
            executor=executor,
            workers=workers,
            snapshot_store=(
                self._config.snapshot_store if snapshot_store is None else snapshot_store
            ),
            incremental=(
                self._config.incremental if incremental is None else incremental
            ),
            blocking=self._config.blocking if blocking is None else blocking,
            options=options,
        )
        return self

    def on_progress(self, observer: ProgressObserver) -> "MatchSession":
        """Register an observer for per-round :class:`ProgressEvent`\\ s."""
        self._observers.append(observer)
        return self

    def remove_observer(self, observer: ProgressObserver) -> "MatchSession":
        """Unsubscribe *observer* (no-op when it was never registered)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass
        return self

    def events(self, maxsize: int = 256) -> EventStream:
        """Subscribe a bounded-queue :class:`EventStream` to this session.

        The stream receives every :class:`ProgressEvent` of every subsequent
        run (including concurrent ``run_async`` runs, whose events
        interleave) until it is closed; closing detaches it from the
        session.  A consumer that falls behind by more than *maxsize* events
        loses the oldest ones (counted in ``stream.dropped``) — producers
        never block on a slow reader.
        """
        stream = EventStream(maxsize=maxsize)
        stream._detach = lambda: self.remove_observer(stream)
        self.on_progress(stream)
        return stream

    # -- introspection ---------------------------------------------------- #

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def keys(self) -> Optional[KeySet]:
        return self._keys

    @property
    def config(self) -> MatchConfig:
        return self._config

    @property
    def history(self) -> Tuple[Tuple[MatchConfig, EMResult], ...]:
        """(config, result) provenance of every run, oldest first."""
        return tuple(self._history)

    def cache_info(self) -> SessionCacheInfo:
        """Artifact-cache build counters (all zero before the first run)."""
        if self._artifacts is None:
            return SessionCacheInfo()
        return self._artifacts.cache_info()

    def phase_timings(self) -> Dict[str, float]:
        """Cumulative seconds spent building each artifact kind.

        Keys: ``snapshot_build``, ``neighborhood_index_build``,
        ``candidates_build``, ``product_graph_build`` (present once the
        corresponding artifact has been built), ``snapshot_patch`` /
        ``snapshot_store_patch`` when a mutation delta was applied by
        patching instead of recompiling, plus the blocking-layer
        phase split ``blocking_index_build`` / ``blocking_index_rebase`` /
        ``blocking_collision`` / ``blocking_pairing_filter`` when blocked
        enumeration ran.  Consumed by the CLI's ``--profile`` report.
        """
        if self._artifacts is None:
            return {}
        return dict(self._artifacts.timings)

    def invalidate(self) -> "MatchSession":
        """Manually drop every cached artifact.

        The incremental seed state and its counters are reset alongside the
        cached artifacts, so the next ``run(incremental=True)`` falls back to
        a full run.
        """
        with self._lock:
            if self._artifacts is not None:
                self._artifacts.reset()
            self._incremental = None
            self._last_delta = None
        return self

    def last_delta(self) -> Optional[DeltaProvenance]:
        """Delta provenance of the most recent run (``None``: classic run)."""
        return self._last_delta

    # -- execution --------------------------------------------------------- #

    def run(
        self,
        algorithm: Optional[str] = None,
        *,
        processors: Optional[int] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        incremental: Optional[bool] = None,
        blocking: Optional[str] = None,
        **options: object,
    ) -> EMResult:
        """Run one matching algorithm, reusing the session's cached artifacts.

        With no arguments, runs the configuration set via :meth:`using`.
        Passing *algorithm* (and options) runs that backend instead without
        changing the session default.  ``executor`` / ``workers`` (inherited
        from the session default when omitted) select the real execution
        runtime; support is validated per backend.

        With ``incremental=True`` (or a session default of
        ``incremental=True``), the run seeds from the previous result and
        re-chases only the candidate pairs the graph's mutation journal could
        have affected — falling back to a full run when no previous result
        exists, the journal window expired, or the backend lacks the
        ``"incremental"`` capability.  The outcome is bit-identical to a full
        run either way; :meth:`last_delta` reports which path executed.

        Concurrent calls (including via :meth:`run_async`) serialize on the
        session's run lock, so every interleaving is equivalent to *some*
        serial order and each individual result is bit-identical to the same
        run issued serially.
        """
        with self._lock:
            return self._run_locked(
                algorithm,
                processors=processors,
                executor=executor,
                workers=workers,
                incremental=incremental,
                blocking=blocking,
                **options,
            )

    def _run_locked(
        self,
        algorithm: Optional[str] = None,
        *,
        processors: Optional[int] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        incremental: Optional[bool] = None,
        blocking: Optional[str] = None,
        **options: object,
    ) -> EMResult:
        if self._keys is None:
            raise MatchingError("MatchSession has no keys; call with_keys(...) first")
        if algorithm is None:
            config = self._config
            if (
                processors is not None
                or executor is not None
                or workers is not None
                or incremental is not None
                or blocking is not None
                or options
            ):
                config = MatchConfig(
                    algorithm=config.algorithm,
                    processors=config.processors if processors is None else processors,
                    executor=config.executor if executor is None else executor,
                    workers=config.workers if workers is None else workers,
                    snapshot_store=config.snapshot_store,
                    incremental=config.incremental if incremental is None else incremental,
                    blocking=config.blocking if blocking is None else blocking,
                    options={**config.options, **options},
                )
        else:
            # The session-wide executor default is inherited only by backends
            # that support executors (an explicit executor= argument is still
            # validated strictly), so e.g. run_all() over a session configured
            # with a process pool quietly runs "chase" on the classic path.
            if executor is None and self._config.executor is not None:
                if self._supports_executors(algorithm):
                    executor = self._config.executor
                    workers = self._config.workers if workers is None else workers
            config = MatchConfig(
                algorithm=algorithm,
                processors=self._config.processors if processors is None else processors,
                executor=executor,
                workers=workers,
                snapshot_store=self._config.snapshot_store,
                incremental=(
                    self._config.incremental if incremental is None else incremental
                ),
                blocking=self._config.blocking if blocking is None else blocking,
                options=options,
            )
        spec, validated = config.resolve()
        # a failed run must never leave a stale seed (or stale provenance)
        # behind: detach both up front, re-attach only after success
        state = self._incremental
        self._incremental = None
        self._last_delta = None
        if config.incremental and "incremental" in spec.capabilities:
            result, delta = self._run_incremental(spec, config, validated, state)
        elif config.incremental:
            result = self._run_full(spec, config, validated)
            delta = DeltaProvenance(
                mode="full",
                reason=f"algorithm {spec.name!r} lacks the incremental capability",
            )
        else:
            result = self._run_full(spec, config, validated)
            delta = None
        self._last_delta = delta
        self._record_seed_state(result, config)
        self._history.append((config, result))
        return result

    def run_async(
        self,
        algorithm: Optional[str] = None,
        *,
        processors: Optional[int] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        incremental: Optional[bool] = None,
        blocking: Optional[str] = None,
        **options: object,
    ) -> "Future[EMResult]":
        """Start :meth:`run` on a background thread; returns its future.

        The future resolves to the run's :class:`EMResult` (or raises the
        run's exception).  ``future.cancel()`` succeeds only while the run is
        still waiting on the session's run lock — a matching backend that has
        started cannot be interrupted.  Pair with :meth:`events` to stream
        the run's progress while it executes::

            stream = session.events()
            future = session.run_async("EMOptVC")
            future.add_done_callback(lambda _: stream.close())
            for event in stream:
                print(event.stage, event.round)
            result = future.result()
        """
        future: "Future[EMResult]" = Future()

        def _work() -> None:
            with self._lock:
                # the cancellation window spans the whole wait on the run
                # lock: a queued run behind a long one can still be cancelled
                if not future.set_running_or_notify_cancel():
                    return
                try:
                    future.set_result(
                        self._run_locked(
                            algorithm,
                            processors=processors,
                            executor=executor,
                            workers=workers,
                            incremental=incremental,
                            blocking=blocking,
                            **options,
                        )
                    )
                except BaseException as exc:  # the future owns the outcome
                    future.set_exception(exc)

        thread = threading.Thread(
            target=_work, name="repro-run-async", daemon=True
        )
        thread.start()
        return future

    def _run_full(self, spec, config: MatchConfig, validated: Dict[str, object]) -> EMResult:
        artifacts = self._refresh_artifacts(config)
        return spec.run(
            self._graph,
            self._keys,
            processors=config.processors,
            options=validated,
            artifacts=artifacts,
            observer=self._dispatch_event if self._observers else None,
            executor=config.executor,
            workers=config.workers,
            blocking=config.blocking,
        )

    def _run_incremental(
        self,
        spec,
        config: MatchConfig,
        validated: Dict[str, object],
        state: Optional[IncrementalState],
    ) -> Tuple[EMResult, DeltaProvenance]:
        """Execute one incremental run (or fall back to a full one)."""
        touched: Optional[set] = None
        fallback: Optional[str] = None
        if state is None:
            fallback = "no previous result to seed from"
        elif self._artifacts is None or self._artifacts._version != state.version:
            fallback = "artifact cache out of step with the previous result"
        else:
            touched = self._graph.touched_since(state.version)
            if touched is None:
                fallback = "journal window expired"
        if fallback is not None:
            return self._run_full(spec, config, validated), DeltaProvenance(
                mode="full", reason=fallback
            )

        # old-side staleness must be read off the pre-refresh index; the
        # refresh reuses the sweep instead of recomputing it.  The recorded
        # pairing supports must be read pre-refresh too: the rebase
        # recomputes supports for delta-affected pairs, but the staleness
        # test below must judge the *old* chase witness, which lives inside
        # the *old* support set.
        blocked = config.blocking != "off"
        old_supports: Optional[Dict[Pair, Tuple[set, set]]] = None
        if blocked:
            old_supports = {}
            for cached in self._artifacts._candidates.values():
                if cached.pair_supports:
                    old_supports.update(cached.pair_supports)
        old_affected = self._artifacts.stale_entities(touched)
        artifacts = self._refresh_artifacts(config, stale_hint=old_affected)
        if blocked:
            # plan over the sub-quadratic blocked (pairing-filtered) universe
            # plus the previous run's identified pairs: a pair outside the
            # blocked set provably cannot fire, so skipping it equals
            # checking-and-failing it — but a previously-identified pair that
            # *vanished* from the universe (signatures stopped colliding, or
            # its pairing broke) must still drop its class and re-check its
            # dependents, so those pairs rejoin as force-affected extras with
            # explicitly probed dependency edges.
            candidates = artifacts.candidates(filtered=True, blocking=config.blocking)
            dependents = artifacts.dependency_map(filtered=True, blocking=config.blocking)
            universe = set(candidates.pairs)
            extras = sorted(
                {
                    pair
                    for cls in state.eq.nontrivial_classes()
                    for pair in itertools.combinations(sorted(cls), 2)
                }
                - universe
            )
            extra_edges = extra_dependency_edges(
                self._graph, self._keys, candidates, extras
            )
            plan = plan_delta(
                candidate_pairs=candidates.pairs,
                dependents=dependents,
                touched=touched,
                touched_entities=touched_entity_nodes(self._graph, touched),
                old_affected_entities=old_affected,
                state=state,
                old_pair_supports=old_supports,
                extra_identified=extras,
                extra_dependents=extra_edges,
            )
        else:
            # classic quadratic planning: every candidate pair of the new
            # graph is in the universe, so vanished pairs and support-level
            # refinements never arise
            candidates = artifacts.candidates(filtered=False)
            dependents = artifacts.dependency_map(filtered=False)
            plan = plan_delta(
                candidate_pairs=candidates.pairs,
                dependents=dependents,
                touched=touched,
                touched_entities=touched_entity_nodes(self._graph, touched),
                old_affected_entities=old_affected,
                state=state,
            )
        artifacts.incremental_runs += 1
        artifacts.pairs_rechecked += plan.pairs_rechecked
        artifacts.pairs_skipped += plan.pairs_skipped
        if (
            plan.result_reusable
            and state.result is not None
            and self._same_run_shape(state.config, config)
        ):
            # the delta implicates nothing and the exact same configuration
            # produced the previous result: return that object as-is
            result = state.result
            mode = "reused"
        else:
            # an empty worklist still dispatches the backend (it returns the
            # seeded closure immediately), so the result carries this run's
            # algorithm name and statistics rather than the seeding run's
            result = spec.run(
                self._graph,
                self._keys,
                processors=config.processors,
                options=validated,
                artifacts=artifacts,
                observer=self._dispatch_event if self._observers else None,
                executor=config.executor,
                workers=config.workers,
                seed_pairs=plan.seed,
                worklist=plan.worklist,
                blocking=config.blocking,
            )
            # backends report their own (possibly restricted) pair counts;
            # normalize the |L| statistic so delta provenance is comparable
            # across backends
            result.stats.candidate_pairs = plan.candidate_count
            mode = "incremental"
        delta = DeltaProvenance(
            mode=mode,
            touched_nodes=len(touched),
            pairs_rechecked=plan.pairs_rechecked,
            pairs_skipped=plan.pairs_skipped,
            dropped_classes=plan.dropped_classes,
            seed_merges=len(plan.seed),
        )
        return result, delta

    def _record_seed_state(self, result: EMResult, config: MatchConfig) -> None:
        """Remember this run's fixpoint as the seed for the next delta run.

        Cheap on purpose: the unfiltered candidate set is enumerated lazily
        from the run's immutable snapshot only if an incremental run actually
        consumes this state (unless the session already has it cached).  The
        recorded superset is always the *quadratic* flavor — ``plan_delta``
        compares the new quadratic universe against it, so caching a blocked
        (strictly smaller) set would inflate every later worklist.
        """
        if self._artifacts is None:
            return
        cached = self._artifacts._candidates.get((False, False, False))
        self._incremental = IncrementalState(
            version=self._artifacts._version,
            eq=result.eq.copy(),
            result=result,
            config=config,
            snapshot=self._artifacts.snapshot(),
            keys=self._keys,
            candidates=frozenset(cached.pairs) if cached is not None else None,
        )

    def run_all(
        self,
        algorithms: Optional[Sequence[str]] = None,
        *,
        processors: Optional[int] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> Dict[str, EMResult]:
        """Run several algorithms on the shared artifacts; name → result.

        An ``executor`` requested here applies to every backend that supports
        executors; the others (the sequential chase) run on the classic path.
        """
        names = list(algorithms) if algorithms is not None else list(ALGORITHMS)
        return {
            name: self.run(
                name,
                processors=processors,
                executor=executor if self._supports_executors(name) else None,
                workers=workers if self._supports_executors(name) else None,
            )
            for name in names
        }

    def rematch(self) -> EMResult:
        """Re-run the session's current configuration (e.g. after mutations)."""
        return self.run()

    def rerun(self, **options: object) -> EMResult:
        """Incremental re-run of the current configuration after mutations.

        Sugar for ``run(incremental=True)``: seeds from the previous result
        and re-chases only the journal-affected candidate pairs (silently
        falling back to a full run when that is impossible).  The result is
        bit-identical to :meth:`rematch`.
        """
        return self.run(incremental=True, **options)

    # -- internals --------------------------------------------------------- #

    @staticmethod
    def _same_run_shape(previous: Optional[MatchConfig], config: MatchConfig) -> bool:
        """Would *config* produce the same ``EMResult`` as *previous* did?

        Compares the result-shaping knobs only: the ``incremental`` flag and
        the snapshot store change how a run executes, never what it returns,
        so a no-op delta may hand back the previous result object across
        them.  Everything else (backend, processors, executor, options)
        shapes the result's statistics and must match exactly.
        """
        if previous is None:
            return False
        return (
            previous.algorithm == config.algorithm
            and previous.processors == config.processors
            and previous.executor == config.executor
            and previous.workers == config.workers
            and previous.blocking == config.blocking
            and previous.options == config.options
        )

    @staticmethod
    def _supports_executors(algorithm: str) -> bool:
        try:
            spec = get_algorithm(algorithm)
        except MatchingError:
            return False  # unknown name: let resolve() raise the real error
        return "executors" in spec.capabilities

    def _refresh_artifacts(
        self,
        config: Optional[MatchConfig] = None,
        stale_hint: Optional[set] = None,
    ) -> SessionArtifacts:
        store = as_snapshot_store((config or self._config).snapshot_store)
        if self._artifacts is None:
            self._artifacts = SessionArtifacts(self._graph, self._keys, snapshot_store=store)
            self._owns_artifacts = True
        else:
            if store is not None:
                self._artifacts.snapshot_store = store
            self._artifacts.refresh(stale_hint=stale_hint)
        return self._artifacts

    @property
    def observer_errors(self) -> Tuple[Tuple[ProgressObserver, BaseException], ...]:
        """Failures recorded by the observer dispatcher, oldest first."""
        return tuple(self._observer_errors)

    def _dispatch_event(self, event: ProgressEvent) -> None:
        # each observer is isolated: one raising observer must neither abort
        # the run nor starve the observers registered after it
        for observer in list(self._observers):
            try:
                observer(event)
            except Exception as exc:
                self._observer_errors.append((observer, exc))
                del self._observer_errors[: -self._MAX_OBSERVER_ERRORS]
                _EVENT_LOGGER.exception(
                    "progress observer %r raised on %r; event dropped",
                    observer,
                    event,
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        keys = "no keys" if self._keys is None else f"{self._keys.cardinality} keys"
        return (
            f"MatchSession({self._graph.num_entities} entities, {keys}, "
            f"default={self._config.describe()}, runs={len(self._history)})"
        )


#: Short alias used in the quickstart: ``Session(graph).with_keys(...)``.
Session = MatchSession
