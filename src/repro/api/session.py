"""``MatchSession``: one configurable entry point for repeated matching runs.

A session owns a graph, a key set and the expensive precomputed artifacts the
backends share — the :class:`~repro.core.neighborhood.NeighborhoodIndex`, the
candidate sets (per filter flavour), the product graph and the per-key
traversal orders — so a benchmark sweep that runs all six algorithms on the
same input builds each of them exactly once instead of once per algorithm::

    from repro import MatchSession

    session = MatchSession(graph).with_keys(keys)
    opt = session.using("EMOptVC", processors=8, fanout=4).run()
    mr = session.run("EMOptMR")          # reuses the neighbourhood index

Sessions also support incremental re-matching: mutating the graph (e.g.
``graph.add_value(...)``) between runs is detected via the graph's mutation
journal, and only the neighbourhoods a mutation could have staled are evicted
before the next run.  Observers registered with :meth:`MatchSession.on_progress`
receive per-round :class:`~repro.api.events.ProgressEvent` notifications, and
:attr:`MatchSession.history` records the (config, result) provenance of every
run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import os

from ..core.equivalence import Pair
from ..core.graph import Graph
from ..core.key import KeySet
from ..core.neighborhood import NeighborhoodIndex
from ..exceptions import MatchingError, StoreError
from ..matching.candidates import (
    CandidateSet,
    build_candidates,
    build_filtered_candidates,
    dependency_map,
)
from ..matching.product_graph import ProductGraph
from ..matching.result import EMResult
from ..matching.traversal_order import traversal_orders
from ..storage import GraphSnapshot, SnapshotNeighborhoodIndex
from ..storage.store import SnapshotStore, as_snapshot_store, graph_fingerprint
from .config import MatchConfig
from .events import ProgressEvent, ProgressObserver
from .registry import ALGORITHMS, get_algorithm


@dataclass(frozen=True)
class SessionCacheInfo:
    """Build counters of a session's artifact cache (for tests and tuning)."""

    snapshot_builds: int = 0
    neighborhood_index_builds: int = 0
    candidate_builds: int = 0
    product_graph_builds: int = 0
    traversal_order_builds: int = 0
    invalidations: int = 0
    #: snapshots served from / missing in the configured on-disk store
    #: (both stay 0 when the session has no snapshot store)
    store_hits: int = 0
    store_misses: int = 0


class SessionArtifacts:
    """The per-session cache of precomputed matching artifacts.

    Backends receive this object as their ``artifacts`` argument and ask it
    for candidate sets / product graphs instead of rebuilding them.  Flavours
    are keyed by ``(filtered, reduce_neighborhoods)``; all flavours share one
    underlying :class:`NeighborhoodIndex` (reduced flavours restrict a clone,
    never the shared base).
    """

    def __init__(
        self,
        graph: Graph,
        keys: KeySet,
        snapshot_store: Optional[SnapshotStore] = None,
    ) -> None:
        self._graph = graph
        self._keys = keys
        #: optional on-disk snapshot store consulted before every build
        self.snapshot_store = snapshot_store
        self._version = graph.version
        self._snapshot: Optional[GraphSnapshot] = None
        self._index: Optional[SnapshotNeighborhoodIndex] = None
        self._candidates: Dict[Tuple[bool, bool], CandidateSet] = {}
        self._dependency_maps: Dict[Tuple[bool, bool], Dict[Pair, set]] = {}
        self._product_graphs: Dict[Tuple[bool, bool], ProductGraph] = {}
        self._orders: Optional[Dict[str, object]] = None
        # build counters exposed through SessionCacheInfo
        self.snapshot_builds = 0
        self.index_builds = 0
        self.candidate_builds = 0
        self.product_graph_builds = 0
        self.order_builds = 0
        self.invalidations = 0
        self.store_hits = 0
        self.store_misses = 0
        #: cumulative seconds spent building each artifact kind (CLI --profile)
        self.timings: Dict[str, float] = {}

    def _timed(self, phase: str, build):
        started = time.perf_counter()
        result = build()
        self.timings[phase] = self.timings.get(phase, 0.0) + (
            time.perf_counter() - started
        )
        return result

    # -- cache lifecycle ------------------------------------------------- #

    def reset(self) -> None:
        """Drop every cached artifact (e.g. after a key-set change)."""
        self._snapshot = None
        self._index = None
        self._candidates.clear()
        self._dependency_maps.clear()
        self._product_graphs.clear()
        self._orders = None
        self._version = self._graph.version
        self.invalidations += 1

    def refresh(self) -> None:
        """Reconcile the cache with any graph mutations since the last run.

        Derived artifacts (candidate sets, product graphs) are always dropped
        on mutation — new triples can create or destroy candidate pairs — and
        the compiled :class:`GraphSnapshot` is recompiled (its CSR arrays are
        immutable).  The neighbourhood index is evicted *selectively*: only
        entities whose cached d-neighbourhood could contain a touched node
        are recomputed; the surviving node sets are rebased onto the fresh
        snapshot.
        """
        version = self._graph.version
        if version == self._version:
            return
        touched = self._graph.touched_since(self._version)
        self._candidates.clear()
        self._dependency_maps.clear()
        self._product_graphs.clear()
        if touched is None or self._index is None:
            self._index = None
            self._snapshot = None
        else:
            stale = [
                entity
                for entity in self._index.cached_entities()
                if entity in touched or touched & self._index.nodes(entity)
            ]
            self._snapshot = None
            self._index = self._index.rebased(self.snapshot(), evict=stale)
        self._version = version
        self.invalidations += 1

    # -- artifact accessors (the backend-facing surface) ----------------- #

    def snapshot(self) -> GraphSnapshot:
        """The compiled, immutable read view of the session's graph.

        Built once per :attr:`Graph.version`; every read-side artifact below
        (and every backend run through the session) shares it.  With a
        :attr:`snapshot_store` configured, the store is consulted first
        (an ``mmap`` load of a warm file skips the build entirely) and a
        freshly built snapshot is written back; *any*
        :class:`~repro.exceptions.StoreError` — missing file, corruption,
        format or staleness mismatch — falls back to a clean rebuild.
        """
        if self._snapshot is None:
            store = self.snapshot_store
            fingerprint: Optional[str] = None
            if store is not None:
                # fingerprint once; load and write-back share it
                fingerprint = self._timed(
                    "snapshot_store_load", lambda: graph_fingerprint(self._graph)
                )
                loaded = self._timed(
                    "snapshot_store_load", lambda: self._load_stored(fingerprint)
                )
                if loaded is not None:
                    self._snapshot = loaded
                    self.store_hits += 1
                else:
                    self.store_misses += 1
            if self._snapshot is None:
                self._snapshot = self._timed(
                    "snapshot_build", lambda: GraphSnapshot.build(self._graph)
                )
                self.snapshot_builds += 1
                if store is not None:
                    try:
                        self._timed(
                            "snapshot_store_save",
                            lambda: store.save(self._snapshot, fingerprint=fingerprint),
                        )
                    except (StoreError, OSError):
                        pass  # an unwritable store never fails a run
        return self._snapshot

    def _load_stored(self, fingerprint: str) -> Optional[GraphSnapshot]:
        try:
            return self.snapshot_store.load(self._graph, fingerprint=fingerprint)
        except StoreError:
            return None

    def neighborhood_index(self) -> SnapshotNeighborhoodIndex:
        if self._index is None:
            snapshot = self.snapshot()
            self._index = self._timed(
                "neighborhood_index_build",
                lambda: SnapshotNeighborhoodIndex(snapshot, self._keys),
            )
            self.index_builds += 1
        return self._index

    def candidates(self, *, filtered: bool, reduce_neighborhoods: bool = False) -> CandidateSet:
        flavor = (filtered, reduce_neighborhoods)
        cached = self._candidates.get(flavor)
        if cached is None:
            index = self.neighborhood_index()
            snapshot = self.snapshot()
            if filtered:
                cached = self._timed(
                    "candidates_build",
                    lambda: build_filtered_candidates(
                        self._graph,
                        self._keys,
                        reduce_neighborhoods=reduce_neighborhoods,
                        index=index,
                        snapshot=snapshot,
                    ),
                )
            else:
                cached = self._timed(
                    "candidates_build",
                    lambda: build_candidates(
                        self._graph, self._keys, index=index, snapshot=snapshot
                    ),
                )
            self._candidates[flavor] = cached
            self.candidate_builds += 1
        return cached

    def dependency_map(self, *, filtered: bool, reduce_neighborhoods: bool = False):
        flavor = (filtered, reduce_neighborhoods)
        cached = self._dependency_maps.get(flavor)
        if cached is None:
            cached = dependency_map(
                self.snapshot(),
                self._keys,
                self.candidates(filtered=filtered, reduce_neighborhoods=reduce_neighborhoods),
            )
            self._dependency_maps[flavor] = cached
        return cached

    def product_graph(self, *, filtered: bool, reduce_neighborhoods: bool = False) -> ProductGraph:
        flavor = (filtered, reduce_neighborhoods)
        cached = self._product_graphs.get(flavor)
        if cached is None:
            candidates = self.candidates(
                filtered=filtered, reduce_neighborhoods=reduce_neighborhoods
            )
            cached = self._timed(
                "product_graph_build",
                lambda: ProductGraph(self.snapshot(), self._keys, candidates),
            )
            self._product_graphs[flavor] = cached
            self.product_graph_builds += 1
        return cached

    def traversal_orders(self):
        if self._orders is None:
            self._orders = traversal_orders(self._keys)
            self.order_builds += 1
        return self._orders

    def cache_info(self) -> SessionCacheInfo:
        return SessionCacheInfo(
            snapshot_builds=self.snapshot_builds,
            neighborhood_index_builds=self.index_builds,
            candidate_builds=self.candidate_builds,
            product_graph_builds=self.product_graph_builds,
            traversal_order_builds=self.order_builds,
            invalidations=self.invalidations,
            store_hits=self.store_hits,
            store_misses=self.store_misses,
        )


class MatchSession:
    """A fluent facade over the algorithm registry with artifact caching."""

    def __init__(
        self,
        graph: Graph,
        keys: Optional[KeySet] = None,
        config: Optional[MatchConfig] = None,
        *,
        snapshot_store: Union[None, str, "os.PathLike", SnapshotStore] = None,
    ) -> None:
        self._graph = graph
        self._keys = keys
        self._config = config or MatchConfig()
        if snapshot_store is not None:
            self._config = replace(self._config, snapshot_store=snapshot_store)
        self._artifacts: Optional[SessionArtifacts] = None
        self._observers: List[ProgressObserver] = []
        self._history: List[Tuple[MatchConfig, EMResult]] = []

    # -- fluent configuration -------------------------------------------- #

    def with_keys(self, keys: KeySet) -> "MatchSession":
        """Set (or replace) the key set, dropping every key-derived cache.

        The caches are dropped unconditionally — even when *keys* is the same
        object — because a :class:`KeySet` can be mutated in place (e.g. via
        ``KeySet.add``) and the session cannot observe that; re-passing the
        key set is the caller's signal that it changed.
        """
        self._keys = keys
        self._artifacts = None
        return self

    def using(
        self,
        algorithm: str,
        *,
        processors: Optional[int] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        snapshot_store: Union[None, str, "os.PathLike", SnapshotStore] = None,
        **options: object,
    ) -> "MatchSession":
        """Choose the default algorithm (and its options) for :meth:`run`.

        ``executor`` / ``workers`` select the real execution runtime for the
        chosen backend (``None`` keeps the session default / classic path).
        The session default is inherited only by backends that support
        executors — the same gate :meth:`run` applies — so
        ``using("chase").run()`` and ``run("chase")`` behave identically.
        ``snapshot_store`` configures (or replaces) the on-disk snapshot
        store the session's artifact cache consults; ``None`` keeps the
        current one.
        """
        if executor is None and self._config.executor is not None:
            if self._supports_executors(algorithm):
                executor = self._config.executor
                workers = self._config.workers if workers is None else workers
        self._config = MatchConfig(
            algorithm=algorithm,
            processors=self._config.processors if processors is None else processors,
            executor=executor,
            workers=workers,
            snapshot_store=(
                self._config.snapshot_store if snapshot_store is None else snapshot_store
            ),
            options=options,
        )
        return self

    def on_progress(self, observer: ProgressObserver) -> "MatchSession":
        """Register an observer for per-round :class:`ProgressEvent`\\ s."""
        self._observers.append(observer)
        return self

    # -- introspection ---------------------------------------------------- #

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def keys(self) -> Optional[KeySet]:
        return self._keys

    @property
    def config(self) -> MatchConfig:
        return self._config

    @property
    def history(self) -> Tuple[Tuple[MatchConfig, EMResult], ...]:
        """(config, result) provenance of every run, oldest first."""
        return tuple(self._history)

    def cache_info(self) -> SessionCacheInfo:
        """Artifact-cache build counters (all zero before the first run)."""
        if self._artifacts is None:
            return SessionCacheInfo()
        return self._artifacts.cache_info()

    def phase_timings(self) -> Dict[str, float]:
        """Cumulative seconds spent building each artifact kind.

        Keys: ``snapshot_build``, ``neighborhood_index_build``,
        ``candidates_build``, ``product_graph_build`` (present once the
        corresponding artifact has been built).  Consumed by the CLI's
        ``--profile`` report.
        """
        if self._artifacts is None:
            return {}
        return dict(self._artifacts.timings)

    def invalidate(self) -> "MatchSession":
        """Manually drop every cached artifact."""
        if self._artifacts is not None:
            self._artifacts.reset()
        return self

    # -- execution --------------------------------------------------------- #

    def run(
        self,
        algorithm: Optional[str] = None,
        *,
        processors: Optional[int] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        **options: object,
    ) -> EMResult:
        """Run one matching algorithm, reusing the session's cached artifacts.

        With no arguments, runs the configuration set via :meth:`using`.
        Passing *algorithm* (and options) runs that backend instead without
        changing the session default.  ``executor`` / ``workers`` (inherited
        from the session default when omitted) select the real execution
        runtime; support is validated per backend.
        """
        if self._keys is None:
            raise MatchingError("MatchSession has no keys; call with_keys(...) first")
        if algorithm is None:
            config = self._config
            if processors is not None or executor is not None or workers is not None or options:
                config = MatchConfig(
                    algorithm=config.algorithm,
                    processors=config.processors if processors is None else processors,
                    executor=config.executor if executor is None else executor,
                    workers=config.workers if workers is None else workers,
                    snapshot_store=config.snapshot_store,
                    options={**config.options, **options},
                )
        else:
            # The session-wide executor default is inherited only by backends
            # that support executors (an explicit executor= argument is still
            # validated strictly), so e.g. run_all() over a session configured
            # with a process pool quietly runs "chase" on the classic path.
            if executor is None and self._config.executor is not None:
                if self._supports_executors(algorithm):
                    executor = self._config.executor
                    workers = self._config.workers if workers is None else workers
            config = MatchConfig(
                algorithm=algorithm,
                processors=self._config.processors if processors is None else processors,
                executor=executor,
                workers=workers,
                snapshot_store=self._config.snapshot_store,
                options=options,
            )
        spec, validated = config.resolve()
        artifacts = self._refresh_artifacts(config)
        result = spec.run(
            self._graph,
            self._keys,
            processors=config.processors,
            options=validated,
            artifacts=artifacts,
            observer=self._dispatch_event if self._observers else None,
            executor=config.executor,
            workers=config.workers,
        )
        self._history.append((config, result))
        return result

    def run_all(
        self,
        algorithms: Optional[Sequence[str]] = None,
        *,
        processors: Optional[int] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> Dict[str, EMResult]:
        """Run several algorithms on the shared artifacts; name → result.

        An ``executor`` requested here applies to every backend that supports
        executors; the others (the sequential chase) run on the classic path.
        """
        names = list(algorithms) if algorithms is not None else list(ALGORITHMS)
        return {
            name: self.run(
                name,
                processors=processors,
                executor=executor if self._supports_executors(name) else None,
                workers=workers if self._supports_executors(name) else None,
            )
            for name in names
        }

    def rematch(self) -> EMResult:
        """Re-run the session's current configuration (e.g. after mutations)."""
        return self.run()

    # -- internals --------------------------------------------------------- #

    @staticmethod
    def _supports_executors(algorithm: str) -> bool:
        try:
            spec = get_algorithm(algorithm)
        except MatchingError:
            return False  # unknown name: let resolve() raise the real error
        return "executors" in spec.capabilities

    def _refresh_artifacts(self, config: Optional[MatchConfig] = None) -> SessionArtifacts:
        store = as_snapshot_store((config or self._config).snapshot_store)
        if self._artifacts is None:
            self._artifacts = SessionArtifacts(self._graph, self._keys, snapshot_store=store)
        else:
            if store is not None:
                self._artifacts.snapshot_store = store
            self._artifacts.refresh()
        return self._artifacts

    def _dispatch_event(self, event: ProgressEvent) -> None:
        for observer in self._observers:
            observer(event)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        keys = "no keys" if self._keys is None else f"{self._keys.cardinality} keys"
        return (
            f"MatchSession({self._graph.num_entities} entities, {keys}, "
            f"default={self._config.describe()}, runs={len(self._history)})"
        )


#: Short alias used in the quickstart: ``Session(graph).with_keys(...)``.
Session = MatchSession
