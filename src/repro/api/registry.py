"""The algorithm registry: one pluggable dispatch table for every matching backend.

The paper contributes a *family* of interchangeable entity-matching
algorithms; this module makes the family extensible.  Each backend registers
itself with :func:`register_algorithm`, declaring its name, family, the
backend-specific options it accepts and the capabilities it offers.  The
public dispatchers (:func:`repro.match_entities`, the
:class:`~repro.api.session.MatchSession` facade and the CLI) resolve names
through the registry instead of a hardcoded if/elif ladder, so adding a new
backend never requires touching them.

``ALGORITHMS`` is a *live* ordered view of the registered names: registering
or unregistering an algorithm is immediately visible to every holder of the
view (the CLI builds its ``--algorithm`` choices from it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Mapping, Optional, Sequence, Tuple

from ..exceptions import ConfigError, MatchingError


@dataclass(frozen=True)
class OptionSpec:
    """One backend-specific option accepted by an algorithm."""

    name: str
    type: type = object
    default: object = None
    description: str = ""

    def validate(self, value: object) -> object:
        """Type-check *value*, returning the (possibly coerced) value."""
        if self.type is object:
            return value
        # bool is an int subclass; an int-typed knob must not accept True.
        if isinstance(value, bool) and self.type is not bool:
            raise ConfigError(
                f"option {self.name!r} expects {self.type.__name__}, got bool {value!r}"
            )
        if isinstance(value, self.type):
            return value
        if self.type is float and isinstance(value, int):
            return float(value)
        raise ConfigError(
            f"option {self.name!r} expects {self.type.__name__}, "
            f"got {type(value).__name__} {value!r}"
        )


@dataclass(frozen=True)
class AlgorithmSpec:
    """A registered matching backend: identity, knobs, and how to run it.

    ``runner`` is called as ``runner(graph, keys, processors=..., artifacts=...,
    observer=..., **options)`` and must return an
    :class:`~repro.matching.result.EMResult`.  ``artifacts`` is the per-session
    cache of precomputed indexes (``None`` for one-shot runs) and ``observer``
    an optional per-round progress callback.
    """

    name: str
    family: str
    runner: Callable[..., object]
    options: Tuple[OptionSpec, ...] = ()
    capabilities: frozenset = frozenset()
    description: str = ""

    def option_names(self) -> Tuple[str, ...]:
        return tuple(option.name for option in self.options)

    def option(self, name: str) -> Optional[OptionSpec]:
        for option in self.options:
            if option.name == name:
                return option
        return None

    def validate_options(self, options: Mapping[str, object]) -> Dict[str, object]:
        """Reject options this backend does not accept; type-check the rest."""
        validated: Dict[str, object] = {}
        for name, value in options.items():
            spec = self.option(name)
            if spec is None:
                accepted = ", ".join(self.option_names()) or "none"
                raise ConfigError(
                    f"algorithm {self.name!r} does not accept option {name!r} "
                    f"(accepted options: {accepted})"
                )
            validated[name] = spec.validate(value)
        return validated

    def run(
        self,
        graph: object,
        keys: object,
        *,
        processors: int = 4,
        options: Optional[Mapping[str, object]] = None,
        artifacts: Optional[object] = None,
        observer: Optional[Callable[[object], None]] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        seed_pairs: Optional[Sequence[Tuple[str, str]]] = None,
        worklist: Optional[Sequence[Tuple[str, str]]] = None,
        blocking: Optional[str] = None,
    ) -> object:
        """Validate *options* against this spec and invoke the runner.

        ``executor`` / ``workers`` select the real execution runtime; they are
        forwarded only to backends declaring the ``"executors"`` capability
        (requesting them from any other backend raises ``ConfigError``).
        ``seed_pairs`` / ``worklist`` are the incremental re-matching inputs
        (a previous run's surviving merges and the affected pairs to
        re-chase); they require the ``"incremental"`` capability.
        ``blocking`` (``"auto"``/``"force"``) selects blocked candidate
        generation and requires the ``"blocking"`` capability.
        """
        validated = self.validate_options(options or {})
        runtime_kwargs: Dict[str, object] = {}
        if workers is not None and executor is None:
            raise ConfigError(
                f"algorithm {self.name!r}: workers requires an executor "
                f"(e.g. executor='process')"
            )
        if executor is not None:
            if "executors" not in self.capabilities:
                raise ConfigError(
                    f"algorithm {self.name!r} does not support executor selection "
                    f"(requested executor={executor!r})"
                )
            runtime_kwargs["executor"] = executor
            runtime_kwargs["workers"] = workers
        if seed_pairs is not None or worklist is not None:
            if "incremental" not in self.capabilities:
                raise ConfigError(
                    f"algorithm {self.name!r} does not support incremental "
                    f"re-matching (seed_pairs/worklist)"
                )
            runtime_kwargs["seed_pairs"] = seed_pairs
            runtime_kwargs["worklist"] = worklist
        if blocking is not None and blocking != "off":
            if "blocking" not in self.capabilities:
                raise ConfigError(
                    f"algorithm {self.name!r} does not support blocked "
                    f"candidate generation (requested blocking={blocking!r})"
                )
            runtime_kwargs["blocking"] = blocking
        return self.runner(
            graph,
            keys,
            processors=processors,
            artifacts=artifacts,
            observer=observer,
            **runtime_kwargs,
            **validated,
        )


class AlgorithmRegistry:
    """Name → :class:`AlgorithmSpec`, case-insensitive, insertion-ordered."""

    def __init__(self) -> None:
        self._specs: Dict[str, AlgorithmSpec] = {}

    def register(self, spec: AlgorithmSpec, replace: bool = False) -> AlgorithmSpec:
        existing = self._canonical(spec.name)
        if existing is not None and not replace:
            raise MatchingError(
                f"algorithm {spec.name!r} is already registered (as {existing!r}); "
                f"pass replace=True to override"
            )
        if existing is not None:
            del self._specs[existing]
        self._specs[spec.name] = spec
        return spec

    def unregister(self, name: str) -> None:
        canonical = self._canonical(name)
        if canonical is None:
            raise MatchingError(f"cannot unregister unknown algorithm {name!r}")
        del self._specs[canonical]

    def get(self, name: str) -> AlgorithmSpec:
        canonical = self._canonical(name)
        if canonical is None:
            raise MatchingError(
                f"unknown algorithm {name!r}; expected one of {', '.join(self.names())}"
            )
        return self._specs[canonical]

    def names(self) -> Tuple[str, ...]:
        return tuple(self._specs.keys())

    def specs(self) -> Tuple[AlgorithmSpec, ...]:
        return tuple(self._specs.values())

    def _canonical(self, name: str) -> Optional[str]:
        lowered = name.lower()
        for registered in self._specs:
            if registered.lower() == lowered:
                return registered
        return None

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self._canonical(name) is not None

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._specs)


class AlgorithmsView(Sequence[str]):
    """A live, ordered, read-only view of the registered algorithm names."""

    def __init__(self, registry: AlgorithmRegistry) -> None:
        self._registry = registry

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry.names())

    def __len__(self) -> int:
        return len(self._registry)

    def __getitem__(self, index):  # type: ignore[override]
        return self._registry.names()[index]

    def __contains__(self, name: object) -> bool:
        return name in self._registry

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AlgorithmsView({', '.join(self._registry.names())})"


#: The process-wide registry the built-in backends register into.
REGISTRY = AlgorithmRegistry()

#: Live view of the registered algorithm names (in registration order).
ALGORITHMS = AlgorithmsView(REGISTRY)


def register_algorithm(
    name: str,
    *,
    family: str,
    options: Sequence[OptionSpec] = (),
    capabilities: Sequence[str] = (),
    description: str = "",
    registry: Optional[AlgorithmRegistry] = None,
) -> Callable[[Callable[..., object]], Callable[..., object]]:
    """Decorator registering a runner function as a matching backend.

    Usage::

        @register_algorithm("EMOptVC", family="vertex-centric",
                            options=(OptionSpec("fanout", int, 4),))
        def _run(graph, keys, *, processors=4, artifacts=None, observer=None,
                 fanout=4):
            ...
    """

    def decorator(runner: Callable[..., object]) -> Callable[..., object]:
        doc = (runner.__doc__ or "").strip().splitlines()
        spec = AlgorithmSpec(
            name=name,
            family=family,
            runner=runner,
            options=tuple(options),
            capabilities=frozenset(capabilities),
            description=description or (doc[0] if doc else ""),
        )
        # explicit None-check: an empty registry is falsy (it has __len__)
        target = REGISTRY if registry is None else registry
        target.register(spec)
        runner.__algorithm_spec__ = spec  # type: ignore[attr-defined]
        return runner

    return decorator


def get_algorithm(name: str) -> AlgorithmSpec:
    """Resolve *name* (case-insensitively) in the global registry."""
    return REGISTRY.get(name)


def algorithm_specs() -> Tuple[AlgorithmSpec, ...]:
    """All registered specs, in registration order."""
    return REGISTRY.specs()
