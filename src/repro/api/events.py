"""Progress events emitted by matching runs to session observers.

Backends report coarse-grained progress through an optional observer callback:
the MapReduce family emits one ``"round"`` event per MapReduce round, the
vertex-centric family emits stage events around product-graph construction and
the engine drain, and every backend emits a final ``"done"`` event.  Observers
are registered on a :class:`~repro.api.session.MatchSession` via
``on_progress`` (or passed directly to a runner as ``observer=``).

Observer failures never fail a run: :func:`notify` (the helper every backend
delivers through) isolates a raising observer, records the failure on the
``repro.events`` logger, and carries on.  The session's fan-out dispatcher
applies the same isolation *per observer*, so one broken observer cannot
starve its siblings of events either.

For pull-style consumers — ``MatchSession.run_async()`` callers, the service
layer's request streams — :class:`EventStream` adapts the push callback into
a **bounded-queue iterator**: it subscribes like any observer, buffers up to
``maxsize`` events, drops the oldest when the consumer falls behind (a slow
reader must never block or abort a matching run), and ends iteration when
closed.
"""

from __future__ import annotations

import logging
import queue
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional


_LOGGER = logging.getLogger("repro.events")


@dataclass(frozen=True)
class ProgressEvent:
    """One progress notification from a matching run."""

    algorithm: str
    #: "candidates", "product-graph", "round", "engine" or "done".
    stage: str
    #: MapReduce round number (0 for stages outside the round loop).
    round: int = 0
    #: identified pairs so far (including transitivity).
    identified: int = 0
    #: pending candidate pairs (MapReduce) or posted messages (vertex-centric).
    pending: int = 0
    detail: str = ""

    def as_dict(self) -> dict:
        """Plain-JSON form (the service layer's wire representation)."""
        return {
            "algorithm": self.algorithm,
            "stage": self.stage,
            "round": self.round,
            "identified": self.identified,
            "pending": self.pending,
            "detail": self.detail,
        }


#: An observer is any callable accepting a :class:`ProgressEvent`.
ProgressObserver = Callable[[ProgressEvent], None]


def notify(observer, event: ProgressEvent) -> None:
    """Deliver *event* to *observer* when one is set (helper for backends).

    A raising observer is isolated: the exception is recorded on the
    ``repro.events`` logger and swallowed, so a broken progress callback can
    never abort the matching run it is watching.
    """
    if observer is None:
        return
    try:
        observer(event)
    except Exception:
        _LOGGER.exception(
            "progress observer %r raised on %r; event dropped", observer, event
        )


class EventStream:
    """A bounded-queue, iterator-style subscription to progress events.

    Created by :meth:`MatchSession.events`; usable directly as an observer
    callback anywhere a :data:`ProgressObserver` is accepted.  The producer
    side never blocks: when the queue is full the *oldest* buffered event is
    dropped (and counted in :attr:`dropped`) to make room, so a stalled
    consumer degrades to sampled progress instead of stalling the run.

    Iteration yields events as they arrive and ends once the stream is
    :meth:`close`\\ d and drained.  ``EventStream`` is also a context
    manager (``with session.events() as stream: ...``) that closes — and
    detaches from its session — on exit.
    """

    _CLOSE = object()

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize)
        self._lock = threading.Lock()
        self._closed = False
        #: events evicted because the consumer fell behind the producer
        self.dropped = 0
        #: total events delivered into the stream (before any eviction)
        self.received = 0
        # set by MatchSession.events(): unsubscribes the stream on close()
        self._detach: Optional[Callable[[], None]] = None

    # -- producer side (observer protocol) -------------------------------- #

    def __call__(self, event: ProgressEvent) -> None:
        with self._lock:
            if self._closed:
                return
            self.received += 1
            self._put_evicting(event)

    def _put_evicting(self, item: object) -> None:
        """Enqueue *item*, evicting the oldest entries when full (lock held)."""
        while True:
            try:
                self._queue.put_nowait(item)
                return
            except queue.Full:
                try:
                    evicted = self._queue.get_nowait()
                    if evicted is not self._CLOSE:
                        self.dropped += 1
                except queue.Empty:
                    pass  # a consumer raced the eviction; retry the put

    def close(self) -> None:
        """Stop accepting events and end iteration once drained."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            detach, self._detach = self._detach, None
            self._put_evicting(self._CLOSE)
        if detach is not None:
            try:
                detach()
            except ValueError:
                pass  # already unsubscribed

    @property
    def closed(self) -> bool:
        return self._closed

    # -- consumer side ----------------------------------------------------- #

    @property
    def pending(self) -> int:
        """Approximate number of buffered, not-yet-consumed events."""
        return self._queue.qsize()

    def get(self, timeout: Optional[float] = None) -> Optional[ProgressEvent]:
        """The next event, or ``None`` when closed-and-drained or timed out."""
        deadline_poll = 0.05 if timeout is None else min(0.05, max(timeout, 0.0))
        remaining = timeout
        while True:
            try:
                item = self._queue.get(timeout=deadline_poll)
            except queue.Empty:
                if self._closed:
                    return None
                if remaining is not None:
                    remaining -= deadline_poll
                    if remaining <= 0:
                        return None
                continue
            if item is self._CLOSE:
                return None
            return item  # type: ignore[return-value]

    def drain(self) -> List[ProgressEvent]:
        """All currently buffered events, without blocking."""
        drained: List[ProgressEvent] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return drained
            if item is not self._CLOSE:
                drained.append(item)  # type: ignore[arg-type]

    def __iter__(self):
        while True:
            event = self.get()
            if event is None:
                if self._closed and self._queue.empty():
                    return
                continue
            yield event

    def __enter__(self) -> "EventStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return (
            f"EventStream({state}, pending={self.pending}, "
            f"received={self.received}, dropped={self.dropped})"
        )
