"""Progress events emitted by matching runs to session observers.

Backends report coarse-grained progress through an optional observer callback:
the MapReduce family emits one ``"round"`` event per MapReduce round, the
vertex-centric family emits stage events around product-graph construction and
the engine drain, and every backend emits a final ``"done"`` event.  Observers
are registered on a :class:`~repro.api.session.MatchSession` via
``on_progress`` (or passed directly to a runner as ``observer=``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class ProgressEvent:
    """One progress notification from a matching run."""

    algorithm: str
    #: "candidates", "product-graph", "round", "engine" or "done".
    stage: str
    #: MapReduce round number (0 for stages outside the round loop).
    round: int = 0
    #: identified pairs so far (including transitivity).
    identified: int = 0
    #: pending candidate pairs (MapReduce) or posted messages (vertex-centric).
    pending: int = 0
    detail: str = ""


#: An observer is any callable accepting a :class:`ProgressEvent`.
ProgressObserver = Callable[[ProgressEvent], None]


def notify(observer, event: ProgressEvent) -> None:
    """Deliver *event* to *observer* when one is set (helper for backends)."""
    if observer is not None:
        observer(event)
