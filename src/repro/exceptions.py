"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class at API boundaries while still being able to
distinguish graph-model errors from pattern/key errors, parser errors and
runtime errors of the simulated execution substrates.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Problems with graph construction or graph queries."""


class UnknownEntityError(GraphError):
    """An entity id was referenced that does not exist in the graph."""

    def __init__(self, entity_id: str):
        super().__init__(f"unknown entity: {entity_id!r}")
        self.entity_id = entity_id


class DuplicateEntityError(GraphError):
    """An entity id was added twice with conflicting types."""

    def __init__(self, entity_id: str, existing_type: str, new_type: str):
        super().__init__(
            f"entity {entity_id!r} already exists with type {existing_type!r}; "
            f"cannot re-add with type {new_type!r}"
        )
        self.entity_id = entity_id
        self.existing_type = existing_type
        self.new_type = new_type


class PatternError(ReproError):
    """Problems with graph-pattern construction or validation."""


class KeyError_(PatternError):
    """Problems with key construction or validation.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`KeyError`; exported from the package as ``InvalidKeyError``.
    """


InvalidKeyError = KeyError_


class ParseError(ReproError):
    """Problems parsing the textual graph / key DSL."""

    def __init__(self, message: str, line: int | None = None):
        location = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line


class MatchingError(ReproError):
    """Problems during entity matching (bad configuration, unknown algorithm)."""


class ConfigError(MatchingError):
    """An invalid :class:`~repro.api.MatchConfig`: bad processor count, an
    option the chosen backend does not accept, or an option of the wrong type."""


class ProofError(ReproError):
    """A proof graph failed verification."""


class StoreError(ReproError):
    """Errors raised by the on-disk snapshot store (``repro.storage.store``).

    Callers that consult the store opportunistically (``SessionArtifacts``)
    catch this base class and fall back to a clean in-memory rebuild.
    """


class StoreFormatError(StoreError):
    """A stored snapshot file is structurally unreadable: bad magic, a
    truncated preamble/header/segment, or an unparsable header."""


class StoreVersionError(StoreError):
    """A stored snapshot uses a different (past or future) format version."""


class StoreStaleError(StoreError):
    """A stored snapshot does not describe the graph at hand: its content
    fingerprint or recorded ``Graph.version`` no longer matches."""


class StoreMissError(StoreError):
    """The store holds no snapshot for the requested graph fingerprint."""


class ExecutorError(ReproError):
    """Errors raised by the shared execution runtime (executors, partitioners)."""


class MapReduceError(ReproError):
    """Errors raised by the simulated MapReduce substrate."""


class VertexCentricError(ReproError):
    """Errors raised by the simulated vertex-centric substrate."""


class DatasetError(ReproError):
    """Errors raised by dataset generators."""


class ServiceError(ReproError):
    """Errors raised by the matching service layer (``repro.service``)."""


class WireError(ServiceError):
    """A malformed service request: unparseable JSON, unknown or ill-typed
    fields.  Maps to HTTP 400."""


class UnknownGraphError(ServiceError):
    """A request referenced a graph name the registry does not hold.
    Maps to HTTP 404."""


class UnknownRequestError(ServiceError):
    """A request id the service does not hold (never existed or evicted).
    Maps to HTTP 404."""


class AdmissionError(ServiceError):
    """The service refused a request because the admission queue is full.
    Maps to HTTP 429 — the client should back off and retry.

    ``retry_after`` (seconds, optional) is the server's estimate of when
    capacity frees up, derived from measured queue depth × mean batch/run
    time; the HTTP layer forwards it as the ``Retry-After`` header.
    """

    def __init__(self, message: str, *, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceUnavailableError(ServiceError):
    """The service is draining (graceful shutdown): queued work still
    finishes but new submissions are refused.  Maps to HTTP 503 with a
    ``Retry-After`` estimating when (a restarted instance of) the service
    can take the request."""

    def __init__(self, message: str, *, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class WalError(ServiceError):
    """Errors raised by the write-ahead op journal (``repro.service.wal``):
    an unreadable or corrupt segment, or a journal whose recorded
    fingerprints do not describe the graph being recovered."""
