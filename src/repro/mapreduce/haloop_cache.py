"""Haloop-style caching of invariant data on the simulated workers.

The paper's ``EMMR`` avoids re-shipping invariant inputs (the d-neighbourhoods
``G^d`` and the keys ``Σ``) on every round by caching them on the processors'
disks, following Haloop.  The simulated equivalent is a per-cluster cache:
data is stored once (charged as distribution records) and then read by any
task for free, which is exactly the asymmetry the optimization exploits.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..exceptions import MapReduceError


@dataclass
class CacheStats:
    """Counters of the worker cache."""

    entries: int = 0
    distributed_records: int = 0
    hits: int = 0


class WorkerCache:
    """Invariant data cached across all workers of the simulated cluster."""

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise MapReduceError(f"num_workers must be >= 1, got {num_workers}")
        self._num_workers = num_workers
        self._data: Dict[str, object] = {}
        self.stats = CacheStats()

    def put(self, name: str, value: object, records: int = 1) -> None:
        """Cache *value* under *name*; *records* is its size for cost purposes.

        The distribution cost is charged once per worker (the data must reach
        every machine), not once per round — that is the whole point.
        """
        if records < 0:
            raise MapReduceError("cached record count must be non-negative")
        self._data[name] = value
        self.stats.entries = len(self._data)
        self.stats.distributed_records += records * self._num_workers

    def get(self, name: str) -> object:
        """Read cached data (error when absent)."""
        if name not in self._data:
            raise MapReduceError(f"no cached data named {name!r}")
        self.stats.hits += 1
        return self._data[name]

    def get_optional(self, name: str, default: Optional[object] = None) -> object:
        """Read cached data, returning *default* when absent."""
        if name not in self._data:
            return default
        return self.get(name)

    def shipped_bytes(self) -> int:
        """Pickled size of the cached payload — what one pool worker receives.

        The cache is the MR driver's process-pool shared payload, so this is
        the real per-worker pipe cost.  With a store-backed
        :class:`~repro.storage.GraphSnapshot` in the cache the snapshot
        contributes only its attach-by-path stub (a few hundred bytes, the
        workers ``mmap`` the file); a detached snapshot contributes its full
        arrays.  Diagnostic only — the simulated cost model keeps charging
        the ``records`` passed to :meth:`put`.
        """
        return len(pickle.dumps(self._data))

    def __contains__(self, name: object) -> bool:
        return name in self._data

    def __len__(self) -> int:
        return len(self._data)
