"""A simulated MapReduce substrate (Hadoop/Haloop stand-in).

See DESIGN.md for the substitution rationale: the runtime executes map and
reduce functions in-process, while a deterministic cost model converts the
recorded per-task work, shuffle traffic, HDFS I/O and per-round barriers into
simulated cluster seconds for a configurable number of processors.
"""

from .cost_model import (
    DRIVER_OVERHEAD_SECONDS,
    HDFS_RECORD_SECONDS,
    ROUND_OVERHEAD_SECONDS,
    SHUFFLE_RECORD_SECONDS,
    WORK_UNIT_SECONDS,
    MapReduceCostModel,
    RoundCost,
    spread_evenly,
)
from .haloop_cache import CacheStats, WorkerCache
from .hdfs import HDFSStats, InMemoryHDFS
from .runtime import (
    FunctionMapper,
    FunctionReducer,
    JobResult,
    MapReduceDriver,
    MapReduceJob,
    TaskContext,
    TaskOutcome,
)

__all__ = [
    "CacheStats",
    "DRIVER_OVERHEAD_SECONDS",
    "FunctionMapper",
    "FunctionReducer",
    "HDFSStats",
    "HDFS_RECORD_SECONDS",
    "InMemoryHDFS",
    "JobResult",
    "MapReduceCostModel",
    "MapReduceDriver",
    "MapReduceJob",
    "ROUND_OVERHEAD_SECONDS",
    "RoundCost",
    "SHUFFLE_RECORD_SECONDS",
    "TaskContext",
    "TaskOutcome",
    "WORK_UNIT_SECONDS",
    "WorkerCache",
    "spread_evenly",
]
