"""The MapReduce runtime: mappers, reducers, jobs and a driver.

The runtime mirrors the structure of a Hadoop job faithfully enough for the
paper's purposes:

* the input is a list of key/value pairs, split across ``p`` map tasks;
* mappers emit intermediate key/value pairs via their context;
* a shuffle groups the intermediate pairs by key and partitions the keys
  across ``p`` reduce tasks;
* reducers emit output key/value pairs.

Execution is layered on :mod:`repro.runtime`: the ``p`` map and reduce tasks
of a round are dispatched as batches to an
:class:`~repro.runtime.executor.Executor` (serial by default, thread or
process pools for real parallelism).  Task payloads therefore must be
picklable, task objects are treated as read-only (report statistics through
``context.count``, not attribute mutation), and stateful reducers implement
the replicate/absorb protocol below.  The task *schedule* is identical for
every executor, so results are bit-identical whether the batches run inline
or on a process pool.

Every task reports *work units* (one per record by default, more when the
user code calls ``context.add_work``), and each job adds a round to the
:class:`~repro.mapreduce.cost_model.MapReduceCostModel`.  The cost model is a
*parallel-observed* layer: it keeps reporting simulated cluster seconds for
``p`` simulated processors regardless of how many real workers the executor
uses.

**Replicate/absorb protocol.** A reducer that carries mutable cross-task
state (the entity-matching reducer merges into a global union–find) exposes
three methods: ``replicate()`` returns an independent copy to run one task
against, ``collect()`` returns the picklable state delta a task produced, and
``absorb(state)`` merges a delta back into the original, in task order.  The
same protocol runs under every executor; reducers without it fall back to
sequential in-driver execution when a parallel executor is configured (their
shared mutable state cannot be safely distributed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Protocol, Sequence, Tuple

from ..exceptions import MapReduceError
from ..runtime import Executor, SerialExecutor, WorkAccount, stable_hash
from .cost_model import MapReduceCostModel, RoundCost
from .haloop_cache import WorkerCache
from .hdfs import InMemoryHDFS

#: A key/value pair flowing through a job.
KeyValue = Tuple[Hashable, object]


class TaskContext(WorkAccount):
    """Execution context handed to map and reduce functions.

    Collects emitted pairs, the work units and the named counters reported by
    the user code.  Work defaults to one unit per processed record;
    computation-heavy code (the isomorphism checks) adds its own work so the
    cost model reflects it.  ``scratch`` holds worker-local helpers so task
    objects shared between tasks stay read-only.
    """

    error_class = MapReduceError

    def __init__(self, worker_id: int, cache: Optional[WorkerCache] = None) -> None:
        super().__init__()
        self.worker_id = worker_id
        self.emitted: List[KeyValue] = []
        self._cache = cache

    def emit(self, key: Hashable, value: object) -> None:
        """Emit an output key/value pair."""
        self.emitted.append((key, value))

    def cached(self, name: str) -> object:
        """Read invariant data cached on this worker (Haloop-style)."""
        if self._cache is None:
            raise MapReduceError("no worker cache attached to this job")
        return self._cache.get(name)


class Mapper(Protocol):
    """A map function: ``map(key, value, context)``."""

    def map(self, key: Hashable, value: object, context: TaskContext) -> None:  # pragma: no cover - protocol
        ...


class Reducer(Protocol):
    """A reduce function: ``reduce(key, values, context)``."""

    def reduce(self, key: Hashable, values: List[object], context: TaskContext) -> None:  # pragma: no cover - protocol
        ...


class FunctionMapper:
    """Adapt a plain function ``f(key, value, context)`` into a Mapper."""

    def __init__(self, fn: Callable[[Hashable, object, TaskContext], None]) -> None:
        self._fn = fn

    def map(self, key: Hashable, value: object, context: TaskContext) -> None:
        self._fn(key, value, context)


class FunctionReducer:
    """Adapt a plain function ``f(key, values, context)`` into a Reducer."""

    def __init__(self, fn: Callable[[Hashable, List[object], TaskContext], None]) -> None:
        self._fn = fn

    def reduce(self, key: Hashable, values: List[object], context: TaskContext) -> None:
        self._fn(key, values, context)


def _is_distributed_reducer(reducer: object) -> bool:
    """Does *reducer* implement the replicate/absorb protocol?"""
    return all(hasattr(reducer, name) for name in ("replicate", "collect", "absorb"))


@dataclass
class TaskOutcome:
    """The picklable result one map or reduce task sends back to the driver."""

    worker_id: int
    emitted: List[KeyValue] = field(default_factory=list)
    work: int = 0
    counters: Dict[str, int] = field(default_factory=dict)
    reducer_state: object = None


def _run_map_task(
    shared: Optional[WorkerCache],
    worker_id: int,
    mapper: Mapper,
    split: List[KeyValue],
) -> TaskOutcome:
    """Execute one map task (module-level so process pools can import it)."""
    context = TaskContext(worker_id, shared)
    for key, value in split:
        context.add_work(1)
        mapper.map(key, value, context)
    return TaskOutcome(
        worker_id=worker_id,
        emitted=context.emitted,
        work=context.work,
        counters=context.counters,
    )


def _run_reduce_task(
    shared: Optional[WorkerCache],
    worker_id: int,
    reducer: Reducer,
    split: List[Tuple[Hashable, List[object]]],
) -> TaskOutcome:
    """Execute one reduce task against a reducer replica."""
    context = TaskContext(worker_id, shared)
    for key, values in split:
        context.add_work(len(values))
        reducer.reduce(key, values, context)
    state = reducer.collect() if _is_distributed_reducer(reducer) else None
    return TaskOutcome(
        worker_id=worker_id,
        emitted=context.emitted,
        work=context.work,
        counters=context.counters,
        reducer_state=state,
    )


@dataclass
class JobResult:
    """Output and accounting of one MapReduce job (one round)."""

    output: List[KeyValue]
    round_cost: RoundCost
    map_emitted: int = 0
    counters: Dict[str, int] = field(default_factory=dict)

    def grouped(self) -> Dict[Hashable, List[object]]:
        """Output grouped by key (convenience for drivers)."""
        grouped: Dict[Hashable, List[object]] = {}
        for key, value in self.output:
            grouped.setdefault(key, []).append(value)
        return grouped


def _partition(
    key: Hashable,
    num_workers: int,
    placement_key: Optional[Callable[[Hashable], Hashable]] = None,
) -> int:
    """Deterministic, process-stable hash partitioning of keys to workers.

    Built on :func:`repro.runtime.stable_hash`: the builtin ``hash`` is salted
    per process, so two worker processes would disagree on key placement.
    When a *placement_key* is set (the snapshot's interning of entity ids and
    candidate pairs), the hash runs over interned integer ids instead of the
    key's full repr.
    """
    if num_workers <= 0:
        return 0
    if placement_key is not None:
        key = placement_key(key)
    return stable_hash(key) % num_workers


class MapReduceJob:
    """One map + shuffle + reduce execution on the simulated cluster.

    ``num_workers`` is the *simulated* processor count ``p`` (the paper's
    knob): the input is split into ``p`` map tasks and the grouped keys into
    ``p`` reduce tasks.  ``executor`` decides where those task batches
    actually run; real parallelism comes from scheduling the ``p`` tasks onto
    the executor's worker pool.
    """

    def __init__(
        self,
        mapper: Mapper,
        reducer: Reducer,
        num_workers: int,
        cost_model: Optional[MapReduceCostModel] = None,
        cache: Optional[WorkerCache] = None,
        executor: Optional[Executor] = None,
        placement_key: Optional[Callable[[Hashable], Hashable]] = None,
    ) -> None:
        if num_workers < 1:
            raise MapReduceError(f"num_workers must be >= 1, got {num_workers}")
        self._mapper = mapper
        self._reducer = reducer
        self._num_workers = num_workers
        self._cost_model = cost_model
        self._cache = cache
        self._executor = executor if executor is not None else SerialExecutor()
        self._placement_key = placement_key

    def run(self, input_pairs: Sequence[KeyValue]) -> JobResult:
        """Execute the job on *input_pairs* and return its result."""
        round_cost = (
            self._cost_model.new_round()
            if self._cost_model is not None
            else RoundCost(round_index=0)
        )
        counters: Dict[str, int] = {}

        # ---- map phase ------------------------------------------------ #
        map_splits: List[List[KeyValue]] = [[] for _ in range(self._num_workers)]
        for key, value in input_pairs:
            map_splits[
                _partition(key, self._num_workers, self._placement_key)
            ].append((key, value))

        map_batches = [
            (worker_id, self._mapper, split) for worker_id, split in enumerate(map_splits)
        ]
        map_outcomes = self._executor.run_tasks(_run_map_task, map_batches, shared=self._cache)

        intermediate: List[KeyValue] = []
        map_work: List[int] = []
        for outcome in map_outcomes:
            intermediate.extend(outcome.emitted)
            map_work.append(outcome.work)
            _merge_counters(counters, outcome.counters)

        # ---- shuffle --------------------------------------------------- #
        grouped: Dict[Hashable, List[object]] = {}
        for key, value in intermediate:
            grouped.setdefault(key, []).append(value)
        round_cost.shuffled_records += len(intermediate)

        # ---- reduce phase ---------------------------------------------- #
        reduce_splits: List[List[Tuple[Hashable, List[object]]]] = [
            [] for _ in range(self._num_workers)
        ]
        for key in sorted(grouped.keys(), key=repr):
            reduce_splits[
                _partition(key, self._num_workers, self._placement_key)
            ].append((key, grouped[key]))

        output: List[KeyValue] = []
        reduce_work: List[int] = []
        for outcome in self._run_reduce_phase(reduce_splits):
            output.extend(outcome.emitted)
            reduce_work.append(outcome.work)
            _merge_counters(counters, outcome.counters)

        round_cost.map_work_per_worker = map_work
        round_cost.reduce_work_per_worker = reduce_work
        return JobResult(
            output=output,
            round_cost=round_cost,
            map_emitted=len(intermediate),
            counters=counters,
        )

    def _run_reduce_phase(
        self, reduce_splits: List[List[Tuple[Hashable, List[object]]]]
    ) -> List[TaskOutcome]:
        """Dispatch the reduce tasks, honouring the replicate/absorb protocol."""
        if _is_distributed_reducer(self._reducer):
            batches = [
                (worker_id, self._reducer.replicate(), split)  # type: ignore[attr-defined]
                for worker_id, split in enumerate(reduce_splits)
            ]
            outcomes = self._executor.run_tasks(
                _run_reduce_task, batches, shared=self._cache
            )
            # deltas merge back in task order: deterministic for any executor
            for outcome in outcomes:
                self._reducer.absorb(outcome.reducer_state)  # type: ignore[attr-defined]
            return outcomes
        # Shared-state reducer without the protocol: its mutations cannot be
        # distributed safely, so its tasks always run inline, in order.
        serial = SerialExecutor()
        batches = [
            (worker_id, self._reducer, split)
            for worker_id, split in enumerate(reduce_splits)
        ]
        return serial.run_tasks(_run_reduce_task, batches, shared=self._cache)


def _merge_counters(total: Dict[str, int], delta: Dict[str, int]) -> None:
    for name, value in delta.items():
        total[name] = total.get(name, 0) + value


class MapReduceDriver:
    """A driver owning the cluster-wide pieces: HDFS, worker cache, cost model.

    Iterative algorithms (``EMMR`` and friends) create one driver, then submit
    a job per round via :meth:`run_job`, reading and writing HDFS in between
    exactly like the paper's ``DriverMR``.

    When a process executor is attached, the worker cache is shipped to the
    pool workers once, when the first job runs — populate the cache *before*
    the first :meth:`run_job` call; later ``cache.put`` calls are not
    re-distributed to already-spawned workers.
    """

    def __init__(self, num_workers: int, executor: Optional[Executor] = None) -> None:
        if num_workers < 1:
            raise MapReduceError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.hdfs = InMemoryHDFS()
        self.cache = WorkerCache(num_workers)
        self.cost_model = MapReduceCostModel(processors=num_workers)
        self.executor = executor
        #: optional key interning applied before stable_hash placement (the
        #: entity-matching drivers install the snapshot's interned-id mapping)
        self.placement_key: Optional[Callable[[Hashable], Hashable]] = None

    def run_job(self, mapper: Mapper, reducer: Reducer, input_pairs: Sequence[KeyValue]) -> JobResult:
        """Run one MapReduce round with the driver's shared state."""
        job = MapReduceJob(
            mapper,
            reducer,
            self.num_workers,
            cost_model=self.cost_model,
            cache=self.cache,
            executor=self.executor,
            placement_key=self.placement_key,
        )
        result = job.run(input_pairs)
        # charge the HDFS traffic performed since the previous round
        result.round_cost.hdfs_records += self._drain_hdfs_traffic()
        return result

    def _drain_hdfs_traffic(self) -> int:
        stats = self.hdfs.stats
        total = stats.records_read + stats.records_written
        stats.reset()
        return total

    def charge_setup(self, work_units: int) -> None:
        """Charge driver-side preprocessing work (candidate set, neighbourhoods)."""
        self.cost_model.add_setup_work(work_units)

    def simulated_seconds(self) -> float:
        """Simulated cluster seconds of everything run through this driver."""
        return self.cost_model.simulated_seconds()
