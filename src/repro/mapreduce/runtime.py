"""The simulated MapReduce runtime: mappers, reducers, jobs and a driver.

The runtime executes map and reduce functions in-process but mirrors the
structure of a Hadoop job faithfully enough for the paper's purposes:

* the input is a list of key/value pairs, split across ``p`` map tasks;
* mappers emit intermediate key/value pairs via their context;
* a shuffle groups the intermediate pairs by key and partitions the keys
  across ``p`` reduce tasks;
* reducers emit output key/value pairs.

Every task reports *work units* (one per record by default, more when the
user code calls ``context.add_work``), and each job adds a round to the
:class:`~repro.mapreduce.cost_model.MapReduceCostModel`, which is how the
benchmarks obtain simulated cluster seconds for a given number of processors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Protocol, Sequence, Tuple

from ..exceptions import MapReduceError
from .cost_model import MapReduceCostModel, RoundCost
from .haloop_cache import WorkerCache
from .hdfs import InMemoryHDFS

#: A key/value pair flowing through a job.
KeyValue = Tuple[Hashable, object]


class TaskContext:
    """Execution context handed to map and reduce functions.

    Collects emitted pairs and the work units reported by the user code.
    Work defaults to one unit per processed record; computation-heavy code
    (the isomorphism checks) adds its own work so the cost model reflects it.
    """

    def __init__(self, worker_id: int, cache: Optional[WorkerCache] = None) -> None:
        self.worker_id = worker_id
        self.emitted: List[KeyValue] = []
        self.work = 0
        self._cache = cache

    def emit(self, key: Hashable, value: object) -> None:
        """Emit an output key/value pair."""
        self.emitted.append((key, value))

    def add_work(self, units: int = 1) -> None:
        """Report *units* of computational work to the cost model."""
        if units < 0:
            raise MapReduceError("work units must be non-negative")
        self.work += units

    def cached(self, name: str) -> object:
        """Read invariant data cached on this worker (Haloop-style)."""
        if self._cache is None:
            raise MapReduceError("no worker cache attached to this job")
        return self._cache.get(name)


class Mapper(Protocol):
    """A map function: ``map(key, value, context)``."""

    def map(self, key: Hashable, value: object, context: TaskContext) -> None:  # pragma: no cover - protocol
        ...


class Reducer(Protocol):
    """A reduce function: ``reduce(key, values, context)``."""

    def reduce(self, key: Hashable, values: List[object], context: TaskContext) -> None:  # pragma: no cover - protocol
        ...


class FunctionMapper:
    """Adapt a plain function ``f(key, value, context)`` into a Mapper."""

    def __init__(self, fn: Callable[[Hashable, object, TaskContext], None]) -> None:
        self._fn = fn

    def map(self, key: Hashable, value: object, context: TaskContext) -> None:
        self._fn(key, value, context)


class FunctionReducer:
    """Adapt a plain function ``f(key, values, context)`` into a Reducer."""

    def __init__(self, fn: Callable[[Hashable, List[object], TaskContext], None]) -> None:
        self._fn = fn

    def reduce(self, key: Hashable, values: List[object], context: TaskContext) -> None:
        self._fn(key, values, context)


@dataclass
class JobResult:
    """Output and accounting of one MapReduce job (one round)."""

    output: List[KeyValue]
    round_cost: RoundCost
    map_emitted: int = 0

    def grouped(self) -> Dict[Hashable, List[object]]:
        """Output grouped by key (convenience for drivers)."""
        grouped: Dict[Hashable, List[object]] = {}
        for key, value in self.output:
            grouped.setdefault(key, []).append(value)
        return grouped


def _partition(key: Hashable, num_workers: int) -> int:
    """Deterministic hash partitioning of keys to workers."""
    return hash(key) % num_workers if num_workers > 0 else 0


class MapReduceJob:
    """One map + shuffle + reduce execution on the simulated cluster."""

    def __init__(
        self,
        mapper: Mapper,
        reducer: Reducer,
        num_workers: int,
        cost_model: Optional[MapReduceCostModel] = None,
        cache: Optional[WorkerCache] = None,
    ) -> None:
        if num_workers < 1:
            raise MapReduceError(f"num_workers must be >= 1, got {num_workers}")
        self._mapper = mapper
        self._reducer = reducer
        self._num_workers = num_workers
        self._cost_model = cost_model
        self._cache = cache

    def run(self, input_pairs: Sequence[KeyValue]) -> JobResult:
        """Execute the job on *input_pairs* and return its result."""
        round_cost = (
            self._cost_model.new_round()
            if self._cost_model is not None
            else RoundCost(round_index=0)
        )

        # ---- map phase ------------------------------------------------ #
        map_splits: List[List[KeyValue]] = [[] for _ in range(self._num_workers)]
        for key, value in input_pairs:
            map_splits[_partition(key, self._num_workers)].append((key, value))

        intermediate: List[KeyValue] = []
        map_work: List[int] = []
        for worker_id, split in enumerate(map_splits):
            context = TaskContext(worker_id, self._cache)
            for key, value in split:
                context.add_work(1)
                self._mapper.map(key, value, context)
            intermediate.extend(context.emitted)
            map_work.append(context.work)

        # ---- shuffle --------------------------------------------------- #
        grouped: Dict[Hashable, List[object]] = {}
        for key, value in intermediate:
            grouped.setdefault(key, []).append(value)
        round_cost.shuffled_records += len(intermediate)

        # ---- reduce phase ---------------------------------------------- #
        reduce_splits: List[List[Tuple[Hashable, List[object]]]] = [
            [] for _ in range(self._num_workers)
        ]
        for key in sorted(grouped.keys(), key=repr):
            reduce_splits[_partition(key, self._num_workers)].append((key, grouped[key]))

        output: List[KeyValue] = []
        reduce_work: List[int] = []
        for worker_id, split in enumerate(reduce_splits):
            context = TaskContext(worker_id, self._cache)
            for key, values in split:
                context.add_work(len(values))
                self._reducer.reduce(key, values, context)
            output.extend(context.emitted)
            reduce_work.append(context.work)

        round_cost.map_work_per_worker = map_work
        round_cost.reduce_work_per_worker = reduce_work
        return JobResult(output=output, round_cost=round_cost, map_emitted=len(intermediate))


class MapReduceDriver:
    """A driver owning the cluster-wide pieces: HDFS, worker cache, cost model.

    Iterative algorithms (``EMMR`` and friends) create one driver, then submit
    a job per round via :meth:`run_job`, reading and writing HDFS in between
    exactly like the paper's ``DriverMR``.
    """

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise MapReduceError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.hdfs = InMemoryHDFS()
        self.cache = WorkerCache(num_workers)
        self.cost_model = MapReduceCostModel(processors=num_workers)

    def run_job(self, mapper: Mapper, reducer: Reducer, input_pairs: Sequence[KeyValue]) -> JobResult:
        """Run one MapReduce round with the driver's shared state."""
        job = MapReduceJob(
            mapper,
            reducer,
            self.num_workers,
            cost_model=self.cost_model,
            cache=self.cache,
        )
        result = job.run(input_pairs)
        # charge the HDFS traffic performed since the previous round
        result.round_cost.hdfs_records += self._drain_hdfs_traffic()
        return result

    def _drain_hdfs_traffic(self) -> int:
        stats = self.hdfs.stats
        total = stats.records_read + stats.records_written
        stats.reset()
        return total

    def charge_setup(self, work_units: int) -> None:
        """Charge driver-side preprocessing work (candidate set, neighbourhoods)."""
        self.cost_model.add_setup_work(work_units)

    def simulated_seconds(self) -> float:
        """Simulated cluster seconds of everything run through this driver."""
        return self.cost_model.simulated_seconds()
