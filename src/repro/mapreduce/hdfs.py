"""An in-memory stand-in for HDFS used by the simulated MapReduce runtime.

Algorithm ``EMMR`` keeps a "global variable" ``Eq`` in HDFS and reads/writes
it every round; the driver also stages candidate pairs and d-neighbourhoods
there.  The store is a named collection of record lists with read/write
counters, so the cost model can charge the per-round I/O that the paper
identifies as one of the two inherent costs of MapReduce (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple

from ..exceptions import MapReduceError


@dataclass
class HDFSStats:
    """I/O counters of the simulated distributed file system."""

    records_written: int = 0
    records_read: int = 0
    files_created: int = 0

    def reset(self) -> None:
        self.records_written = 0
        self.records_read = 0
        self.files_created = 0


class InMemoryHDFS:
    """A named record store with I/O accounting.

    Files are append-only lists of arbitrary records; ``overwrite`` replaces a
    file atomically (the way the driver refreshes the global ``Eq``).
    """

    def __init__(self) -> None:
        self._files: Dict[str, List[object]] = {}
        self.stats = HDFSStats()

    # ------------------------------------------------------------------ #
    # file operations
    # ------------------------------------------------------------------ #

    def create(self, name: str) -> None:
        """Create an empty file (error when it already exists)."""
        if name in self._files:
            raise MapReduceError(f"HDFS file {name!r} already exists")
        self._files[name] = []
        self.stats.files_created += 1

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        self._files.pop(name, None)

    def append(self, name: str, records: Iterable[object]) -> int:
        """Append *records* to *name* (creating it if needed); return count."""
        bucket = self._files.setdefault(name, [])
        count = 0
        for record in records:
            bucket.append(record)
            count += 1
        self.stats.records_written += count
        return count

    def overwrite(self, name: str, records: Iterable[object]) -> int:
        """Replace the contents of *name* with *records*; return count."""
        materialized = list(records)
        self._files[name] = materialized
        self.stats.records_written += len(materialized)
        return len(materialized)

    def read(self, name: str) -> List[object]:
        """Read all records of *name* (error when missing)."""
        if name not in self._files:
            raise MapReduceError(f"HDFS file {name!r} does not exist")
        records = list(self._files[name])
        self.stats.records_read += len(records)
        return records

    def read_if_exists(self, name: str) -> List[object]:
        """Read all records of *name*, or an empty list when missing."""
        if name not in self._files:
            return []
        return self.read(name)

    def size(self, name: str) -> int:
        """Number of records in *name* (0 when missing); not charged as I/O."""
        return len(self._files.get(name, ()))

    def files(self) -> Iterator[str]:
        return iter(self._files.keys())

    def __contains__(self, name: object) -> bool:
        return name in self._files
