"""Deterministic cost model for the simulated MapReduce cluster.

The experiments of the paper report wall-clock seconds on a Hadoop cluster of
``p`` machines.  We cannot (and are not expected to) reproduce absolute EC2
times; instead every simulated job reports the *work units* performed by each
map and reduce task, and the cost model converts them into simulated seconds:

* each round pays a fixed synchronization/startup overhead (the "blocking of
  stragglers" and job-scheduling cost the paper attributes to MapReduce);
* map and reduce phases cost the *maximum* per-worker work (the makespan —
  workers run in parallel, a straggler holds up the barrier);
* shuffled records and HDFS records cost I/O time that is divided across the
  ``p`` workers.

The constants below are calibrated so that the small laptop-scale datasets
produce time series with the same *shape* as Figure 8: near-linear speedup in
``p``, growth with ``|G|``, ``c`` and ``d``, and a MapReduce-vs-vertex-centric
gap dominated by per-round overhead.  They are knobs of the simulation, not
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


#: Simulated seconds charged per work unit performed by a map/reduce task.
WORK_UNIT_SECONDS = 5e-3
#: Simulated seconds charged per record moved in the shuffle (network + sort).
SHUFFLE_RECORD_SECONDS = 1e-3
#: Simulated seconds charged per record read from / written to HDFS.
HDFS_RECORD_SECONDS = 5e-4
#: Fixed simulated seconds charged per MapReduce round (job setup + barrier).
ROUND_OVERHEAD_SECONDS = 0.4
#: Fixed simulated seconds charged once per job sequence (driver setup).
DRIVER_OVERHEAD_SECONDS = 0.3


@dataclass
class RoundCost:
    """Cost breakdown of a single MapReduce round."""

    round_index: int
    map_work_per_worker: List[int] = field(default_factory=list)
    reduce_work_per_worker: List[int] = field(default_factory=list)
    shuffled_records: int = 0
    hdfs_records: int = 0

    @property
    def map_work(self) -> int:
        return sum(self.map_work_per_worker)

    @property
    def reduce_work(self) -> int:
        return sum(self.reduce_work_per_worker)

    def simulated_seconds(self, processors: int) -> float:
        """Simulated wall-clock seconds of this round on *processors* workers."""
        processors = max(1, processors)
        map_makespan = max(self.map_work_per_worker, default=0) * WORK_UNIT_SECONDS
        reduce_makespan = max(self.reduce_work_per_worker, default=0) * WORK_UNIT_SECONDS
        shuffle = self.shuffled_records * SHUFFLE_RECORD_SECONDS / processors
        io = self.hdfs_records * HDFS_RECORD_SECONDS / processors
        return ROUND_OVERHEAD_SECONDS + map_makespan + reduce_makespan + shuffle + io


@dataclass
class MapReduceCostModel:
    """Accumulates per-round costs of a simulated MapReduce execution."""

    processors: int
    rounds: List[RoundCost] = field(default_factory=list)
    setup_work: int = 0

    def new_round(self) -> RoundCost:
        cost = RoundCost(round_index=len(self.rounds))
        self.rounds.append(cost)
        return cost

    def add_setup_work(self, work: int) -> None:
        """Work performed by the driver's preprocessing jobs (L, d-neighbours)."""
        self.setup_work += work

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_work(self) -> int:
        return self.setup_work + sum(r.map_work + r.reduce_work for r in self.rounds)

    @property
    def total_shuffled(self) -> int:
        return sum(r.shuffled_records for r in self.rounds)

    @property
    def total_hdfs_records(self) -> int:
        return sum(r.hdfs_records for r in self.rounds)

    def simulated_seconds(self) -> float:
        """Total simulated wall-clock seconds of the execution."""
        setup = (
            DRIVER_OVERHEAD_SECONDS
            + self.setup_work * WORK_UNIT_SECONDS / max(1, self.processors)
        )
        return setup + sum(r.simulated_seconds(self.processors) for r in self.rounds)

    def breakdown(self) -> Dict[str, float]:
        """A cost breakdown used by reports and by the ablation benchmarks."""
        processors = max(1, self.processors)
        return {
            "rounds": float(self.num_rounds),
            "setup_seconds": DRIVER_OVERHEAD_SECONDS
            + self.setup_work * WORK_UNIT_SECONDS / processors,
            "round_overhead_seconds": ROUND_OVERHEAD_SECONDS * self.num_rounds,
            "compute_seconds": sum(
                (max(r.map_work_per_worker, default=0) + max(r.reduce_work_per_worker, default=0))
                * WORK_UNIT_SECONDS
                for r in self.rounds
            ),
            "shuffle_seconds": self.total_shuffled * SHUFFLE_RECORD_SECONDS / processors,
            "hdfs_seconds": self.total_hdfs_records * HDFS_RECORD_SECONDS / processors,
            "total_seconds": self.simulated_seconds(),
        }


def spread_evenly(work_items: Sequence[int], processors: int) -> List[int]:
    """Distribute per-item work over workers round-robin by descending size.

    A simple longest-processing-time heuristic: the simulated scheduler
    assigns each task to the currently least-loaded worker, which is how we
    model Hadoop's task scheduling for the makespan computation.
    """
    processors = max(1, processors)
    loads = [0] * processors
    for work in sorted(work_items, reverse=True):
        lightest = loads.index(min(loads))
        loads[lightest] += work
    return loads
