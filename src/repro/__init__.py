"""repro — Keys for Graphs.

A from-scratch Python reproduction of *Keys for Graphs* (Fan, Fan, Tian &
Dong, PVLDB 8(12), 2015): recursive graph-pattern keys, the entity-matching
chase, and the paper's two families of parallel-scalable algorithms (a
MapReduce family and a vertex-centric asynchronous family), both running on
simulated execution substrates with deterministic cost models.

Quickstart::

    from repro import Graph, parse_keys, match_entities

    graph = Graph()
    graph.add_entity("alb1", "album")
    graph.add_entity("alb2", "album")
    graph.add_value("alb1", "name_of", "Anthology 2")
    graph.add_value("alb2", "name_of", "Anthology 2")
    graph.add_value("alb1", "release_year", "1996")
    graph.add_value("alb2", "release_year", "1996")

    keys = parse_keys('''
    key album_by_name_and_year for album:
      x -[name_of]-> name*
      x -[release_year]-> year*
    ''')

    result = match_entities(graph, keys, algorithm="EMOptVC")
    assert result.identified("alb1", "alb2")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduction of the paper's evaluation.
"""

from .core import (
    ChaseResult,
    ChaseStep,
    Entity,
    EquivalenceRelation,
    Graph,
    GraphPattern,
    GuidedPairEvaluator,
    Key,
    KeySet,
    Literal,
    NeighborhoodIndex,
    NodeKind,
    PatternNode,
    PatternTriple,
    ProofGraph,
    Triple,
    chase,
    constant,
    designated,
    entities_identified,
    entity_var,
    explain,
    find_matches,
    has_match,
    load_graph,
    load_keys,
    parse_graph,
    parse_keys,
    proof_from_chase,
    satisfies,
    save_graph,
    save_keys,
    serialize_graph,
    serialize_keys,
    value_var,
    verify_proof,
    violations,
    wildcard,
)
from .exceptions import (
    DatasetError,
    GraphError,
    InvalidKeyError,
    MatchingError,
    ParseError,
    ProofError,
    ReproError,
    UnknownEntityError,
)
from .matching import (
    ALGORITHMS,
    EMResult,
    EMStatistics,
    em_mr,
    em_mr_opt,
    em_vc,
    em_vc_opt,
    em_vf2_mr,
    match_entities,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "ChaseResult",
    "ChaseStep",
    "DatasetError",
    "EMResult",
    "EMStatistics",
    "Entity",
    "EquivalenceRelation",
    "Graph",
    "GraphError",
    "GraphPattern",
    "GuidedPairEvaluator",
    "InvalidKeyError",
    "Key",
    "KeySet",
    "Literal",
    "MatchingError",
    "NeighborhoodIndex",
    "NodeKind",
    "ParseError",
    "PatternNode",
    "PatternTriple",
    "ProofError",
    "ProofGraph",
    "ReproError",
    "Triple",
    "UnknownEntityError",
    "__version__",
    "chase",
    "constant",
    "designated",
    "em_mr",
    "em_mr_opt",
    "em_vc",
    "em_vc_opt",
    "em_vf2_mr",
    "entities_identified",
    "entity_var",
    "explain",
    "find_matches",
    "has_match",
    "load_graph",
    "load_keys",
    "match_entities",
    "parse_graph",
    "parse_keys",
    "proof_from_chase",
    "satisfies",
    "save_graph",
    "save_keys",
    "serialize_graph",
    "serialize_keys",
    "value_var",
    "verify_proof",
    "violations",
    "wildcard",
]
