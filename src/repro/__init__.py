"""repro — Keys for Graphs.

A from-scratch Python reproduction of *Keys for Graphs* (Fan, Fan, Tian &
Dong, PVLDB 8(12), 2015): recursive graph-pattern keys, the entity-matching
chase, and the paper's two families of parallel-scalable algorithms (a
MapReduce family and a vertex-centric asynchronous family), both running on
simulated execution substrates with deterministic cost models.

Quickstart — a :class:`MatchSession` is the configurable entry point to every
matching backend and caches the shared indexes across runs::

    from repro import Graph, MatchSession, parse_keys

    graph = Graph()
    graph.add_entity("alb1", "album")
    graph.add_entity("alb2", "album")
    graph.add_value("alb1", "name_of", "Anthology 2")
    graph.add_value("alb2", "name_of", "Anthology 2")
    graph.add_value("alb1", "release_year", "1996")
    graph.add_value("alb2", "release_year", "1996")

    keys = parse_keys('''
    key album_by_name_and_year for album:
      x -[name_of]-> name*
      x -[release_year]-> year*
    ''')

    session = MatchSession(graph).with_keys(keys)
    result = session.using("EMOptVC", processors=8, fanout=4).run()
    assert result.identified("alb1", "alb2")

    # a second run on the same session reuses the neighbourhood index,
    # candidate sets and product graph instead of rebuilding them:
    assert session.run("EMMR").pairs() == result.pairs()

The one-shot form ``match_entities(graph, keys, algorithm="EMOptVC")`` is kept
as a thin wrapper over the same algorithm registry; ``ALGORITHMS`` is a live
view of the registered backend names, and new backends can be plugged in with
:func:`register_algorithm`.  See DESIGN.md for the system layering.
"""

from .api import (
    ALGORITHMS,
    AlgorithmSpec,
    MatchConfig,
    MatchSession,
    OptionSpec,
    ProgressEvent,
    Session,
    algorithm_specs,
    get_algorithm,
    register_algorithm,
)
from .core import (
    ChaseResult,
    ChaseStep,
    Entity,
    EquivalenceRelation,
    Graph,
    GraphPattern,
    GuidedPairEvaluator,
    Key,
    KeySet,
    Literal,
    NeighborhoodIndex,
    NodeKind,
    PatternNode,
    PatternTriple,
    ProofGraph,
    Triple,
    chase,
    constant,
    designated,
    entities_identified,
    entity_var,
    explain,
    find_matches,
    has_match,
    load_graph,
    load_keys,
    parse_graph,
    parse_keys,
    proof_from_chase,
    satisfies,
    save_graph,
    save_keys,
    serialize_graph,
    serialize_keys,
    value_var,
    verify_proof,
    violations,
    wildcard,
)
from .exceptions import (
    ConfigError,
    DatasetError,
    GraphError,
    InvalidKeyError,
    MatchingError,
    ParseError,
    ProofError,
    ReproError,
    StoreError,
    UnknownEntityError,
)
from .matching import (
    EMResult,
    EMStatistics,
    em_mr,
    em_mr_opt,
    em_vc,
    em_vc_opt,
    em_vf2_mr,
    match_entities,
)
from .storage import (
    GraphSnapshot,
    SnapshotNeighborhoodIndex,
    SnapshotStore,
    graph_fingerprint,
)

__version__ = "1.1.0"

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "ChaseResult",
    "ChaseStep",
    "ConfigError",
    "DatasetError",
    "EMResult",
    "EMStatistics",
    "Entity",
    "EquivalenceRelation",
    "Graph",
    "GraphError",
    "GraphPattern",
    "GraphSnapshot",
    "GuidedPairEvaluator",
    "InvalidKeyError",
    "Key",
    "KeySet",
    "Literal",
    "MatchConfig",
    "MatchSession",
    "MatchingError",
    "NeighborhoodIndex",
    "NodeKind",
    "OptionSpec",
    "ParseError",
    "PatternNode",
    "PatternTriple",
    "ProgressEvent",
    "ProofError",
    "ProofGraph",
    "ReproError",
    "Session",
    "SnapshotNeighborhoodIndex",
    "SnapshotStore",
    "StoreError",
    "Triple",
    "UnknownEntityError",
    "__version__",
    "algorithm_specs",
    "chase",
    "constant",
    "designated",
    "em_mr",
    "em_mr_opt",
    "em_vc",
    "em_vc_opt",
    "em_vf2_mr",
    "entities_identified",
    "entity_var",
    "explain",
    "find_matches",
    "get_algorithm",
    "graph_fingerprint",
    "has_match",
    "load_graph",
    "load_keys",
    "match_entities",
    "parse_graph",
    "parse_keys",
    "proof_from_chase",
    "register_algorithm",
    "satisfies",
    "save_graph",
    "save_keys",
    "serialize_graph",
    "serialize_keys",
    "value_var",
    "verify_proof",
    "violations",
    "wildcard",
]
