"""Named graphs and the shared-artifact multiplexing contract.

A :class:`GraphRegistry` maps tenant-facing *names* to registered graphs.
Registration builds exactly one thread-safe
:class:`~repro.api.session.SessionArtifacts` cache per name; every request
against that name runs through a fresh, throwaway
:class:`~repro.api.session.MatchSession` **sharing** that cache, so:

* concurrent requests for one graph run in parallel (sessions don't share a
  run lock) while the artifacts' build-once locks guarantee each expensive
  artifact — snapshot, neighbourhood index, candidates, product graph — is
  built exactly once per graph, no matter how many requests race on it;
* all names multiplex the registry's single
  :class:`~repro.storage.store.SnapshotStore`: two names registered over
  content-identical graphs share one physical ``mmap``'d snapshot file, and
  a service restart warm-starts every graph off disk.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Union

import os

from ..api.config import MatchConfig
from ..api.session import MatchSession, SessionArtifacts
from ..core.graph import Graph
from ..core.key import KeySet
from ..exceptions import AdmissionError, ServiceError, UnknownGraphError
from ..storage.store import SnapshotStore, as_snapshot_store

#: staleness samples kept per graph for the /metrics percentiles
STALENESS_WINDOW = 2048


class RegisteredGraph:
    """One named graph: the graph, its keys and the shared artifact cache."""

    def __init__(
        self,
        name: str,
        graph: Graph,
        keys: KeySet,
        *,
        store: Optional[SnapshotStore] = None,
        source: str = "api",
    ) -> None:
        self.name = name
        self.graph = graph
        self.keys = keys
        self.source = source
        self.registered_at = time.time()
        #: the one artifact cache every request for this name shares
        self.artifacts = SessionArtifacts(graph, keys, snapshot_store=store)
        #: completed match runs against this name (service bookkeeping)
        self.runs = 0
        self._lock = threading.Lock()
        #: ingest state: one persistent incremental session per graph (its
        #: seeded previous result is what makes each batch O(delta)), plus a
        #: lock serializing mutation windows — concurrent ingests of one
        #: name interleave whole batches, never individual mutations
        self._ingest_lock = threading.Lock()
        self._ingest_session: Optional[MatchSession] = None
        self._ingest_config: Optional[MatchConfig] = None
        self.ingested_ops = 0
        self.ingest_batches = 0
        #: durability + flow control (attached by the registry)
        self.wal = None
        self.max_pending_ops: Optional[int] = None
        self.last_recovery: Optional[Dict[str, object]] = None
        #: backpressure accounting: ops applied but not covered by a flush
        #: (failed flush) + ops admitted into in-flight windows
        self._pending_ops = 0
        self._inflight_ops = 0
        #: measured ingest cost, feeding Retry-After derivation
        self._ingest_seconds = 0.0
        #: recent per-mutation staleness samples (seconds), for /metrics
        self._staleness = deque(maxlen=STALENESS_WINDOW)

    def new_session(self, config: Optional[MatchConfig] = None) -> MatchSession:
        """A throwaway per-request session sharing this graph's artifacts."""
        return MatchSession(
            self.graph, self.keys, config, artifacts=self.artifacts
        )

    def _ingest_session_for(self, config: MatchConfig) -> MatchSession:
        """The persistent ingest session (caller holds ``_ingest_lock``)."""
        session = self._ingest_session
        if session is None or self._ingest_config != config:
            session = MatchSession(
                self.graph, self.keys, config, artifacts=self.artifacts
            )
            self._ingest_session = session
            self._ingest_config = config
        return session

    def ingest_retry_after(self, backlog: Optional[int] = None) -> int:
        """A ``Retry-After`` estimate for an over-limit ingest window:
        the measured mean seconds per ingested op × the backlog still to
        clear, clamped to [1, 600] whole seconds."""
        with self._lock:
            return self._retry_after_locked(backlog)

    def _retry_after_locked(self, backlog: Optional[int] = None) -> int:
        """:meth:`ingest_retry_after` body; caller holds ``self._lock``."""
        if backlog is None:
            backlog = self._pending_ops + self._inflight_ops
        mean_per_op = (
            self._ingest_seconds / self.ingested_ops
            if self.ingested_ops
            else 0.0
        )
        return max(1, min(600, math.ceil(backlog * mean_per_op)))

    def ingest(
        self,
        ops,
        *,
        config: Optional[MatchConfig] = None,
        latency_budget: float = 0.25,
        max_batch_ops: Optional[int] = None,
        max_pending_ops: Optional[int] = None,
    ):
        """Apply a mutation window to the live graph and re-match in batches.

        Returns ``(report, result)`` — the window's
        :class:`~repro.service.ingest.IngestReport` and the final (exact)
        ``EMResult`` covering every applied mutation.  The persistent ingest
        session survives across windows, so successive calls keep seeding
        from the previous fixpoint; a config change swaps the session (the
        first flush then falls back to a full run, after which increments
        resume).

        Flow control: with a pending-window bound (per-request
        *max_pending_ops* or the registry-wide default), a window that
        would push the uncovered backlog — ops applied but never flushed
        (a failed flush), plus ops admitted into windows still in flight —
        past the bound is refused up front with
        :class:`~repro.exceptions.AdmissionError` carrying a measured
        ``retry_after``.  With a WAL attached, every op is journalled
        before it touches the graph and each flush checkpoints the journal.
        """
        from .ingest import IngestFlushError, IngestPipeline  # lazy: avoid cycle

        config = config or MatchConfig()
        ops = list(ops)
        limit = (
            max_pending_ops if max_pending_ops is not None else self.max_pending_ops
        )
        with self._lock:
            backlog = self._pending_ops + self._inflight_ops
            if limit is not None and backlog > 0 and backlog + len(ops) > limit:
                raise AdmissionError(
                    f"ingest window refused for graph {self.name!r}: "
                    f"{backlog} op(s) already pending against a bound of "
                    f"{limit}; retry later",
                    retry_after=float(self._retry_after_locked(backlog)),
                )
            self._inflight_ops += len(ops)
        window_started = time.monotonic()
        try:
            with self._ingest_lock:
                session = self._ingest_session_for(config)
                pipeline = IngestPipeline(
                    session,
                    latency_budget=latency_budget,
                    max_batch_ops=max_batch_ops,
                    max_pending_ops=limit,
                    wal=self.wal,
                )
                try:
                    report = pipeline.run(iter(ops))
                except IngestFlushError as error:
                    # ops are on the graph but no published result covers
                    # them; the WAL window stays un-checkpointed, and the
                    # uncovered ops count as backlog until the next
                    # successful flush (which covers the whole graph state)
                    with self._lock:
                        self._pending_ops = error.report.ops_unflushed
                        self.ingested_ops += error.report.ops_applied
                        self.ingest_batches += error.report.batches
                        self._ingest_seconds += time.monotonic() - window_started
                    raise
                result = pipeline.last_result
                if result is None:
                    # an empty window still answers with an exact result
                    result = session.rerun()
                with self._lock:
                    self._pending_ops = 0
                    self.ingested_ops += report.ops_applied
                    self.ingest_batches += report.batches
                    self._ingest_seconds += time.monotonic() - window_started
                    self._staleness.extend(pipeline.staleness_samples)
                return report, result
        finally:
            with self._lock:
                self._inflight_ops -= len(ops)

    def recover(self, config: Optional[MatchConfig] = None) -> Dict[str, object]:
        """Replay this graph's WAL through the persistent ingest session.

        Called by the registry right after registration when the attached
        journal holds records; the replayed session stays as the persistent
        ingest session, so subsequent windows keep seeding incrementally
        from the recovered fixpoint.  Raises
        :class:`~repro.exceptions.WalError` when the journal does not
        describe this graph — recovery never silently drops ops.
        """
        from .wal import replay  # lazy: avoid import cycle

        if self.wal is None:
            raise ServiceError(f"graph {self.name!r} has no WAL attached")
        with self._ingest_lock:
            session = self._ingest_session_for(config or MatchConfig())
            report = replay(self.wal, session)
            with self._lock:
                self.ingested_ops += report.ops_replayed
                self.ingest_batches += report.batches
            self.last_recovery = report.as_dict()
            return self.last_recovery

    def close_ingest(self) -> None:
        """Flush nothing, close the WAL (drain path: windows already done)."""
        with self._ingest_lock:
            if self.wal is not None:
                self.wal.close()

    def count_run(self) -> None:
        with self._lock:
            self.runs += 1

    def warm(self) -> None:
        """Pre-build (or store-load) the snapshot + neighbourhood index."""
        self.artifacts.neighborhood_index()

    def ingest_status(self) -> Dict[str, object]:
        """Ingest observability: staleness percentiles over the recent
        sample window, backpressure state, WAL counters, last recovery."""
        from .ingest import _percentile  # lazy: avoid import cycle

        with self._lock:
            samples = sorted(self._staleness)
            status: Dict[str, object] = {
                "pending_ops": self._pending_ops,
                "inflight_ops": self._inflight_ops,
                "max_pending_ops": self.max_pending_ops,
                "staleness_samples": len(samples),
                "staleness_p50": _percentile(samples, 0.50),
                "staleness_p95": _percentile(samples, 0.95),
                "staleness_max": samples[-1] if samples else 0.0,
            }
        status["wal"] = None if self.wal is None else self.wal.metrics()
        status["last_recovery"] = self.last_recovery
        return status

    def describe(self) -> Dict[str, object]:
        """The ``GET /graphs`` wire entry for this registration."""
        info = self.artifacts.cache_info()
        return {
            "name": self.name,
            "source": self.source,
            "registered_at": self.registered_at,
            "entities": self.graph.num_entities,
            "triples": self.graph.num_triples,
            "keys": self.keys.cardinality,
            "runs": self.runs,
            "ingested_ops": self.ingested_ops,
            "ingest_batches": self.ingest_batches,
            "ingest": self.ingest_status(),
            "cache": {
                "snapshot_builds": info.snapshot_builds,
                "snapshot_patches": info.snapshot_patches,
                "neighborhood_index_builds": info.neighborhood_index_builds,
                "candidate_builds": info.candidate_builds,
                "product_graph_builds": info.product_graph_builds,
                "store_hits": info.store_hits,
                "store_misses": info.store_misses,
                "blocking_index_builds": info.blocking_index_builds,
                "blocking_index_rebases": info.blocking_index_rebases,
                "blocking_blocks_touched": info.blocking_blocks_touched,
                "blocking_pairs_pruned": info.blocking_pairs_pruned,
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RegisteredGraph({self.name!r}, {self.graph.num_entities} "
            f"entities, {self.keys.cardinality} keys, runs={self.runs})"
        )


class GraphRegistry:
    """A thread-safe name → :class:`RegisteredGraph` table with one store."""

    def __init__(
        self,
        store: Union[None, str, "os.PathLike", SnapshotStore] = None,
        *,
        wal_root: Union[None, str, "os.PathLike"] = None,
        wal_fsync: str = "batch",
        wal_retain: str = "all",
        max_pending_ops: Optional[int] = None,
    ) -> None:
        #: the single snapshot store every registered graph multiplexes
        #: (``None``: in-memory artifacts only — still shared per graph)
        self.store = as_snapshot_store(store)
        #: directory holding one write-ahead journal per graph name
        #: (``None``: ingest is not journalled — pre-WAL behaviour)
        self.wal_root = None if wal_root is None else Path(wal_root)
        self.wal_fsync = wal_fsync
        self.wal_retain = wal_retain
        #: registry-wide default ingest pending-window bound
        self.max_pending_ops = max_pending_ops
        self._graphs: Dict[str, RegisteredGraph] = {}
        self._lock = threading.Lock()

    def register(
        self,
        name: str,
        graph: Graph,
        keys: KeySet,
        *,
        source: str = "api",
        replace: bool = False,
        warm: bool = False,
    ) -> RegisteredGraph:
        """Register *graph* + *keys* under *name*.

        ``replace=False`` (the default) rejects re-registration of a live
        name — tenants must not silently swap each other's graphs.
        ``warm=True`` builds (or store-loads) the snapshot and neighbourhood
        index before returning, so the first request pays no build latency.

        With a ``wal_root`` configured, registration attaches the graph's
        write-ahead journal (``<wal_root>/<name>/``); if the journal holds
        records from a previous process, the un-covered suffix is replayed
        through the normal ingest pipeline *before* the entry is published,
        verifying every recorded fingerprint — a journal that does not
        describe *graph* fails registration loudly instead of serving a
        graph that silently lost its last ingest window.
        """
        if not name or "/" in name:
            raise ServiceError(
                f"graph names must be non-empty and slash-free, got {name!r}"
            )
        entry = RegisteredGraph(
            name, graph, keys, store=self.store, source=source
        )
        entry.max_pending_ops = self.max_pending_ops
        if self.wal_root is not None:
            from ..core.fingerprint import fingerprint_of
            from .wal import WriteAheadLog  # lazy: avoid import cycle

            entry.wal = WriteAheadLog(
                self.wal_root / name,
                fsync=self.wal_fsync,
                retain=self.wal_retain,
                base_fingerprint=fingerprint_of(graph),
            )
            if entry.wal.has_records():
                entry.recover()
        with self._lock:
            if not replace and name in self._graphs:
                entry.close_ingest()
                raise ServiceError(
                    f"graph {name!r} is already registered "
                    f"(pass replace=true to swap it)"
                )
            previous = self._graphs.get(name)
            self._graphs[name] = entry
        if previous is not None and previous.wal is not None:
            # the replaced entry shares the same journal directory; release
            # its handle so the new entry owns the tail exclusively
            previous.close_ingest()
        if warm:
            entry.warm()
        return entry

    def get(self, name: str) -> RegisteredGraph:
        with self._lock:
            entry = self._graphs.get(name)
        if entry is None:
            known = ", ".join(sorted(self._graphs)) or "none registered"
            raise UnknownGraphError(f"unknown graph {name!r} (known: {known})")
        return entry

    def unregister(self, name: str) -> None:
        with self._lock:
            entry = self._graphs.pop(name, None)
        if entry is None:
            raise UnknownGraphError(f"unknown graph {name!r}")
        entry.close_ingest()

    def close(self) -> None:
        """Close every registered graph's journal (drain / shutdown path)."""
        for entry in self.entries():
            entry.close_ingest()

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._graphs)

    def entries(self) -> List[RegisteredGraph]:
        with self._lock:
            return [self._graphs[name] for name in sorted(self._graphs)]

    def __len__(self) -> int:
        return len(self._graphs)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._graphs

    def metrics(self) -> Dict[str, object]:
        """Store + per-graph cache counters for ``/metrics``."""
        per_graph = {entry.name: entry.describe() for entry in self.entries()}
        return {
            "graphs": len(per_graph),
            "store": None if self.store is None else {
                "root": str(self.store.root),
                **self.store.metrics(),
            },
            "per_graph": per_graph,
        }
