"""Named graphs and the shared-artifact multiplexing contract.

A :class:`GraphRegistry` maps tenant-facing *names* to registered graphs.
Registration builds exactly one thread-safe
:class:`~repro.api.session.SessionArtifacts` cache per name; every request
against that name runs through a fresh, throwaway
:class:`~repro.api.session.MatchSession` **sharing** that cache, so:

* concurrent requests for one graph run in parallel (sessions don't share a
  run lock) while the artifacts' build-once locks guarantee each expensive
  artifact — snapshot, neighbourhood index, candidates, product graph — is
  built exactly once per graph, no matter how many requests race on it;
* all names multiplex the registry's single
  :class:`~repro.storage.store.SnapshotStore`: two names registered over
  content-identical graphs share one physical ``mmap``'d snapshot file, and
  a service restart warm-starts every graph off disk.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Union

import os

from ..api.config import MatchConfig
from ..api.session import MatchSession, SessionArtifacts
from ..core.graph import Graph
from ..core.key import KeySet
from ..exceptions import ServiceError, UnknownGraphError
from ..storage.store import SnapshotStore, as_snapshot_store


class RegisteredGraph:
    """One named graph: the graph, its keys and the shared artifact cache."""

    def __init__(
        self,
        name: str,
        graph: Graph,
        keys: KeySet,
        *,
        store: Optional[SnapshotStore] = None,
        source: str = "api",
    ) -> None:
        self.name = name
        self.graph = graph
        self.keys = keys
        self.source = source
        self.registered_at = time.time()
        #: the one artifact cache every request for this name shares
        self.artifacts = SessionArtifacts(graph, keys, snapshot_store=store)
        #: completed match runs against this name (service bookkeeping)
        self.runs = 0
        self._lock = threading.Lock()
        #: ingest state: one persistent incremental session per graph (its
        #: seeded previous result is what makes each batch O(delta)), plus a
        #: lock serializing mutation windows — concurrent ingests of one
        #: name interleave whole batches, never individual mutations
        self._ingest_lock = threading.Lock()
        self._ingest_session: Optional[MatchSession] = None
        self._ingest_config: Optional[MatchConfig] = None
        self.ingested_ops = 0
        self.ingest_batches = 0

    def new_session(self, config: Optional[MatchConfig] = None) -> MatchSession:
        """A throwaway per-request session sharing this graph's artifacts."""
        return MatchSession(
            self.graph, self.keys, config, artifacts=self.artifacts
        )

    def ingest(
        self,
        ops,
        *,
        config: Optional[MatchConfig] = None,
        latency_budget: float = 0.25,
        max_batch_ops: Optional[int] = None,
    ):
        """Apply a mutation window to the live graph and re-match in batches.

        Returns ``(report, result)`` — the window's
        :class:`~repro.service.ingest.IngestReport` and the final (exact)
        ``EMResult`` covering every applied mutation.  The persistent ingest
        session survives across windows, so successive calls keep seeding
        from the previous fixpoint; a config change swaps the session (the
        first flush then falls back to a full run, after which increments
        resume).
        """
        from .ingest import IngestPipeline  # lazy: avoid import cycle

        config = config or MatchConfig()
        with self._ingest_lock:
            session = self._ingest_session
            if session is None or self._ingest_config != config:
                session = MatchSession(
                    self.graph, self.keys, config, artifacts=self.artifacts
                )
                self._ingest_session = session
                self._ingest_config = config
            pipeline = IngestPipeline(
                session,
                latency_budget=latency_budget,
                max_batch_ops=max_batch_ops,
            )
            report = pipeline.run(iter(ops))
            result = pipeline.last_result
            if result is None:
                # an empty window still answers with an exact result
                result = session.rerun()
            with self._lock:
                self.ingested_ops += report.ops_applied
                self.ingest_batches += report.batches
            return report, result

    def count_run(self) -> None:
        with self._lock:
            self.runs += 1

    def warm(self) -> None:
        """Pre-build (or store-load) the snapshot + neighbourhood index."""
        self.artifacts.neighborhood_index()

    def describe(self) -> Dict[str, object]:
        """The ``GET /graphs`` wire entry for this registration."""
        info = self.artifacts.cache_info()
        return {
            "name": self.name,
            "source": self.source,
            "registered_at": self.registered_at,
            "entities": self.graph.num_entities,
            "triples": self.graph.num_triples,
            "keys": self.keys.cardinality,
            "runs": self.runs,
            "ingested_ops": self.ingested_ops,
            "ingest_batches": self.ingest_batches,
            "cache": {
                "snapshot_builds": info.snapshot_builds,
                "snapshot_patches": info.snapshot_patches,
                "neighborhood_index_builds": info.neighborhood_index_builds,
                "candidate_builds": info.candidate_builds,
                "product_graph_builds": info.product_graph_builds,
                "store_hits": info.store_hits,
                "store_misses": info.store_misses,
                "blocking_index_builds": info.blocking_index_builds,
                "blocking_index_rebases": info.blocking_index_rebases,
                "blocking_blocks_touched": info.blocking_blocks_touched,
                "blocking_pairs_pruned": info.blocking_pairs_pruned,
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RegisteredGraph({self.name!r}, {self.graph.num_entities} "
            f"entities, {self.keys.cardinality} keys, runs={self.runs})"
        )


class GraphRegistry:
    """A thread-safe name → :class:`RegisteredGraph` table with one store."""

    def __init__(
        self,
        store: Union[None, str, "os.PathLike", SnapshotStore] = None,
    ) -> None:
        #: the single snapshot store every registered graph multiplexes
        #: (``None``: in-memory artifacts only — still shared per graph)
        self.store = as_snapshot_store(store)
        self._graphs: Dict[str, RegisteredGraph] = {}
        self._lock = threading.Lock()

    def register(
        self,
        name: str,
        graph: Graph,
        keys: KeySet,
        *,
        source: str = "api",
        replace: bool = False,
        warm: bool = False,
    ) -> RegisteredGraph:
        """Register *graph* + *keys* under *name*.

        ``replace=False`` (the default) rejects re-registration of a live
        name — tenants must not silently swap each other's graphs.
        ``warm=True`` builds (or store-loads) the snapshot and neighbourhood
        index before returning, so the first request pays no build latency.
        """
        if not name or "/" in name:
            raise ServiceError(
                f"graph names must be non-empty and slash-free, got {name!r}"
            )
        entry = RegisteredGraph(
            name, graph, keys, store=self.store, source=source
        )
        with self._lock:
            if not replace and name in self._graphs:
                raise ServiceError(
                    f"graph {name!r} is already registered "
                    f"(pass replace=true to swap it)"
                )
            self._graphs[name] = entry
        if warm:
            entry.warm()
        return entry

    def get(self, name: str) -> RegisteredGraph:
        with self._lock:
            entry = self._graphs.get(name)
        if entry is None:
            known = ", ".join(sorted(self._graphs)) or "none registered"
            raise UnknownGraphError(f"unknown graph {name!r} (known: {known})")
        return entry

    def unregister(self, name: str) -> None:
        with self._lock:
            if self._graphs.pop(name, None) is None:
                raise UnknownGraphError(f"unknown graph {name!r}")

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._graphs)

    def entries(self) -> List[RegisteredGraph]:
        with self._lock:
            return [self._graphs[name] for name in sorted(self._graphs)]

    def __len__(self) -> int:
        return len(self._graphs)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._graphs

    def metrics(self) -> Dict[str, object]:
        """Store + per-graph cache counters for ``/metrics``."""
        per_graph = {entry.name: entry.describe() for entry in self.entries()}
        return {
            "graphs": len(per_graph),
            "store": None if self.store is None else {
                "root": str(self.store.root),
                **self.store.metrics(),
            },
            "per_graph": per_graph,
        }
