"""Admission control: a bounded request queue in front of a worker pool.

The controller is the service's back-pressure valve.  Requests are admitted
into a bounded FIFO queue (``max_queued``) drained by a fixed pool of worker
threads (``max_inflight``); when the queue is full, :meth:`submit` raises
:class:`~repro.exceptions.AdmissionError` immediately — the HTTP layer maps
that to a 429 so clients back off instead of piling onto a saturated box.

Each admitted request is a :class:`MatchRequest`: a small state machine
(``queued → running → done | failed``, with ``cancelled`` / ``timeout``
side exits) that carries its own provenance — submit/start/finish stamps,
measured queue wait, a bounded per-request progress-event buffer with a
stable cursor, and whatever the runner records (cache counters, delta
provenance).  Cancellation is pre-start only: a matching backend cannot be
interrupted once dispatched, so cancelling a running request returns
``False`` and the run completes (its result is kept).  Per-request timeouts
bound the *queue wait*: a request dequeued after its deadline is marked
``timeout`` and never dispatched.
"""

from __future__ import annotations

import itertools
import math
import queue
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..api.events import ProgressEvent
from ..exceptions import AdmissionError, ServiceError

#: Terminal request states (no further transitions out of these).
TERMINAL_STATES = frozenset(("done", "failed", "cancelled", "timeout", "rejected"))

#: How many progress events one request buffers (oldest evicted first).
EVENT_BUFFER_SIZE = 512

_REQUEST_IDS = itertools.count(1)


class MatchRequest:
    """One admitted match request and its request-level provenance."""

    def __init__(
        self,
        *,
        graph: str,
        describe: str = "",
        timeout: Optional[float] = None,
    ) -> None:
        self.id = f"req-{next(_REQUEST_IDS):06d}"
        #: registered graph name this request runs against
        self.graph = graph
        #: human-readable config one-liner (``MatchConfig.describe()``)
        self.describe = describe
        #: queue-wait deadline in seconds from submission (``None``: no limit)
        self.timeout = timeout
        self.status = "queued"
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: seconds spent waiting in the admission queue
        self.queue_wait: Optional[float] = None
        self.error: Optional[str] = None
        #: the run's EMResult (``done`` requests only)
        self.result = None
        #: request-level provenance recorded by the runner (phase timings,
        #: cache/store counters, incremental-vs-full delta provenance)
        self.provenance: Dict[str, object] = {}
        self._lock = threading.Lock()
        self._done = threading.Event()
        # bounded event buffer with a stable absolute cursor: the buffer
        # holds events [cursor_base, cursor_base + len) of the request
        self._events: List[dict] = []
        self._cursor_base = 0
        self._events_dropped = 0

    # -- event streaming --------------------------------------------------- #

    def record_event(self, event: ProgressEvent) -> None:
        """Append one progress event (usable as a session observer)."""
        with self._lock:
            self._events.append(event.as_dict())
            overflow = len(self._events) - EVENT_BUFFER_SIZE
            if overflow > 0:
                del self._events[:overflow]
                self._cursor_base += overflow
                self._events_dropped += overflow

    def events_after(self, cursor: int = 0) -> Tuple[List[dict], int]:
        """Buffered events at positions ≥ *cursor*, plus the next cursor.

        The cursor is absolute over the request's lifetime: poll with the
        returned value to receive each event exactly once.  A cursor older
        than the buffer silently skips the evicted prefix (the eviction is
        counted in :attr:`events_dropped`).
        """
        with self._lock:
            start = max(0, cursor - self._cursor_base)
            events = self._events[start:]
            return events, self._cursor_base + len(self._events)

    @property
    def events_dropped(self) -> int:
        return self._events_dropped

    # -- state machine ----------------------------------------------------- #

    @property
    def deadline(self) -> Optional[float]:
        if self.timeout is None:
            return None
        return self.submitted_at + self.timeout

    def _transition(self, status: str) -> bool:
        """Move to *status* unless already terminal; True when applied."""
        with self._lock:
            if self.status in TERMINAL_STATES:
                return False
            self.status = status
            if status == "running":
                self.started_at = time.time()
                self.queue_wait = self.started_at - self.submitted_at
            elif status in TERMINAL_STATES:
                self.finished_at = time.time()
                if self.queue_wait is None:
                    self.queue_wait = self.finished_at - self.submitted_at
                self._done.set()
            return True

    def cancel(self) -> bool:
        """Cancel before dispatch; ``False`` once running or terminal."""
        with self._lock:
            if self.status != "queued":
                return False
            self.status = "cancelled"
            self.finished_at = time.time()
            self.queue_wait = self.finished_at - self.submitted_at
            self._done.set()
            return True

    @property
    def finished(self) -> bool:
        return self.status in TERMINAL_STATES

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the request reaches a terminal state (or times out)."""
        return self._done.wait(timeout)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MatchRequest({self.id}, graph={self.graph!r}, {self.status})"


class AdmissionController:
    """A bounded FIFO request queue drained by a fixed worker pool.

    ``submit(request, work)`` either admits the pair into the queue or
    raises :class:`~repro.exceptions.AdmissionError` when ``max_queued``
    requests are already waiting.  ``max_inflight`` worker threads (started
    lazily on first submit) dequeue in FIFO order, honour cancellations and
    queue-wait deadlines, and run ``work(request)`` — any exception marks
    the request ``failed`` and never kills the worker.
    """

    def __init__(
        self,
        *,
        max_inflight: int = 4,
        max_queued: int = 16,
        name: str = "repro-serve",
    ) -> None:
        if max_inflight < 1:
            raise ServiceError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queued < 1:
            raise ServiceError(f"max_queued must be >= 1, got {max_queued}")
        self.max_inflight = max_inflight
        self.max_queued = max_queued
        self._name = name
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=max_queued)
        self._lock = threading.Lock()
        self._workers: List[threading.Thread] = []
        self._closed = False
        # cumulative admission metrics
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.timed_out = 0
        self.inflight = 0
        self.max_queue_depth_seen = 0
        self.total_queue_wait = 0.0
        # measured service time, feeding Retry-After derivation
        self.total_run_seconds = 0.0
        self.runs_measured = 0

    _SHUTDOWN = object()

    # -- submission --------------------------------------------------------- #

    def submit(
        self,
        request: MatchRequest,
        work: Callable[[MatchRequest], None],
    ) -> MatchRequest:
        """Admit *request*; raise :class:`AdmissionError` when over limit."""
        with self._lock:
            if self._closed:
                raise ServiceError("admission controller is shut down")
            self._ensure_workers()
        try:
            self._queue.put_nowait((request, work))
        except queue.Full:
            with self._lock:
                self.rejected += 1
            request._transition("rejected")
            request.error = "admission queue full"
            raise AdmissionError(
                f"request queue full ({self.max_queued} queued, "
                f"{self.max_inflight} in flight); retry later"
            ) from None
        with self._lock:
            self.accepted += 1
            self.max_queue_depth_seen = max(
                self.max_queue_depth_seen, self._queue.qsize()
            )
        return request

    def _ensure_workers(self) -> None:
        """Start the worker pool (idempotent; caller holds the lock)."""
        while len(self._workers) < self.max_inflight:
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"{self._name}-worker-{len(self._workers)}",
                daemon=True,
            )
            self._workers.append(worker)
            worker.start()

    # -- the worker side ---------------------------------------------------- #

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is self._SHUTDOWN:
                return
            request, work = item  # type: ignore[misc]
            self._dispatch(request, work)

    def _dispatch(self, request: MatchRequest, work) -> None:
        if request.status == "cancelled":
            with self._lock:
                self.cancelled += 1
            return
        deadline = request.deadline
        if deadline is not None and time.time() > deadline:
            if request._transition("timeout"):
                request.error = (
                    f"timed out after waiting {request.timeout:.3f}s in the "
                    f"admission queue"
                )
                with self._lock:
                    self.timed_out += 1
            return
        if not request._transition("running"):
            with self._lock:
                self.cancelled += 1
            return
        with self._lock:
            self.inflight += 1
            if request.queue_wait is not None:
                self.total_queue_wait += request.queue_wait
        run_started = time.monotonic()
        try:
            work(request)
        except Exception as exc:
            request.error = f"{type(exc).__name__}: {exc}"
            request._transition("failed")
            with self._lock:
                self.failed += 1
        else:
            if request._transition("done"):
                with self._lock:
                    self.completed += 1
            else:  # the runner marked it failed itself
                with self._lock:
                    self.failed += 1
        finally:
            with self._lock:
                self.inflight -= 1
                self.total_run_seconds += time.monotonic() - run_started
                self.runs_measured += 1

    # -- lifecycle / observability ------------------------------------------ #

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a worker (approximate)."""
        return self._queue.qsize()

    def mean_run_seconds(self) -> float:
        """Mean measured per-request service time (0.0 before any run)."""
        with self._lock:
            if not self.runs_measured:
                return 0.0
            return self.total_run_seconds / self.runs_measured

    def retry_after_seconds(self) -> int:
        """A ``Retry-After`` estimate from measured queue state.

        The backlog ahead of a rejected request is ``queue_depth +
        inflight`` runs; the pool clears ``max_inflight`` of them per mean
        run time, so the wait until capacity frees up is roughly
        ``backlog × mean_run / max_inflight``.  Clamped to [1, 600] and
        rounded up to whole seconds (the header's unit); before any run
        has been measured the floor of 1 second applies.
        """
        with self._lock:
            backlog = self._queue.qsize() + self.inflight
            mean_run = (
                self.total_run_seconds / self.runs_measured
                if self.runs_measured
                else 0.0
            )
        estimate = backlog * mean_run / self.max_inflight
        return max(1, min(600, math.ceil(estimate)))

    def metrics(self) -> Dict[str, object]:
        with self._lock:
            mean_wait = (
                self.total_queue_wait / self.accepted if self.accepted else 0.0
            )
            mean_run = (
                self.total_run_seconds / self.runs_measured
                if self.runs_measured
                else 0.0
            )
            return {
                "max_inflight": self.max_inflight,
                "max_queued": self.max_queued,
                "queue_depth": self._queue.qsize(),
                "inflight": self.inflight,
                "accepted": self.accepted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "timed_out": self.timed_out,
                "max_queue_depth_seen": self.max_queue_depth_seen,
                "mean_queue_wait_seconds": mean_wait,
                "mean_run_seconds": mean_run,
            }

    def shutdown(
        self, wait: bool = True, deadline: Optional[float] = None
    ) -> bool:
        """Stop accepting work and (optionally) drain the worker pool.

        Workers finish every request already queued before they see the
        shutdown sentinel (FIFO), so a waited shutdown *is* a drain of
        admitted work.  *deadline* bounds the total time spent joining
        workers (seconds; ``None``: 30s per worker as before).  Returns
        ``True`` when every worker exited within the budget.
        """
        with self._lock:
            already = self._closed
            self._closed = True
            workers = list(self._workers)
        if not already:
            for _ in workers:
                self._queue.put(self._SHUTDOWN)
        if not wait:
            return False
        drained = True
        if deadline is None:
            for worker in workers:
                worker.join(timeout=30.0)
                drained = drained and not worker.is_alive()
        else:
            expires = time.monotonic() + max(0.0, deadline)
            for worker in workers:
                remaining = expires - time.monotonic()
                worker.join(timeout=max(0.0, remaining))
                drained = drained and not worker.is_alive()
        return drained

    def drain(self, deadline: Optional[float] = None) -> bool:
        """Refuse new work, finish everything queued; ``True`` when fully
        drained within *deadline* seconds (``None``: the default budget)."""
        return self.shutdown(wait=True, deadline=deadline)
