"""The matching service: a multi-tenant, request-serving front end.

This package is the first layer of the system that faces *callers* rather
than graphs.  It turns the session API into a long-lived service:

* :class:`~repro.service.registry.GraphRegistry` — named graphs, each with
  **one** shared, thread-safe
  :class:`~repro.api.session.SessionArtifacts` cache and all of them
  multiplexing **one** shared
  :class:`~repro.storage.store.SnapshotStore`, so N tenants on one box pay
  for one physical copy of every graph;
* :class:`~repro.service.queue.AdmissionController` — a bounded request
  queue in front of a fixed worker pool: configurable max-inflight /
  max-queued, 429-style rejection when full, per-request queue-wait
  timeouts and pre-start cancellation;
* :class:`~repro.service.server.MatchingService` + ``repro serve`` — a
  JSON-over-HTTP front end (stdlib ``ThreadingHTTPServer``): register named
  graphs, submit match requests against any registered backend, poll or
  stream per-request progress events, fetch results, and scrape service
  metrics from ``/metrics``;
* :mod:`~repro.service.ingest` — the streaming ingest pipeline: continuous
  JSONL mutation streams folded into latency-budgeted incremental re-matches
  (shared by ``repro ingest`` and ``POST /graphs/<name>/ingest``), with
  mutations/sec and staleness-percentile reporting, a deadline-flush
  watchdog, and a bounded pending window for backpressure;
* :mod:`~repro.service.wal` — the per-graph write-ahead op journal:
  append-before-apply durability with per-flush fingerprint checkpoints,
  tunable fsync policy, and crash recovery that replays the un-covered
  suffix through the normal pipeline (bit-identical by the incremental
  equivalence invariant);
* :mod:`~repro.service.wire` — the wire schemas: every request is parsed
  into a validated :class:`~repro.api.MatchConfig` and every response
  carries request-level provenance (request id, queue wait, phase timings,
  cache/store hit counters, incremental-vs-full provenance).

See DESIGN.md § "Service layer" for the threading model and the
shared-store multiplexing contract.
"""

from __future__ import annotations

from .ingest import (
    IngestError,
    IngestFlushError,
    IngestPipeline,
    IngestReport,
    ingest_stream,
)
from .queue import AdmissionController, MatchRequest
from .registry import GraphRegistry, RegisteredGraph
from .server import MatchingService, make_http_server, serve
from .wal import ReplayReport, WriteAheadLog, replay
from .wire import algorithm_catalog

__all__ = [
    "AdmissionController",
    "GraphRegistry",
    "IngestError",
    "IngestFlushError",
    "IngestPipeline",
    "IngestReport",
    "MatchRequest",
    "MatchingService",
    "RegisteredGraph",
    "ReplayReport",
    "WriteAheadLog",
    "algorithm_catalog",
    "ingest_stream",
    "make_http_server",
    "replay",
    "serve",
]
