"""Streaming ingest: continuous mutation streams batched into delta reruns.

The O(delta) machinery (patched snapshots, incremental fingerprints,
segment-level store patching, the support-level delta planner) makes a
single ``rerun()`` cheap — this module turns that into a *pipeline*: a
continuous stream of journalled mutations (JSONL records from a file, a
socket, or the service endpoint) is applied to the live graph and folded
into incremental re-matches in **latency-budgeted batches**.  The pipeline
applies mutations as fast as they arrive and triggers ``session.rerun()``
whenever the oldest unflushed mutation has been waiting longer than the
budget (or a batch-size cap is hit), so the published result is never more
than one batch stale: every mutation is covered by the next flush, and the
flush starts at most ``latency_budget`` seconds after the mutation landed —
a deadline-flush watchdog enforces this even when the stream stalls between
ops (``repro ingest --follow`` on a quiet journal).

The wire format is one JSON object per line::

    {"op": "add_entity",    "id": "e9", "type": "person"}
    {"op": "retype_entity", "id": "e9", "type": "company"}
    {"op": "add_edge",      "subject": "e1", "predicate": "knows", "object": "e2"}
    {"op": "remove_edge",   "subject": "e1", "predicate": "knows", "object": "e2"}
    {"op": "add_value",     "subject": "e1", "predicate": "name", "value": "ada"}
    {"op": "set_value",     "subject": "e1", "predicate": "name", "value": "Ada"}
    {"op": "remove_value",  "subject": "e1", "predicate": "name", "value": "Ada"}

Shared by ``repro ingest`` (file / stdin streams) and the service's
``POST /graphs/<name>/ingest`` endpoint; both report the same
:class:`IngestReport` (mutations/sec, staleness percentiles, delta
provenance aggregates).

Durability and flow control hook in here too: give the pipeline a
``wal`` (:class:`~repro.service.wal.WriteAheadLog`) and every op is
journalled *before* it touches the graph, with a checkpoint record —
carrying the post-flush content fingerprint — written per successful
flush; give it ``max_pending_ops`` and the un-flushed window is bounded
(the pipeline flushes early rather than letting apply-then-flush debt grow
without limit).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, TextIO

from ..core.fingerprint import fingerprint_of
from ..exceptions import ReproError


class IngestError(ReproError):
    """A malformed mutation record or an inapplicable mutation."""


class IngestFlushError(IngestError):
    """``session.rerun()`` failed inside a flush.

    The ops of the pending window are already applied to the live graph but
    no published result covers them — the graph and ``last_result`` have
    diverged.  ``report`` carries the partial :class:`IngestReport` of
    everything the run *did* publish (``ops_unflushed`` counts the
    uncovered window), and the WAL window — if one is attached — is left
    **un-checkpointed**, so a retry flush or a restart replay covers the
    window instead of losing it.
    """

    def __init__(self, message: str, *, report: "IngestReport" = None):
        super().__init__(message)
        self.report = report


#: the mutation operations the wire format accepts, with required fields
OP_FIELDS: Dict[str, tuple] = {
    "add_entity": ("id", "type"),
    "retype_entity": ("id", "type"),
    "add_edge": ("subject", "predicate", "object"),
    "remove_edge": ("subject", "predicate", "object"),
    "add_value": ("subject", "predicate", "value"),
    "set_value": ("subject", "predicate", "value"),
    "remove_value": ("subject", "predicate", "value"),
}


def apply_mutation(graph, op: Mapping) -> str:
    """Apply one wire-format mutation record to *graph*; returns the op name.

    Raises :class:`IngestError` for unknown operations, missing fields, or
    mutations the graph rejects (e.g. an edge to an unknown entity) — the
    graph's own validation errors pass through wrapped, so a stream with one
    bad record fails loudly instead of silently skewing results.
    """
    kind = op.get("op")
    if kind not in OP_FIELDS:
        known = ", ".join(sorted(OP_FIELDS))
        raise IngestError(f"unknown ingest op {kind!r} (known: {known})")
    missing = [name for name in OP_FIELDS[kind] if name not in op]
    if missing:
        raise IngestError(f"ingest op {kind!r} is missing field(s): {missing}")
    try:
        if kind == "add_entity":
            graph.add_entity(op["id"], op["type"])
        elif kind == "retype_entity":
            graph.retype_entity(op["id"], op["type"])
        elif kind == "add_edge":
            graph.add_edge(op["subject"], op["predicate"], op["object"])
        elif kind == "remove_edge":
            graph.remove_edge(op["subject"], op["predicate"], op["object"])
        elif kind == "add_value":
            graph.add_value(op["subject"], op["predicate"], op["value"])
        elif kind == "set_value":
            graph.set_value(op["subject"], op["predicate"], op["value"])
        else:  # remove_value
            graph.remove_value(op["subject"], op["predicate"], op["value"])
    except IngestError:
        raise
    except (ReproError, KeyError, ValueError, TypeError) as error:
        raise IngestError(f"ingest op {op!r} failed: {error}") from error
    return kind


def iter_jsonl(stream: Iterable[str]) -> Iterator[Mapping]:
    """Parse a JSONL mutation stream lazily (blank lines and ``#`` skipped)."""
    for number, line in enumerate(stream, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        try:
            record = json.loads(text)
        except ValueError as error:
            raise IngestError(f"line {number}: unparseable JSON: {error}") from error
        if not isinstance(record, dict):
            raise IngestError(f"line {number}: expected a JSON object")
        yield record


@dataclass
class IngestReport:
    """What one ingest run did, and how fast."""

    #: mutations applied to the graph
    ops_applied: int = 0
    #: per-op count, e.g. ``{"add_edge": 12, "set_value": 3}``
    ops_by_kind: Dict[str, int] = field(default_factory=dict)
    #: latency-budget flushes (each one ``session.rerun()``)
    batches: int = 0
    #: flushes whose delta mode was "incremental" / "reused" / "full"
    delta_modes: Dict[str, int] = field(default_factory=dict)
    #: cumulative candidate pairs re-chased across all flushes
    pairs_rechecked: int = 0
    #: wall-clock seconds of the whole run / applying mutations / re-matching
    elapsed_seconds: float = 0.0
    apply_seconds: float = 0.0
    rerun_seconds: float = 0.0
    #: per-mutation staleness: seconds from a mutation landing in the graph
    #: to the first published result covering it (p50/p95/max over all ops)
    staleness_p50: float = 0.0
    staleness_p95: float = 0.0
    staleness_max: float = 0.0
    #: ops applied to the graph but NOT covered by any published result —
    #: non-zero only when a flush failed (see :class:`IngestFlushError`)
    ops_unflushed: int = 0

    @property
    def mutations_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.ops_applied / self.elapsed_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "ops_applied": self.ops_applied,
            "ops_by_kind": dict(sorted(self.ops_by_kind.items())),
            "batches": self.batches,
            "delta_modes": dict(sorted(self.delta_modes.items())),
            "pairs_rechecked": self.pairs_rechecked,
            "elapsed_seconds": self.elapsed_seconds,
            "apply_seconds": self.apply_seconds,
            "rerun_seconds": self.rerun_seconds,
            "mutations_per_second": self.mutations_per_second,
            "staleness_p50": self.staleness_p50,
            "staleness_p95": self.staleness_p95,
            "staleness_max": self.staleness_max,
            "ops_unflushed": self.ops_unflushed,
        }


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


_END = object()


class IngestPipeline:
    """Fold a mutation stream into latency-budgeted incremental reruns.

    The pipeline owns no *consumer* thread: :meth:`run` drives the stream
    iterator inline (a generator reading a file, stdin, or a queue),
    applying each mutation immediately and flushing — one
    ``session.rerun()`` — when the oldest unflushed mutation is older than
    *latency_budget* seconds, when *max_batch_ops* (or *max_pending_ops*)
    mutations have accumulated, or when the stream ends.  A small watchdog
    thread (``deadline_flush=True``, the default) enforces the budget even
    while :meth:`run` is blocked waiting on the next op, so a stalled
    stream cannot hold a pending mutation past its deadline.
    ``session.rerun()`` is bit-identical to a full re-match by the
    incremental-equivalence invariant, so consumers of
    ``pipeline.last_result`` always observe an exact result that is at most
    one batch stale.

    With a ``wal`` attached, each op is appended to the journal before it
    mutates the graph (a rejected op gets a failure marker), and each flush
    writes a checkpoint carrying the post-flush content fingerprint — the
    crash-recovery contract of :mod:`repro.service.wal`.
    """

    def __init__(
        self,
        session,
        *,
        latency_budget: float = 0.25,
        max_batch_ops: Optional[int] = None,
        max_pending_ops: Optional[int] = None,
        wal=None,
        deadline_flush: bool = True,
        on_batch: Optional[Callable[[object, IngestReport], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if latency_budget < 0:
            raise IngestError("latency_budget must be >= 0 seconds")
        if max_batch_ops is not None and max_batch_ops < 1:
            raise IngestError("max_batch_ops must be >= 1")
        if max_pending_ops is not None and max_pending_ops < 1:
            raise IngestError("max_pending_ops must be >= 1")
        self.session = session
        self.latency_budget = latency_budget
        self.max_batch_ops = max_batch_ops
        self.max_pending_ops = max_pending_ops
        self.wal = wal
        self.deadline_flush = deadline_flush
        self.on_batch = on_batch
        self._clock = clock
        #: the newest published (exact) result; at most one batch stale
        self.last_result = None
        # run()-scoped state, guarded by _run_lock so the watchdog thread
        # and the consuming loop never flush concurrently
        self._run_lock = threading.Lock()
        self._running = False
        self._report: Optional[IngestReport] = None
        self._staleness: List[float] = []
        self._pending_applied_at: List[float] = []
        self._batch_started: Optional[float] = None
        self._flush_error: Optional[IngestError] = None

    @property
    def pending_ops(self) -> int:
        """Mutations applied but not yet covered by a flush."""
        with self._run_lock:
            return len(self._pending_applied_at)

    # -- internals (all called with _run_lock held) ------------------------- #

    def _apply(self, op: Mapping) -> None:
        clock = self._clock
        report = self._report
        apply_started = clock()
        if self.wal is not None:
            self.wal.append(op)
        try:
            kind = apply_mutation(self.session.graph, op)
        except IngestError:
            if self.wal is not None:
                self.wal.mark_failed()
            raise
        now = clock()
        report.apply_seconds += now - apply_started
        report.ops_applied += 1
        report.ops_by_kind[kind] = report.ops_by_kind.get(kind, 0) + 1
        self._pending_applied_at.append(now)
        if self._batch_started is None:
            self._batch_started = now

    def _window_full(self) -> bool:
        pending = len(self._pending_applied_at)
        if self.max_batch_ops is not None and pending >= self.max_batch_ops:
            return True
        if self.max_pending_ops is not None and pending >= self.max_pending_ops:
            return True
        return False

    def _budget_exceeded(self) -> bool:
        if self._batch_started is None:
            return False
        return self._clock() - self._batch_started >= self.latency_budget

    def _flush(self) -> None:
        report = self._report
        if not self._pending_applied_at:
            return
        clock = self._clock
        rerun_started = clock()
        try:
            result = self.session.rerun()
        except Exception as error:
            report.rerun_seconds += clock() - rerun_started
            report.ops_unflushed = len(self._pending_applied_at)
            raise IngestFlushError(
                f"flush failed with {len(self._pending_applied_at)} op(s) "
                f"applied to the live graph but not covered by any published "
                f"result: {error}",
                report=report,
            ) from error
        finished = clock()
        self.last_result = result
        report.batches += 1
        report.rerun_seconds += finished - rerun_started
        self._staleness.extend(
            finished - applied for applied in self._pending_applied_at
        )
        self._pending_applied_at.clear()
        self._batch_started = None
        delta = self.session.last_delta()
        if delta is not None:
            report.delta_modes[delta.mode] = (
                report.delta_modes.get(delta.mode, 0) + 1
            )
            report.pairs_rechecked += delta.pairs_rechecked
        if self.wal is not None:
            self.wal.checkpoint(fingerprint_of(self.session.graph))
        if self.on_batch is not None:
            self.on_batch(result, report)

    def _watchdog(self, stop: threading.Event, interval: float) -> None:
        """Flush the pending window when its deadline passes even though the
        consuming loop is still blocked on the stream.  Errors never escape
        this thread: they park in ``_flush_error`` for the main loop."""
        while not stop.wait(interval):
            with self._run_lock:
                if not self._running or self._flush_error is not None:
                    return
                if self._pending_applied_at and self._budget_exceeded():
                    try:
                        self._flush()
                    except IngestError as error:
                        self._flush_error = error
                        return

    def _check_flush_error(self) -> None:
        if self._flush_error is not None:
            error, self._flush_error = self._flush_error, None
            raise error

    def _finalize(self, report: IngestReport, started: float) -> None:
        report.elapsed_seconds = self._clock() - started
        self._staleness.sort()
        report.staleness_p50 = _percentile(self._staleness, 0.50)
        report.staleness_p95 = _percentile(self._staleness, 0.95)
        report.staleness_max = self._staleness[-1] if self._staleness else 0.0

    @property
    def staleness_samples(self) -> List[float]:
        """The per-mutation staleness samples of the last / current run."""
        with self._run_lock:
            return list(self._staleness)

    # -- the consuming loop ------------------------------------------------- #

    def run(self, ops: Iterable[Mapping]) -> IngestReport:
        """Consume *ops* to exhaustion; returns the run's :class:`IngestReport`.

        On return every mutation of the stream is reflected in
        :attr:`last_result` (the final partial batch is always flushed).
        """
        report = IngestReport()
        clock = self._clock
        started = clock()
        with self._run_lock:
            if self._running:
                raise IngestError("pipeline is already running a stream")
            self._running = True
            self._report = report
            self._staleness = []
            self._pending_applied_at = []
            self._batch_started = None
            self._flush_error = None
        stop = threading.Event()
        watchdog = None
        if self.deadline_flush and 0.0 < self.latency_budget < float("inf"):
            interval = max(0.005, min(0.05, self.latency_budget / 4.0))
            watchdog = threading.Thread(
                target=self._watchdog,
                args=(stop, interval),
                name="ingest-deadline-flush",
                daemon=True,
            )
            watchdog.start()
        iterator = iter(ops)
        try:
            while True:
                # pull the next op OUTSIDE the lock: the stream may block
                # indefinitely (follow mode) and the watchdog must be able
                # to flush the pending window meanwhile
                op = next(iterator, _END)
                with self._run_lock:
                    self._check_flush_error()
                    if op is _END:
                        self._flush()
                        break
                    self._apply(op)
                    if self._budget_exceeded() or self._window_full():
                        self._flush()
        except IngestFlushError:
            with self._run_lock:
                self._finalize(report, started)
            raise
        finally:
            stop.set()
            with self._run_lock:
                self._running = False
            if watchdog is not None:
                watchdog.join(timeout=5.0)
        with self._run_lock:
            self._finalize(report, started)
        return report


def ingest_stream(
    session,
    stream: TextIO,
    *,
    latency_budget: float = 0.25,
    max_batch_ops: Optional[int] = None,
    max_pending_ops: Optional[int] = None,
    wal=None,
    on_batch: Optional[Callable[[object, IngestReport], None]] = None,
) -> IngestReport:
    """Run an :class:`IngestPipeline` over a JSONL text *stream*."""
    pipeline = IngestPipeline(
        session,
        latency_budget=latency_budget,
        max_batch_ops=max_batch_ops,
        max_pending_ops=max_pending_ops,
        wal=wal,
        on_batch=on_batch,
    )
    return pipeline.run(iter_jsonl(stream))
