"""Wire schemas of the matching service: parse requests, render responses.

Everything on the wire is plain JSON.  Parsing is strict — unknown fields,
ill-typed values and missing requirements raise
:class:`~repro.exceptions.WireError` (HTTP 400) with a message naming the
offending field, so clients get actionable errors instead of 500s.

Request bodies
--------------

``POST /graphs`` registers a named graph, either from inline DSL text::

    {"name": "music", "graph_text": "...", "keys_text": "...",
     "replace": false, "warm": true}

or from a registered dataset generator::

    {"name": "synth", "dataset": "synthetic",
     "dataset_options": {"scale": 0.5, "seed": 7}}

``POST /match`` submits a run; the config fields mirror
:meth:`repro.api.MatchConfig.to_dict` (minus ``snapshot_store`` and
``incremental``, which the service owns)::

    {"graph": "music", "algorithm": "EMOptVC", "processors": 8,
     "options": {"fanout": 4}, "wait": true, "timeout": 30.0}
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..api.config import MatchConfig
from ..api.registry import algorithm_specs
from ..core.graph import Graph
from ..core.key import KeySet
from ..core.parser import parse_graph, parse_keys
from ..exceptions import ParseError, ReproError, WireError
from .queue import MatchRequest


def _require(payload: Mapping[str, object], field: str, kind: type) -> object:
    value = payload.get(field)
    if value is None:
        raise WireError(f"missing required field {field!r}")
    if not isinstance(value, kind):
        raise WireError(
            f"field {field!r} expects {kind.__name__}, "
            f"got {type(value).__name__} {value!r}"
        )
    return value


def _optional(
    payload: Mapping[str, object], field: str, kind: type, default: object = None
) -> object:
    value = payload.get(field, default)
    if value is default or value is None:
        return default
    if kind is float and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if not isinstance(value, kind) or (kind is not bool and isinstance(value, bool)):
        raise WireError(
            f"field {field!r} expects {kind.__name__}, "
            f"got {type(value).__name__} {value!r}"
        )
    return value


def _reject_unknown(payload: Mapping[str, object], accepted: frozenset) -> None:
    unknown = sorted(set(payload) - accepted)
    if unknown:
        raise WireError(
            f"unknown field(s): {', '.join(unknown)} "
            f"(accepted: {', '.join(sorted(accepted))})"
        )


# --------------------------------------------------------------------------- #
# POST /graphs
# --------------------------------------------------------------------------- #

_REGISTER_FIELDS = frozenset(
    ("name", "graph_text", "keys_text", "dataset", "dataset_options",
     "replace", "warm")
)


def parse_register_request(
    payload: Mapping[str, object],
) -> Tuple[str, Graph, KeySet, str, bool, bool]:
    """Parse a graph-registration body.

    Returns ``(name, graph, keys, source, replace, warm)``.  Exactly one of
    the inline-DSL form (``graph_text`` + ``keys_text``) and the dataset
    form (``dataset`` [+ ``dataset_options``]) must be present.
    """
    if not isinstance(payload, Mapping):
        raise WireError(f"request body must be a JSON object, got {payload!r}")
    _reject_unknown(payload, _REGISTER_FIELDS)
    name = _require(payload, "name", str)
    replace = bool(_optional(payload, "replace", bool, False))
    warm = bool(_optional(payload, "warm", bool, False))
    inline = "graph_text" in payload or "keys_text" in payload
    dataset = "dataset" in payload
    if inline == dataset:
        raise WireError(
            "register with either graph_text+keys_text or dataset, not both"
        )
    if inline:
        graph_text = _require(payload, "graph_text", str)
        keys_text = _require(payload, "keys_text", str)
        try:
            graph = parse_graph(graph_text)
            keys = parse_keys(keys_text)
        except ParseError as error:
            raise WireError(f"unparseable DSL: {error}") from error
        return name, graph, keys, "inline-dsl", replace, warm
    dataset_name = _require(payload, "dataset", str)
    options = payload.get("dataset_options", {})
    if not isinstance(options, Mapping):
        raise WireError(
            f"dataset_options must be a mapping, got {options!r}"
        )
    from ..datasets.registry import make_dataset  # deferred: heavy import

    try:
        graph, keys = make_dataset(dataset_name, **dict(options))
    except ReproError as error:
        raise WireError(f"dataset build failed: {error}") from error
    except TypeError as error:
        raise WireError(f"bad dataset_options: {error}") from error
    return name, graph, keys, f"dataset:{dataset_name}", replace, warm


# --------------------------------------------------------------------------- #
# POST /match
# --------------------------------------------------------------------------- #

_MATCH_FIELDS = frozenset(
    ("graph", "algorithm", "processors", "executor", "workers", "options",
     "wait", "timeout")
)


def parse_match_request(
    payload: Mapping[str, object],
) -> Tuple[str, MatchConfig, bool, Optional[float]]:
    """Parse a match-submission body.

    Returns ``(graph_name, config, wait, timeout)``.  ``snapshot_store``
    and ``incremental`` are deliberately not accepted: the service owns the
    store (the multiplexing contract) and serves stateless full runs.
    """
    if not isinstance(payload, Mapping):
        raise WireError(f"request body must be a JSON object, got {payload!r}")
    _reject_unknown(payload, _MATCH_FIELDS)
    graph_name = _require(payload, "graph", str)
    wait = bool(_optional(payload, "wait", bool, False))
    timeout = _optional(payload, "timeout", float, None)
    if timeout is not None and timeout <= 0:
        raise WireError(f"timeout must be > 0 seconds, got {timeout!r}")
    config_fields = {
        field: payload[field]
        for field in ("algorithm", "processors", "executor", "workers", "options")
        if field in payload and payload[field] is not None
    }
    try:
        config = MatchConfig.from_dict(config_fields)
        config.resolve()  # validate the backend + options up front → 400
    except ReproError as error:
        raise WireError(str(error)) from error
    return graph_name, config, wait, timeout


_INGEST_FIELDS = frozenset(
    ("ops", "algorithm", "processors", "options", "blocking",
     "latency_budget", "max_batch_ops", "max_pending_ops")
)


def parse_ingest_request(
    payload: Mapping[str, object],
) -> Tuple[List[Mapping[str, object]], MatchConfig, float, Optional[int], Optional[int]]:
    """Parse an ingest body (``POST /graphs/<name>/ingest``).

    Returns ``(ops, config, latency_budget, max_batch_ops,
    max_pending_ops)``.  ``ops`` is a JSON array of mutation records (the
    same vocabulary as the JSONL wire format of ``repro ingest``); the
    batch the endpoint receives is one window of a continuous stream, so
    the pipeline's latency budget applies *within* the window and the
    response reports the same staleness percentiles as the CLI.
    ``max_pending_ops`` bounds the un-flushed pending window — a window
    that would push the graph's backlog past it is refused with a 429.
    """
    if not isinstance(payload, Mapping):
        raise WireError(f"request body must be a JSON object, got {payload!r}")
    _reject_unknown(payload, _INGEST_FIELDS)
    ops = payload.get("ops")
    if not isinstance(ops, list) or not all(isinstance(op, Mapping) for op in ops):
        raise WireError("'ops' must be a JSON array of mutation objects")
    latency_budget = _optional(payload, "latency_budget", float, 0.25)
    if latency_budget is None or latency_budget < 0:
        raise WireError(f"latency_budget must be >= 0 seconds, got {latency_budget!r}")
    max_batch_ops = _optional(payload, "max_batch_ops", int, None)
    if max_batch_ops is not None and max_batch_ops < 1:
        raise WireError(f"max_batch_ops must be >= 1, got {max_batch_ops!r}")
    max_pending_ops = _optional(payload, "max_pending_ops", int, None)
    if max_pending_ops is not None and max_pending_ops < 1:
        raise WireError(f"max_pending_ops must be >= 1, got {max_pending_ops!r}")
    config_fields = {
        field: payload[field]
        for field in ("algorithm", "processors", "options", "blocking")
        if field in payload and payload[field] is not None
    }
    try:
        config = MatchConfig.from_dict(config_fields)
        config.resolve()
    except ReproError as error:
        raise WireError(str(error)) from error
    return list(ops), config, float(latency_budget), max_batch_ops, max_pending_ops


# --------------------------------------------------------------------------- #
# response payloads
# --------------------------------------------------------------------------- #


def request_payload(request: MatchRequest, *, include_result: bool = False) -> Dict[str, object]:
    """The status payload of one request (``GET /requests/<id>``)."""
    payload: Dict[str, object] = {
        "id": request.id,
        "graph": request.graph,
        "config": request.describe,
        "status": request.status,
        "submitted_at": request.submitted_at,
        "started_at": request.started_at,
        "finished_at": request.finished_at,
        "queue_wait_seconds": request.queue_wait,
        "timeout": request.timeout,
        "error": request.error,
        "provenance": dict(request.provenance),
    }
    if include_result and request.result is not None:
        payload["result"] = request.result.to_dict()
    return payload


def algorithm_catalog() -> List[Dict[str, object]]:
    """Machine-readable backend discovery (``GET /algorithms``, CLI --json)."""
    catalog: List[Dict[str, object]] = []
    for spec in algorithm_specs():
        catalog.append(
            {
                "name": spec.name,
                "family": spec.family,
                "description": spec.description,
                "capabilities": sorted(spec.capabilities),
                "options": [
                    {
                        "name": option.name,
                        "type": option.type.__name__,
                        "default": option.default,
                        "description": option.description,
                    }
                    for option in spec.options
                ],
            }
        )
    return catalog
