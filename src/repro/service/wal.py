"""Per-graph write-ahead op journal: crash-safe streaming ingest.

The delta pipeline applies journalled mutations to the *live* graph and
publishes results in latency-budgeted batches — fast, but fragile: a
crashed ``repro serve`` used to lose every op of the un-flushed window
silently.  :class:`WriteAheadLog` closes that hole with the classic WAL
contract:

* **append before apply** — every ingest op is made durable in an
  append-only JSONL segment *before* it mutates the graph;
* **checkpoint per flushed batch** — when the pipeline flushes (one
  ``session.rerun()`` covering the batch), a checkpoint record carrying the
  post-flush :func:`~repro.core.fingerprint.fingerprint_of` is appended, so
  recovery knows exactly which prefix of the journal the published result
  covers;
* **replay on restart** — :func:`replay` feeds the un-covered suffix back
  through the normal :class:`~repro.service.ingest.IngestPipeline`,
  verifying the graph's O(1) fingerprint accumulator against every
  checkpoint record it passes.  The replayed run is bit-identical to the
  uninterrupted one by the incremental-equivalence invariant (fatal gate in
  ``benchmarks/bench_ingest.py``).

Layout: one directory per graph holding numbered segments
(``wal-00000001.jsonl``, …).  Each segment opens with a header line naming
the graph fingerprint its first record applies to; records are one JSON
object per line::

    {"wal": 1, "segment": 3, "base": "<fingerprint>"}      # header
    {"op": "add_value", "subject": "e1", ...}              # ingest op
    {"failed": 1}                                          # op was rejected
    {"checkpoint": "<fingerprint>", "ops": 12}             # flushed batch

Durability is tunable per deployment via the fsync policy: ``always``
(fsync every record — survives OS crash, slowest), ``batch`` (fsync at
checkpoints — a crash loses at most one un-checkpointed window's
*durability*, never its acknowledgement, since checkpoints follow the
publish), and ``off`` (buffered writes only — survives process SIGKILL but
not OS crash).  A torn final line (the crash interrupted ``write``) is
repaired on open by truncating to the last complete record; torn records
anywhere else are corruption and raise :class:`~repro.exceptions.WalError`.

Retention: ``retain="all"`` (default) keeps every segment, so recovery can
replay from the graph's *registration-time* base state.  ``retain="window"``
deletes fully-checkpointed segments when the current one rolls over
(``segment_max_bytes``) — for deployments where checkpointed state is
durable elsewhere, e.g. a snapshot store whose stored snapshot is patched
per flush; recovery then reconstructs the base via
``GraphSnapshot.to_graph`` and replays only the retained suffix.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple, Union

from ..core.fingerprint import fingerprint_of
from ..exceptions import WalError

#: accepted fsync policies, strongest first
FSYNC_POLICIES = ("always", "batch", "off")

#: accepted retention policies
RETAIN_POLICIES = ("all", "window")

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".jsonl"
_FORMAT_VERSION = 1

#: default segment rollover threshold (bytes)
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024


@dataclass
class WalCheckpoint:
    """One checkpoint record: the journal prefix a published result covers."""

    fingerprint: str
    #: ops flushed by the batch this checkpoint closes
    ops: int
    #: index into the retained op sequence (ops strictly before this record)
    position: int
    note: str = ""


@dataclass
class WalState:
    """Parsed content of every retained segment, oldest first."""

    #: fingerprint the oldest retained segment's first record applies to
    base_fingerprint: Optional[str]
    #: every surviving op, in append order (failed ops already excluded)
    ops: List[Mapping] = field(default_factory=list)
    checkpoints: List[WalCheckpoint] = field(default_factory=list)
    #: a torn final line was found (and repaired) on the last segment
    torn_tail: bool = False

    @property
    def pending_ops(self) -> List[Mapping]:
        """Ops after the last checkpoint — applied (or accepted) but never
        covered by a published, checkpointed result."""
        if not self.checkpoints:
            return list(self.ops)
        return self.ops[self.checkpoints[-1].position:]

    @property
    def last_fingerprint(self) -> Optional[str]:
        if self.checkpoints:
            return self.checkpoints[-1].fingerprint
        return self.base_fingerprint


@dataclass
class ReplaySpan:
    """One replay unit: ops up to (and verified against) a checkpoint."""

    ops: List[Mapping]
    #: fingerprint the graph must show after applying *ops* (``None``: the
    #: un-checkpointed tail — nothing recorded to verify against)
    expected_fingerprint: Optional[str]


class WriteAheadLog:
    """An append-only, segmented JSONL op journal for one graph.

    Thread-safe: appends, checkpoints and metrics take an internal lock
    (the ingest path is already serialized per graph, but recovery and
    metrics scrapes may race it).
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        *,
        fsync: str = "batch",
        retain: str = "all",
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
        base_fingerprint: Optional[str] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r} (known: {', '.join(FSYNC_POLICIES)})"
            )
        if retain not in RETAIN_POLICIES:
            raise WalError(
                f"unknown retention policy {retain!r} "
                f"(known: {', '.join(RETAIN_POLICIES)})"
            )
        if segment_max_bytes < 1:
            raise WalError("segment_max_bytes must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.retain = retain
        self.segment_max_bytes = segment_max_bytes
        self._lock = threading.RLock()
        self._handle = None
        self._closed = False
        # metrics
        self.appends = 0
        self.checkpoints_written = 0
        self.bytes_written = 0
        self.fsync_calls = 0
        self.segments_created = 0
        self.segments_removed = 0
        self.replays = 0
        self.replayed_ops = 0
        self.repaired_tail_bytes = 0

        existing = self._segment_paths()
        if existing:
            state = self._scan(repair=True)
            self._pending = len(state.pending_ops)
            self._last_fingerprint = state.last_fingerprint
            self._current_seq = self._seq_of(existing[-1])
            self._current_bytes = existing[-1].stat().st_size
        else:
            self._pending = 0
            self._last_fingerprint = base_fingerprint
            self._current_seq = 0
            self._current_bytes = 0

    # -- segment plumbing --------------------------------------------------- #

    @staticmethod
    def _seq_of(path: Path) -> int:
        return int(path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])

    def _segment_paths(self) -> List[Path]:
        paths = [
            path
            for path in self.root.iterdir()
            if path.name.startswith(_SEGMENT_PREFIX)
            and path.name.endswith(_SEGMENT_SUFFIX)
        ]
        return sorted(paths, key=self._seq_of)

    def _segment_path(self, seq: int) -> Path:
        return self.root / f"{_SEGMENT_PREFIX}{seq:08d}{_SEGMENT_SUFFIX}"

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self.root, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _open_segment(self) -> None:
        """Open (creating if needed) the segment the next record goes to."""
        if self._handle is not None:
            return
        if self._current_seq == 0 or not self._segment_path(self._current_seq).exists():
            self._current_seq += 1
            path = self._segment_path(self._current_seq)
            self._handle = open(path, "a", encoding="utf-8")
            header = {
                "wal": _FORMAT_VERSION,
                "segment": self._current_seq,
                "base": self._last_fingerprint,
            }
            self._write_record(header)
            self.segments_created += 1
            self._fsync_dir()
        else:
            self._handle = open(
                self._segment_path(self._current_seq), "a", encoding="utf-8"
            )

    def _write_record(self, record: Dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        self._handle.write(line)
        self._handle.flush()
        self._current_bytes += len(line.encode("utf-8"))
        self.bytes_written += len(line.encode("utf-8"))

    def _fsync_file(self) -> None:
        os.fsync(self._handle.fileno())
        self.fsync_calls += 1

    def _roll_segment(self) -> None:
        """Close the full segment; the next append opens a fresh one whose
        header base is the latest checkpoint fingerprint.  Under
        ``retain="window"`` every older (fully checkpointed) segment is
        deleted — rolls only happen right after a checkpoint, so every
        non-current segment ends on one."""
        self._handle.close()
        self._handle = None
        closed_seq = self._current_seq
        self._current_seq += 1
        path = self._segment_path(self._current_seq)
        self._handle = open(path, "a", encoding="utf-8")
        self._current_bytes = 0
        self._write_record(
            {
                "wal": _FORMAT_VERSION,
                "segment": self._current_seq,
                "base": self._last_fingerprint,
            }
        )
        self.segments_created += 1
        if self.retain == "window":
            for old in self._segment_paths():
                if self._seq_of(old) <= closed_seq:
                    old.unlink()
                    self.segments_removed += 1
        self._fsync_dir()

    # -- the write side ----------------------------------------------------- #

    def append(self, op: Mapping) -> None:
        """Journal one ingest op (call *before* applying it to the graph)."""
        with self._lock:
            self._check_open()
            self._open_segment()
            self._write_record(dict(op))
            if self.fsync_policy == "always":
                self._fsync_file()
            self.appends += 1
            self._pending += 1

    def mark_failed(self) -> None:
        """Record that the most recently appended op was *rejected* by the
        graph (never applied) — replay must skip it."""
        with self._lock:
            self._check_open()
            if self._pending < 1:
                raise WalError("mark_failed with no pending op to disown")
            self._open_segment()
            self._write_record({"failed": 1})
            if self.fsync_policy == "always":
                self._fsync_file()
            self._pending -= 1

    def checkpoint(self, fingerprint: str, *, note: str = "") -> int:
        """Mark every journalled op so far as covered by a published result
        whose post-flush graph fingerprint is *fingerprint*.  Returns the
        number of ops the checkpoint newly covers."""
        with self._lock:
            self._check_open()
            self._open_segment()
            record: Dict[str, object] = {"checkpoint": fingerprint, "ops": self._pending}
            if note:
                record["note"] = note
            self._write_record(record)
            if self.fsync_policy in ("always", "batch"):
                self._fsync_file()
            covered = self._pending
            self._pending = 0
            self._last_fingerprint = fingerprint
            self.checkpoints_written += 1
            if self._current_bytes >= self.segment_max_bytes:
                self._roll_segment()
            return covered

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                if self.fsync_policy != "off":
                    self._fsync_file()
                self._handle.close()
                self._handle = None
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise WalError(f"write-ahead log at {self.root} is closed")

    # -- the read / recovery side ------------------------------------------- #

    def _scan(self, repair: bool = False) -> WalState:
        """Parse every retained segment into a :class:`WalState`.

        With ``repair=True`` a torn final line on the *last* segment is
        truncated away (the crash interrupted the write; the op was never
        acknowledged).  Undecodable bytes anywhere else raise
        :class:`WalError` — that is corruption, not a crash artifact.
        """
        paths = self._segment_paths()
        state = WalState(base_fingerprint=None)
        for index, path in enumerate(paths):
            last_segment = index == len(paths) - 1
            raw = path.read_bytes()
            good_bytes = 0
            for line_number, line in enumerate(raw.split(b"\n"), start=1):
                if not line.strip():
                    good_bytes += len(line) + 1
                    continue
                try:
                    record = json.loads(line.decode("utf-8"))
                    if not isinstance(record, dict):
                        raise ValueError("expected a JSON object")
                except (ValueError, UnicodeDecodeError) as error:
                    complete = good_bytes + len(line) < len(raw)
                    if last_segment and not complete:
                        # torn tail: the crash interrupted this write
                        state.torn_tail = True
                        if repair:
                            torn = len(raw) - good_bytes
                            with open(path, "r+b") as handle:
                                handle.truncate(good_bytes)
                            self.repaired_tail_bytes += torn
                        break
                    raise WalError(
                        f"corrupt WAL record at {path.name}:{line_number}: {error}"
                    ) from error
                good_bytes += len(line) + 1
                if "wal" in record:
                    if record.get("wal") != _FORMAT_VERSION:
                        raise WalError(
                            f"unsupported WAL format version {record.get('wal')!r} "
                            f"in {path.name} (this build reads {_FORMAT_VERSION})"
                        )
                    if state.base_fingerprint is None:
                        state.base_fingerprint = record.get("base")
                elif "checkpoint" in record:
                    state.checkpoints.append(
                        WalCheckpoint(
                            fingerprint=record["checkpoint"],
                            ops=int(record.get("ops", 0)),
                            position=len(state.ops),
                            note=str(record.get("note", "")),
                        )
                    )
                elif "failed" in record:
                    if not state.ops:
                        raise WalError(
                            f"orphan failure marker at {path.name}:{line_number}"
                        )
                    state.ops.pop()
                else:
                    state.ops.append(record)
        return state

    def state(self) -> WalState:
        """A fresh parse of the retained journal."""
        with self._lock:
            return self._scan(repair=False)

    def has_records(self) -> bool:
        """Any op or checkpoint on disk (an empty directory is a fresh WAL)."""
        with self._lock:
            state = self._scan(repair=False)
            return bool(state.ops or state.checkpoints)

    @property
    def pending_count(self) -> int:
        """Ops journalled but not yet covered by a checkpoint."""
        return self._pending

    def recovery_plan(self, current_fingerprint: str) -> List[ReplaySpan]:
        """The checkpoint-aligned spans to replay onto a graph whose content
        fingerprint is *current_fingerprint*.

        The graph may be at the journal's base state (replay everything), at
        any recorded checkpoint (replay the suffix), or already at the last
        checkpoint with no pending tail (nothing to replay).  Any other
        state means this journal does not describe that graph — a hard
        :class:`WalError`, never a silent skip.
        """
        with self._lock:
            state = self._scan(repair=False)
        if not state.ops and not state.checkpoints:
            return []
        # positions where the graph fingerprint is known, oldest first
        known: List[Tuple[int, Optional[str]]] = [(0, state.base_fingerprint)]
        known.extend((c.position, c.fingerprint) for c in state.checkpoints)
        start: Optional[int] = None
        for position, fingerprint in reversed(known):
            if fingerprint == current_fingerprint:
                start = position
                break
        if start is None:
            recorded = ", ".join(
                (fp or "?")[:12] for _, fp in known
            )
            raise WalError(
                f"WAL at {self.root} does not describe this graph: its "
                f"fingerprint {current_fingerprint[:12]}… matches neither the "
                f"journal base nor any checkpoint ({recorded}…)"
            )
        spans: List[ReplaySpan] = []
        cursor = start
        for ckpt in state.checkpoints:
            if ckpt.position <= start:
                continue
            spans.append(
                ReplaySpan(
                    ops=state.ops[cursor:ckpt.position],
                    expected_fingerprint=ckpt.fingerprint,
                )
            )
            cursor = ckpt.position
        if cursor < len(state.ops):
            spans.append(
                ReplaySpan(ops=state.ops[cursor:], expected_fingerprint=None)
            )
        return spans

    # -- observability ------------------------------------------------------ #

    def metrics(self) -> Dict[str, object]:
        with self._lock:
            return {
                "root": str(self.root),
                "fsync_policy": self.fsync_policy,
                "retain": self.retain,
                "segments": len(self._segment_paths()),
                "segments_created": self.segments_created,
                "segments_removed": self.segments_removed,
                "appends": self.appends,
                "checkpoints": self.checkpoints_written,
                "pending_ops": self._pending,
                "bytes_written": self.bytes_written,
                "fsync_calls": self.fsync_calls,
                "replays": self.replays,
                "replayed_ops": self.replayed_ops,
                "repaired_tail_bytes": self.repaired_tail_bytes,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WriteAheadLog({str(self.root)!r}, fsync={self.fsync_policy}, "
            f"pending={self._pending})"
        )


# --------------------------------------------------------------------------- #
# recovery
# --------------------------------------------------------------------------- #


@dataclass
class ReplayReport:
    """What one WAL recovery did."""

    ops_replayed: int = 0
    batches: int = 0
    checkpoints_verified: int = 0
    #: ops after the last checkpoint (the window a crash would have lost)
    pending_replayed: int = 0
    rerun_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    final_fingerprint: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "ops_replayed": self.ops_replayed,
            "batches": self.batches,
            "checkpoints_verified": self.checkpoints_verified,
            "pending_replayed": self.pending_replayed,
            "rerun_seconds": self.rerun_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "final_fingerprint": self.final_fingerprint,
        }


def replay(
    wal: WriteAheadLog,
    session,
    *,
    on_batch: Optional[Callable] = None,
) -> ReplayReport:
    """Replay the journal's un-covered suffix through the normal pipeline.

    The session's graph must be at the journal base or at a recorded
    checkpoint (see :meth:`WriteAheadLog.recovery_plan`).  Each span replays
    through an :class:`~repro.service.ingest.IngestPipeline` flush — the
    same batching the original run used — and the graph's fingerprint
    accumulator is verified against every checkpoint record passed.  On
    success a recovery checkpoint is appended, so the journal is fully
    covered again and a second restart replays nothing.
    """
    from .ingest import IngestPipeline  # lazy: ingest stays WAL-agnostic

    started = time.monotonic()
    graph = session.graph
    report = ReplayReport(final_fingerprint=fingerprint_of(graph))
    spans = wal.recovery_plan(report.final_fingerprint)
    for span in spans:
        if not span.ops:
            # an empty span still re-verifies the checkpoint fingerprint
            if span.expected_fingerprint is not None:
                _verify(graph, span.expected_fingerprint, wal)
                report.checkpoints_verified += 1
            continue
        pipeline = IngestPipeline(
            session,
            latency_budget=float("inf"),
            deadline_flush=False,
            on_batch=on_batch,
        )
        span_report = pipeline.run(iter(span.ops))
        report.ops_replayed += span_report.ops_applied
        report.batches += span_report.batches
        report.rerun_seconds += span_report.rerun_seconds
        if span.expected_fingerprint is None:
            report.pending_replayed += span_report.ops_applied
        else:
            _verify(graph, span.expected_fingerprint, wal)
            report.checkpoints_verified += 1
    report.final_fingerprint = fingerprint_of(graph)
    if spans:
        wal.checkpoint(report.final_fingerprint, note="recovery")
    with wal._lock:
        wal.replays += 1
        wal.replayed_ops += report.ops_replayed
    report.elapsed_seconds = time.monotonic() - started
    return report


def _verify(graph, expected: str, wal: WriteAheadLog) -> None:
    actual = fingerprint_of(graph)
    if actual != expected:
        raise WalError(
            f"WAL replay diverged: graph fingerprint {actual[:12]}… does not "
            f"match the checkpoint {expected[:12]}… recorded in {wal.root} — "
            f"the journal does not describe this graph's history"
        )
