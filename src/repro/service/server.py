"""The ``repro serve`` front end: JSON-over-HTTP on a threading server.

:class:`MatchingService` is the transport-free orchestrator — register
graphs, submit requests through the admission controller, poll status,
scrape metrics — and the HTTP layer is a thin stdlib
``ThreadingHTTPServer`` handler on top (no third-party dependencies).

Endpoints::

    GET    /healthz                      liveness + uptime
    GET    /algorithms                   machine-readable backend catalog
    GET    /metrics                      admission + store + per-graph counters
    GET    /graphs                       registered graphs
    POST   /graphs                       register a named graph
    DELETE /graphs/<name>                unregister
    POST   /graphs/<name>/ingest         apply a mutation window, re-match in
                                         latency-budgeted incremental batches
    POST   /match                        submit a run (202, or wait=true)
    GET    /requests/<id>                poll one request's status
    GET    /requests/<id>/result         fetch the EMResult (409 until done)
    GET    /requests/<id>/events?cursor=N   poll the progress-event stream
    DELETE /requests/<id>                cancel (pre-start only)

Error mapping: :class:`~repro.exceptions.WireError` → 400, unknown graph /
request → 404, result-not-ready → 409, admission rejection → 429.  Every
429 carries a ``Retry-After`` header.

Threading model: one HTTP thread per connection (stdlib), submissions hop
onto the admission controller's fixed worker pool, and each worker drives a
throwaway per-request :class:`~repro.api.session.MatchSession` that shares
the named graph's :class:`~repro.api.session.SessionArtifacts` — so request
concurrency is bounded by ``max_inflight`` regardless of connection count,
and no graph's artifacts are ever built twice.
"""

from __future__ import annotations

import collections
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple, Union

import os

from ..api.config import MatchConfig
from ..core.graph import Graph
from ..core.key import KeySet
from ..exceptions import (
    AdmissionError,
    ReproError,
    ServiceError,
    UnknownGraphError,
    UnknownRequestError,
    WireError,
)
from ..storage.store import SnapshotStore
from .ingest import IngestError
from .queue import AdmissionController, MatchRequest
from .registry import GraphRegistry, RegisteredGraph
from . import wire


class MatchingService:
    """The service orchestrator: registry + admission control + requests."""

    def __init__(
        self,
        *,
        store: Union[None, str, "os.PathLike", SnapshotStore] = None,
        max_inflight: int = 4,
        max_queued: int = 16,
        default_timeout: Optional[float] = None,
        max_requests: int = 1024,
    ) -> None:
        self.registry = GraphRegistry(store=store)
        self.controller = AdmissionController(
            max_inflight=max_inflight, max_queued=max_queued
        )
        #: queue-wait deadline applied when a request names none
        self.default_timeout = default_timeout
        #: how many finished requests the table remembers (oldest evicted)
        self.max_requests = max_requests
        self.started_at = time.time()
        self._requests: "collections.OrderedDict[str, MatchRequest]" = (
            collections.OrderedDict()
        )
        self._requests_lock = threading.Lock()
        self._closed = False

    # -- graphs ------------------------------------------------------------- #

    def register_graph(
        self,
        name: str,
        graph: Graph,
        keys: KeySet,
        *,
        source: str = "api",
        replace: bool = False,
        warm: bool = False,
    ) -> RegisteredGraph:
        return self.registry.register(
            name, graph, keys, source=source, replace=replace, warm=warm
        )

    # -- requests ----------------------------------------------------------- #

    def submit(
        self,
        graph_name: str,
        config: Optional[MatchConfig] = None,
        *,
        timeout: Optional[float] = None,
    ) -> MatchRequest:
        """Admit one match request; raises
        :class:`~repro.exceptions.AdmissionError` when the queue is full and
        :class:`~repro.exceptions.UnknownGraphError` for unknown names."""
        if self._closed:
            raise ServiceError("service is shut down")
        entry = self.registry.get(graph_name)
        config = config or MatchConfig()
        request = MatchRequest(
            graph=graph_name,
            describe=config.describe(),
            timeout=self.default_timeout if timeout is None else timeout,
        )
        self._remember(request)

        def work(req: MatchRequest) -> None:
            self._execute(entry, config, req)

        return self.controller.submit(request, work)

    def _execute(
        self,
        entry: RegisteredGraph,
        config: MatchConfig,
        request: MatchRequest,
    ) -> None:
        """Run one admitted request on a worker thread."""
        before = entry.artifacts.cache_info()
        session = entry.new_session(config)
        session.on_progress(request.record_event)
        result = session.run()
        after = entry.artifacts.cache_info()
        entry.count_run()
        request.result = result
        delta = session.last_delta()
        store = self.registry.store
        request.provenance = {
            "request_id": request.id,
            "graph": entry.name,
            "queue_wait_seconds": request.queue_wait,
            "deadline_exceeded": (
                request.deadline is not None and time.time() > request.deadline
            ),
            "phase_timings": session.phase_timings(),
            # per-request build/hit deltas: under concurrency a racing
            # request may be the one paying a build this request benefits
            # from, so interpret these as "builds charged while this request
            # ran" — the per-graph cumulative counters are exact
            "builds_during_request": {
                "snapshot": after.snapshot_builds - before.snapshot_builds,
                "neighborhood_index": (
                    after.neighborhood_index_builds
                    - before.neighborhood_index_builds
                ),
                "candidates": after.candidate_builds - before.candidate_builds,
                "product_graph": (
                    after.product_graph_builds - before.product_graph_builds
                ),
            },
            "graph_cache": {
                "snapshot_builds": after.snapshot_builds,
                "store_hits": after.store_hits,
                "store_misses": after.store_misses,
            },
            "store": None if store is None else store.metrics(),
            "delta": (
                {"mode": "full", "reason": "service runs are stateless"}
                if delta is None
                else {"mode": delta.mode, "reason": delta.reason}
            ),
        }

    def _remember(self, request: MatchRequest) -> None:
        with self._requests_lock:
            self._requests[request.id] = request
            while len(self._requests) > self.max_requests:
                # evict the oldest *finished* request; never drop live ones
                for rid, candidate in self._requests.items():
                    if candidate.finished:
                        del self._requests[rid]
                        break
                else:
                    break

    def request(self, request_id: str) -> MatchRequest:
        with self._requests_lock:
            request = self._requests.get(request_id)
        if request is None:
            raise UnknownRequestError(
                f"unknown request {request_id!r} (finished requests are "
                f"evicted after {self.max_requests} newer submissions)"
            )
        return request

    def cancel(self, request_id: str) -> bool:
        return self.request(request_id).cancel()

    def requests(self) -> List[MatchRequest]:
        with self._requests_lock:
            return list(self._requests.values())

    # -- observability / lifecycle ------------------------------------------ #

    def metrics(self) -> Dict[str, object]:
        by_status: Dict[str, int] = {}
        for request in self.requests():
            by_status[request.status] = by_status.get(request.status, 0) + 1
        return {
            "uptime_seconds": time.time() - self.started_at,
            "admission": self.controller.metrics(),
            "registry": self.registry.metrics(),
            "requests": {
                "tracked": len(self._requests),
                "by_status": by_status,
            },
        }

    def close(self) -> None:
        self._closed = True
        self.controller.shutdown(wait=True)


# --------------------------------------------------------------------------- #
# HTTP layer
# --------------------------------------------------------------------------- #

#: Largest accepted request body (a graph DSL upload), in bytes.
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServiceHTTPHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs + paths onto a :class:`MatchingService`."""

    #: injected by :func:`make_http_server`
    service: MatchingService

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # quiet by default; /metrics is the observability surface

    # -- plumbing ----------------------------------------------------------- #

    def _send(self, code: int, payload: Dict[str, object], **headers: str) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name.replace("_", "-"), value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise WireError("request body required")
        if length > MAX_BODY_BYTES:
            raise WireError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except ValueError as error:
            raise WireError(f"unparseable JSON body: {error}") from error
        if not isinstance(payload, dict):
            raise WireError("request body must be a JSON object")
        return payload

    def _route(self, method: str) -> None:
        path, _, query = self.path.partition("?")
        parts = [part for part in path.split("/") if part]
        try:
            handled = self._dispatch(method, parts, query)
        except WireError as error:
            self._send(400, {"error": str(error)})
        except (UnknownGraphError, UnknownRequestError) as error:
            self._send(404, {"error": str(error)})
        except AdmissionError as error:
            self._send(429, {"error": str(error)}, Retry_After="1")
        except ReproError as error:
            self._send(500, {"error": str(error)})
        else:
            if not handled:
                self._send(404, {"error": f"no route for {method} {path}"})

    def _dispatch(self, method: str, parts: List[str], query: str) -> bool:
        service = self.service
        if method == "GET":
            if parts == ["healthz"]:
                self._send(
                    200,
                    {"ok": True, "uptime_seconds": time.time() - service.started_at},
                )
                return True
            if parts == ["algorithms"]:
                self._send(200, {"algorithms": wire.algorithm_catalog()})
                return True
            if parts == ["metrics"]:
                self._send(200, service.metrics())
                return True
            if parts == ["graphs"]:
                self._send(
                    200,
                    {"graphs": [e.describe() for e in service.registry.entries()]},
                )
                return True
            if len(parts) == 2 and parts[0] == "requests":
                request = service.request(parts[1])
                self._send(
                    200, wire.request_payload(request, include_result=True)
                )
                return True
            if len(parts) == 3 and parts[0] == "requests" and parts[2] == "result":
                request = service.request(parts[1])
                if request.status != "done":
                    self._send(
                        409,
                        {
                            "error": f"request {request.id} is {request.status}",
                            "status": request.status,
                        },
                    )
                    return True
                self._send(
                    200,
                    {
                        "id": request.id,
                        "result": request.result.to_dict(),
                        "provenance": dict(request.provenance),
                    },
                )
                return True
            if len(parts) == 3 and parts[0] == "requests" and parts[2] == "events":
                request = service.request(parts[1])
                cursor = _query_int(query, "cursor", 0)
                events, next_cursor = request.events_after(cursor)
                self._send(
                    200,
                    {
                        "id": request.id,
                        "status": request.status,
                        "events": events,
                        "next_cursor": next_cursor,
                        "dropped": request.events_dropped,
                    },
                )
                return True
            return False
        if method == "POST":
            if parts == ["graphs"]:
                payload = self._read_json()
                name, graph, keys, source, replace, warm = (
                    wire.parse_register_request(payload)
                )
                try:
                    entry = service.register_graph(
                        name, graph, keys,
                        source=source, replace=replace, warm=warm,
                    )
                except ServiceError as error:
                    self._send(409, {"error": str(error)})
                    return True
                self._send(201, {"registered": entry.describe()})
                return True
            if len(parts) == 3 and parts[0] == "graphs" and parts[2] == "ingest":
                entry = service.registry.get(parts[1])
                payload = self._read_json()
                ops, config, latency_budget, max_batch_ops = (
                    wire.parse_ingest_request(payload)
                )
                # runs on this HTTP thread: mutation windows of one graph
                # are serialized by the entry's ingest lock, and the
                # response must carry the window's own exact result
                try:
                    report, result = entry.ingest(
                        ops,
                        config=config,
                        latency_budget=latency_budget,
                        max_batch_ops=max_batch_ops,
                    )
                except IngestError as error:
                    self._send(400, {"error": str(error)})
                    return True
                self._send(
                    200,
                    {
                        "graph": entry.name,
                        "report": report.as_dict(),
                        "result": result.to_dict(),
                    },
                )
                return True
            if parts == ["match"]:
                payload = self._read_json()
                graph_name, config, wait, timeout = wire.parse_match_request(
                    payload
                )
                request = service.submit(graph_name, config, timeout=timeout)
                if wait:
                    # a synchronous waiter never parks an HTTP thread forever:
                    # on expiry the 200 carries the live status for polling
                    request.wait(600.0 if timeout is None else timeout)
                    self._send(
                        200, wire.request_payload(request, include_result=True)
                    )
                else:
                    self._send(202, wire.request_payload(request))
                return True
            return False
        if method == "DELETE":
            if len(parts) == 2 and parts[0] == "graphs":
                service.registry.unregister(parts[1])
                self._send(200, {"unregistered": parts[1]})
                return True
            if len(parts) == 2 and parts[0] == "requests":
                request = service.request(parts[1])
                cancelled = request.cancel()
                self._send(
                    200 if cancelled else 409,
                    {
                        "id": request.id,
                        "cancelled": cancelled,
                        "status": request.status,
                    },
                )
                return True
            return False
        return False

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._route("DELETE")


def _query_int(query: str, name: str, default: int) -> int:
    for pair in query.split("&"):
        key, _, raw = pair.partition("=")
        if key == name and raw:
            try:
                return int(raw)
            except ValueError:
                raise WireError(f"query parameter {name!r} expects an int, got {raw!r}")
    return default


def make_http_server(
    service: MatchingService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ThreadingHTTPServer:
    """An HTTP server bound to *service* (``port=0``: ephemeral port)."""
    handler = type(
        "BoundServiceHTTPHandler", (ServiceHTTPHandler,), {"service": service}
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve(
    service: MatchingService,
    host: str = "127.0.0.1",
    port: int = 8765,
) -> None:
    """Serve *service* forever (the ``repro serve`` entry point)."""
    server = make_http_server(service, host, port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.server_close()
        service.close()
