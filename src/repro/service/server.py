"""The ``repro serve`` front end: JSON-over-HTTP on a threading server.

:class:`MatchingService` is the transport-free orchestrator — register
graphs, submit requests through the admission controller, poll status,
scrape metrics — and the HTTP layer is a thin stdlib
``ThreadingHTTPServer`` handler on top (no third-party dependencies).

Endpoints::

    GET    /healthz                      liveness + uptime
    GET    /algorithms                   machine-readable backend catalog
    GET    /metrics                      admission + store + per-graph counters
    GET    /graphs                       registered graphs
    POST   /graphs                       register a named graph
    DELETE /graphs/<name>                unregister
    POST   /graphs/<name>/ingest         apply a mutation window, re-match in
                                         latency-budgeted incremental batches
    POST   /match                        submit a run (202, or wait=true)
    GET    /requests/<id>                poll one request's status
    GET    /requests/<id>/result         fetch the EMResult (409 until done)
    GET    /requests/<id>/events?cursor=N   poll the progress-event stream
    DELETE /requests/<id>                cancel (pre-start only)

Error mapping: :class:`~repro.exceptions.WireError` → 400, unknown graph /
request → 404, result-not-ready → 409, admission rejection → 429.  Every
429 carries a ``Retry-After`` header.

Threading model: one HTTP thread per connection (stdlib), submissions hop
onto the admission controller's fixed worker pool, and each worker drives a
throwaway per-request :class:`~repro.api.session.MatchSession` that shares
the named graph's :class:`~repro.api.session.SessionArtifacts` — so request
concurrency is bounded by ``max_inflight`` regardless of connection count,
and no graph's artifacts are ever built twice.
"""

from __future__ import annotations

import collections
import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple, Union

import os

from ..api.config import MatchConfig
from ..core.graph import Graph
from ..core.key import KeySet
from ..exceptions import (
    AdmissionError,
    ReproError,
    ServiceError,
    ServiceUnavailableError,
    UnknownGraphError,
    UnknownRequestError,
    WireError,
)
from ..storage.store import SnapshotStore
from .ingest import IngestError, IngestFlushError
from .queue import AdmissionController, MatchRequest
from .registry import GraphRegistry, RegisteredGraph
from . import wire


class MatchingService:
    """The service orchestrator: registry + admission control + requests."""

    def __init__(
        self,
        *,
        store: Union[None, str, "os.PathLike", SnapshotStore] = None,
        max_inflight: int = 4,
        max_queued: int = 16,
        default_timeout: Optional[float] = None,
        max_requests: int = 1024,
        wal_root: Union[None, str, "os.PathLike"] = None,
        wal_fsync: str = "batch",
        max_pending_ops: Optional[int] = None,
        drain_timeout: Optional[float] = None,
    ) -> None:
        self.registry = GraphRegistry(
            store=store,
            wal_root=wal_root,
            wal_fsync=wal_fsync,
            max_pending_ops=max_pending_ops,
        )
        self.controller = AdmissionController(
            max_inflight=max_inflight, max_queued=max_queued
        )
        #: queue-wait deadline applied when a request names none
        self.default_timeout = default_timeout
        #: how many finished requests the table remembers (oldest evicted)
        self.max_requests = max_requests
        #: seconds :meth:`drain` waits for queued work (``None``: 30s/worker)
        self.drain_timeout = drain_timeout
        self.started_at = time.time()
        self._requests: "collections.OrderedDict[str, MatchRequest]" = (
            collections.OrderedDict()
        )
        self._requests_lock = threading.Lock()
        self._closed = False
        # lifecycle: "serving" → "draining" → "drained" (close() from
        # "serving" goes straight to "closed")
        self._state = "serving"
        self._state_lock = threading.Lock()
        self.drain_started_at: Optional[float] = None
        self.drain_finished_at: Optional[float] = None
        self._drained_clean: Optional[bool] = None

    # -- graphs ------------------------------------------------------------- #

    def register_graph(
        self,
        name: str,
        graph: Graph,
        keys: KeySet,
        *,
        source: str = "api",
        replace: bool = False,
        warm: bool = False,
    ) -> RegisteredGraph:
        return self.registry.register(
            name, graph, keys, source=source, replace=replace, warm=warm
        )

    # -- requests ----------------------------------------------------------- #

    def submit(
        self,
        graph_name: str,
        config: Optional[MatchConfig] = None,
        *,
        timeout: Optional[float] = None,
    ) -> MatchRequest:
        """Admit one match request; raises
        :class:`~repro.exceptions.AdmissionError` when the queue is full and
        :class:`~repro.exceptions.UnknownGraphError` for unknown names."""
        self._check_admitting()
        entry = self.registry.get(graph_name)
        config = config or MatchConfig()
        request = MatchRequest(
            graph=graph_name,
            describe=config.describe(),
            timeout=self.default_timeout if timeout is None else timeout,
        )
        self._remember(request)

        def work(req: MatchRequest) -> None:
            self._execute(entry, config, req)

        return self.controller.submit(request, work)

    def _check_admitting(self) -> None:
        """Refuse new work while shut down or draining."""
        if self._closed:
            raise ServiceError("service is shut down")
        state = self._state
        if state != "serving":
            raise ServiceUnavailableError(
                f"service is {state}: queued work is finishing but new "
                f"requests are refused",
                retry_after=float(self.controller.retry_after_seconds()),
            )

    def ingest(
        self,
        graph_name: str,
        ops,
        *,
        config: Optional[MatchConfig] = None,
        latency_budget: float = 0.25,
        max_batch_ops: Optional[int] = None,
        max_pending_ops: Optional[int] = None,
    ):
        """Apply a mutation window against a registered graph.

        The service-level entry point the HTTP ingest endpoint uses: it
        enforces the lifecycle state (503 while draining) before delegating
        to :meth:`RegisteredGraph.ingest`, whose pending-window bound and
        WAL contract apply."""
        self._check_admitting()
        entry = self.registry.get(graph_name)
        return entry.ingest(
            ops,
            config=config,
            latency_budget=latency_budget,
            max_batch_ops=max_batch_ops,
            max_pending_ops=max_pending_ops,
        )

    def _execute(
        self,
        entry: RegisteredGraph,
        config: MatchConfig,
        request: MatchRequest,
    ) -> None:
        """Run one admitted request on a worker thread."""
        before = entry.artifacts.cache_info()
        session = entry.new_session(config)
        session.on_progress(request.record_event)
        result = session.run()
        after = entry.artifacts.cache_info()
        entry.count_run()
        request.result = result
        delta = session.last_delta()
        store = self.registry.store
        request.provenance = {
            "request_id": request.id,
            "graph": entry.name,
            "queue_wait_seconds": request.queue_wait,
            "deadline_exceeded": (
                request.deadline is not None and time.time() > request.deadline
            ),
            "phase_timings": session.phase_timings(),
            # per-request build/hit deltas: under concurrency a racing
            # request may be the one paying a build this request benefits
            # from, so interpret these as "builds charged while this request
            # ran" — the per-graph cumulative counters are exact
            "builds_during_request": {
                "snapshot": after.snapshot_builds - before.snapshot_builds,
                "neighborhood_index": (
                    after.neighborhood_index_builds
                    - before.neighborhood_index_builds
                ),
                "candidates": after.candidate_builds - before.candidate_builds,
                "product_graph": (
                    after.product_graph_builds - before.product_graph_builds
                ),
            },
            "graph_cache": {
                "snapshot_builds": after.snapshot_builds,
                "store_hits": after.store_hits,
                "store_misses": after.store_misses,
            },
            "store": None if store is None else store.metrics(),
            "delta": (
                {"mode": "full", "reason": "service runs are stateless"}
                if delta is None
                else {"mode": delta.mode, "reason": delta.reason}
            ),
        }

    def _remember(self, request: MatchRequest) -> None:
        with self._requests_lock:
            self._requests[request.id] = request
            while len(self._requests) > self.max_requests:
                # evict the oldest *finished* request; never drop live ones
                for rid, candidate in self._requests.items():
                    if candidate.finished:
                        del self._requests[rid]
                        break
                else:
                    break

    def request(self, request_id: str) -> MatchRequest:
        with self._requests_lock:
            request = self._requests.get(request_id)
        if request is None:
            raise UnknownRequestError(
                f"unknown request {request_id!r} (finished requests are "
                f"evicted after {self.max_requests} newer submissions)"
            )
        return request

    def cancel(self, request_id: str) -> bool:
        return self.request(request_id).cancel()

    def requests(self) -> List[MatchRequest]:
        with self._requests_lock:
            return list(self._requests.values())

    # -- observability / lifecycle ------------------------------------------ #

    def metrics(self) -> Dict[str, object]:
        by_status: Dict[str, int] = {}
        for request in self.requests():
            by_status[request.status] = by_status.get(request.status, 0) + 1
        with self._state_lock:
            lifecycle = {
                "state": self._state,
                "drain_started_at": self.drain_started_at,
                "drain_finished_at": self.drain_finished_at,
                "drained_clean": self._drained_clean,
            }
        return {
            "uptime_seconds": time.time() - self.started_at,
            "state": lifecycle,
            "admission": self.controller.metrics(),
            "registry": self.registry.metrics(),
            "requests": {
                "tracked": len(self._requests),
                "by_status": by_status,
            },
        }

    @property
    def state(self) -> str:
        return self._state

    def drain(self, timeout: Optional[float] = None) -> Dict[str, object]:
        """Graceful shutdown: refuse new work, finish everything admitted.

        Flips the service to ``draining`` (submissions and ingest windows
        get 503 + a measured ``Retry-After``), waits for the admission
        queue to empty and every worker to finish, lets in-flight ingest
        windows complete (closing a graph's journal takes its ingest lock),
        then closes every WAL and marks the service ``drained``.  Returns a
        summary dict; idempotent — a second call reports the first drain.
        """
        with self._state_lock:
            if self._state in ("draining", "drained"):
                return {
                    "state": self._state,
                    "drained_clean": self._drained_clean,
                    "elapsed_seconds": (
                        (self.drain_finished_at or time.time())
                        - (self.drain_started_at or time.time())
                    ),
                }
            self._state = "draining"
            self.drain_started_at = time.time()
        budget = self.drain_timeout if timeout is None else timeout
        drained = self.controller.drain(budget)
        # in-flight ingest windows run on HTTP threads, not the worker
        # pool: close_ingest() serializes on each graph's ingest lock, so
        # this both waits out live windows and closes their journals
        self.registry.close()
        with self._state_lock:
            self._state = "drained"
            self._drained_clean = drained
            self.drain_finished_at = time.time()
            return {
                "state": self._state,
                "drained_clean": drained,
                "elapsed_seconds": self.drain_finished_at - self.drain_started_at,
            }

    def close(self) -> None:
        self._closed = True
        with self._state_lock:
            if self._state == "serving":
                self._state = "closed"
        self.controller.shutdown(wait=True)
        self.registry.close()


# --------------------------------------------------------------------------- #
# HTTP layer
# --------------------------------------------------------------------------- #

#: Largest accepted request body (a graph DSL upload), in bytes.
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServiceHTTPHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs + paths onto a :class:`MatchingService`."""

    #: injected by :func:`make_http_server`
    service: MatchingService

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # quiet by default; /metrics is the observability surface

    # -- plumbing ----------------------------------------------------------- #

    def _discard_body(self) -> None:
        """Consume any unread request body before responding.

        HTTP/1.1 keep-alive reuses the connection for the next request: an
        early response (404 graph lookup, 429, 400) that leaves the body in
        ``rfile`` makes the next request line parse body bytes.  Bodies over
        the accepted cap are not slurped — the connection is closed instead.
        """
        remaining = self._body_remaining
        self._body_remaining = 0
        if remaining <= 0:
            return
        if remaining > MAX_BODY_BYTES:
            self.close_connection = True
            return
        while remaining > 0:
            chunk = self.rfile.read(min(65536, remaining))
            if not chunk:
                self.close_connection = True
                return
            remaining -= len(chunk)

    def _send(self, code: int, payload: Dict[str, object], **headers: str) -> None:
        self._discard_body()
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name.replace("_", "-"), value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise WireError("request body required")
        if length > MAX_BODY_BYTES:
            raise WireError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length)
        self._body_remaining = 0
        try:
            payload = json.loads(raw)
        except ValueError as error:
            raise WireError(f"unparseable JSON body: {error}") from error
        if not isinstance(payload, dict):
            raise WireError("request body must be a JSON object")
        return payload

    def _retry_after(self, error) -> str:
        """The ``Retry-After`` header value for a refusal: the exception's
        own measured estimate when it carries one, else the admission
        controller's queue-state derivation."""
        seconds = getattr(error, "retry_after", None)
        if seconds is None:
            seconds = self.service.controller.retry_after_seconds()
        return str(max(1, math.ceil(seconds)))

    def _route(self, method: str) -> None:
        path, _, query = self.path.partition("?")
        parts = [part for part in path.split("/") if part]
        try:
            self._body_remaining = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._body_remaining = 0
        try:
            handled = self._dispatch(method, parts, query)
        except WireError as error:
            self._send(400, {"error": str(error)})
        except (UnknownGraphError, UnknownRequestError) as error:
            self._send(404, {"error": str(error)})
        except ServiceUnavailableError as error:
            self._send(503, {"error": str(error)}, Retry_After=self._retry_after(error))
        except AdmissionError as error:
            self._send(429, {"error": str(error)}, Retry_After=self._retry_after(error))
        except IngestFlushError as error:
            report = error.report.as_dict() if error.report is not None else None
            self._send(
                500,
                {"error": str(error), "report": report, "recoverable": True},
            )
        except ReproError as error:
            self._send(500, {"error": str(error)})
        else:
            if not handled:
                self._send(404, {"error": f"no route for {method} {path}"})

    def _dispatch(self, method: str, parts: List[str], query: str) -> bool:
        service = self.service
        if method == "GET":
            if parts == ["healthz"]:
                self._send(
                    200,
                    {
                        "ok": True,
                        "state": service.state,
                        "uptime_seconds": time.time() - service.started_at,
                    },
                )
                return True
            if parts == ["algorithms"]:
                self._send(200, {"algorithms": wire.algorithm_catalog()})
                return True
            if parts == ["metrics"]:
                self._send(200, service.metrics())
                return True
            if parts == ["graphs"]:
                self._send(
                    200,
                    {"graphs": [e.describe() for e in service.registry.entries()]},
                )
                return True
            if len(parts) == 2 and parts[0] == "requests":
                request = service.request(parts[1])
                self._send(
                    200, wire.request_payload(request, include_result=True)
                )
                return True
            if len(parts) == 3 and parts[0] == "requests" and parts[2] == "result":
                request = service.request(parts[1])
                if request.status != "done":
                    self._send(
                        409,
                        {
                            "error": f"request {request.id} is {request.status}",
                            "status": request.status,
                        },
                    )
                    return True
                self._send(
                    200,
                    {
                        "id": request.id,
                        "result": request.result.to_dict(),
                        "provenance": dict(request.provenance),
                    },
                )
                return True
            if len(parts) == 3 and parts[0] == "requests" and parts[2] == "events":
                request = service.request(parts[1])
                cursor = _query_int(query, "cursor", 0)
                events, next_cursor = request.events_after(cursor)
                self._send(
                    200,
                    {
                        "id": request.id,
                        "status": request.status,
                        "events": events,
                        "next_cursor": next_cursor,
                        "dropped": request.events_dropped,
                    },
                )
                return True
            return False
        if method == "POST":
            if parts == ["graphs"]:
                payload = self._read_json()
                name, graph, keys, source, replace, warm = (
                    wire.parse_register_request(payload)
                )
                try:
                    entry = service.register_graph(
                        name, graph, keys,
                        source=source, replace=replace, warm=warm,
                    )
                except ServiceError as error:
                    self._send(409, {"error": str(error)})
                    return True
                self._send(201, {"registered": entry.describe()})
                return True
            if len(parts) == 3 and parts[0] == "graphs" and parts[2] == "ingest":
                # body first: resolving the graph before reading would leave
                # the body in rfile on a 404, corrupting the next request on
                # this keep-alive connection
                payload = self._read_json()
                ops, config, latency_budget, max_batch_ops, max_pending_ops = (
                    wire.parse_ingest_request(payload)
                )
                # runs on this HTTP thread: mutation windows of one graph
                # are serialized by the entry's ingest lock, and the
                # response must carry the window's own exact result
                try:
                    report, result = service.ingest(
                        parts[1],
                        ops,
                        config=config,
                        latency_budget=latency_budget,
                        max_batch_ops=max_batch_ops,
                        max_pending_ops=max_pending_ops,
                    )
                except IngestFlushError:
                    raise  # _route maps it to a 500 with the partial report
                except IngestError as error:
                    self._send(400, {"error": str(error)})
                    return True
                self._send(
                    200,
                    {
                        "graph": parts[1],
                        "report": report.as_dict(),
                        "result": result.to_dict(),
                    },
                )
                return True
            if parts == ["match"]:
                payload = self._read_json()
                graph_name, config, wait, timeout = wire.parse_match_request(
                    payload
                )
                request = service.submit(graph_name, config, timeout=timeout)
                if wait:
                    # a synchronous waiter never parks an HTTP thread forever:
                    # on expiry the 200 carries the live status for polling
                    request.wait(600.0 if timeout is None else timeout)
                    self._send(
                        200, wire.request_payload(request, include_result=True)
                    )
                else:
                    self._send(202, wire.request_payload(request))
                return True
            return False
        if method == "DELETE":
            if len(parts) == 2 and parts[0] == "graphs":
                service.registry.unregister(parts[1])
                self._send(200, {"unregistered": parts[1]})
                return True
            if len(parts) == 2 and parts[0] == "requests":
                request = service.request(parts[1])
                cancelled = request.cancel()
                self._send(
                    200 if cancelled else 409,
                    {
                        "id": request.id,
                        "cancelled": cancelled,
                        "status": request.status,
                    },
                )
                return True
            return False
        return False

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._route("DELETE")


def _query_int(query: str, name: str, default: int) -> int:
    for pair in query.split("&"):
        key, _, raw = pair.partition("=")
        if key == name and raw:
            try:
                return int(raw)
            except ValueError:
                raise WireError(f"query parameter {name!r} expects an int, got {raw!r}")
    return default


def make_http_server(
    service: MatchingService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ThreadingHTTPServer:
    """An HTTP server bound to *service* (``port=0``: ephemeral port)."""
    handler = type(
        "BoundServiceHTTPHandler", (ServiceHTTPHandler,), {"service": service}
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def _drain_and_stop(
    service: MatchingService,
    server: ThreadingHTTPServer,
    timeout: Optional[float],
) -> None:
    try:
        service.drain(timeout)
    finally:
        server.shutdown()


def install_drain_handlers(
    service: MatchingService,
    server: ThreadingHTTPServer,
    timeout: Optional[float] = None,
) -> bool:
    """SIGTERM → graceful drain, then stop the accept loop.

    Only installable from the main thread (the signal module's rule); the
    handler must not call ``server.shutdown()`` synchronously — that
    deadlocks against the ``serve_forever`` loop running in the very thread
    the signal interrupted — so it hands the drain to a helper thread and
    returns immediately, letting ``serve_forever`` keep answering (503)
    until the drain finishes.
    """
    import signal

    if threading.current_thread() is not threading.main_thread():
        return False

    def handle(signum, frame):  # pragma: no cover - exercised via subprocess
        thread = threading.Thread(
            target=_drain_and_stop,
            args=(service, server, timeout),
            name="repro-serve-drain",
            daemon=True,
        )
        thread.start()

    signal.signal(signal.SIGTERM, handle)
    return True


def serve(
    service: MatchingService,
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    drain_timeout: Optional[float] = None,
) -> Dict[str, object]:
    """Serve *service* until SIGTERM / Ctrl-C (the ``repro serve`` entry).

    Both stop paths drain gracefully: in-flight and queued requests finish,
    new ones get 503 + a measured ``Retry-After``, ingest journals are
    checkpointed and closed.  Returns the final metrics scrape (printed by
    ``repro serve --profile``).
    """
    server = make_http_server(service, host, port)
    install_drain_handlers(service, server, drain_timeout)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        service.drain(drain_timeout)
    finally:
        server.server_close()
        service.drain(drain_timeout)
        final = service.metrics()
        service.close()
    return final
