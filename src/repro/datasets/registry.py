"""Dataset registry: one lookup for every named workload.

The CLI's ``generate`` and ``bench`` commands (and the benchmark harness)
resolve dataset names here instead of duplicating per-dataset construction
branches.  Each :class:`DatasetSpec` declares which generator parameters the
workload accepts, so callers can pass a superset of knobs (``scale``,
``chain_length``, ``radius``, ``num_keys``, ...) and the registry forwards
only the accepted ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..core.graph import Graph
from ..core.key import KeySet
from ..exceptions import DatasetError
from .knowledge import knowledge_dataset
from .music import music_dataset
from .social import social_dataset
from .synthetic import synthetic_dataset


@dataclass(frozen=True)
class DatasetSpec:
    """A named workload: its factory and the generator knobs it accepts."""

    name: str
    factory: Callable[..., object]
    parameters: Tuple[str, ...]
    description: str

    def build(self, **parameters: object) -> Tuple[Graph, KeySet]:
        """Instantiate the workload, ignoring parameters it does not accept."""
        accepted = {k: v for k, v in parameters.items() if k in self.parameters}
        dataset = self.factory(**accepted)
        if isinstance(dataset, tuple):
            graph, keys = dataset
            return graph, keys
        return dataset.graph, dataset.keys


_GENERATOR_PARAMS = ("scale", "chain_length", "radius", "duplicate_fraction", "seed")

#: Name → spec for every registered workload (insertion-ordered).
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="synthetic",
            factory=synthetic_dataset,
            parameters=("num_keys", "entities_per_type") + _GENERATOR_PARAMS,
            description="schema-driven synthetic generator (Exp-1..3 workload)",
        ),
        DatasetSpec(
            name="social",
            factory=social_dataset,
            parameters=_GENERATOR_PARAMS,
            description="Google+-like social-attribute network with planted duplicates",
        ),
        DatasetSpec(
            name="knowledge",
            factory=knowledge_dataset,
            parameters=_GENERATOR_PARAMS,
            description="DBpedia-like knowledge base with planted duplicates",
        ),
        DatasetSpec(
            name="music",
            factory=music_dataset,
            parameters=(),
            description="the paper's music example (G1, Σ1 of Figs. 1-2; fixed size)",
        ),
    )
}


def dataset_spec(name: str) -> DatasetSpec:
    """Resolve *name* in the registry, raising :class:`DatasetError` if unknown."""
    spec = DATASETS.get(name)
    if spec is None:
        raise DatasetError(
            f"unknown dataset {name!r}; expected one of {', '.join(DATASETS)}"
        )
    return spec


def make_dataset(name: str, **parameters: object) -> Tuple[Graph, KeySet]:
    """Build the workload *name* with the accepted subset of *parameters*."""
    return dataset_spec(name).build(**parameters)


def dataset_factory(name: str) -> Callable[..., Tuple[Graph, KeySet]]:
    """A ``(graph, keys)`` factory for *name*, e.g. for the sweep harness."""
    spec = dataset_spec(name)
    return spec.build
