"""A DBpedia-like knowledge base (the "DBpedia" workload).

The paper's DBpedia workload is the 2014 dump (4.3M nodes, 40.3M links,
495 entity types) with 100 constructed keys, three of which are shown in
Fig. 7: a book identified by its name, cover artist and publisher; a company
identified by its name, its CEO's name and its parent company; an artist
identified by its name, birth date and birth place.  The dump is too large
for a pure-Python isomorphism engine, so this module generates a
laptop-scale knowledge base with the same shape:

* a chain of entity types ``book → artist → location → country → continent``
  walked by recursively defined keys (the ``c`` knob);
* a provenance/locator path ending in a catalogue identifier (the ``d`` knob);
* flavour edges (citations, influences, awards) that no key mentions;
* planted duplicate entities at every level — the knowledge-fusion ground
  truth.

``knowledge_dataset(scale, chain_length, radius, seed)`` feeds the
benchmarks; :func:`fig7_keys` provides hand-written keys mirroring Fig. 7 for
the knowledge-fusion example.
"""

from __future__ import annotations

from ..core.key import Key, KeySet
from ..core.pattern import (
    GraphPattern,
    PatternTriple,
    designated,
    entity_var,
    value_var,
    wildcard,
)
from .domain_base import (
    NAME_OF,
    DomainDataset,
    DomainSpec,
    LevelSpec,
    LocatorSpec,
    build_domain_dataset,
    domain_keys,
)

#: Entity types of the knowledge domain.
BOOK = "book"
ARTIST = "artist"
COMPANY = "company"
PERSON = "person"
LOCATION = "location"
COUNTRY = "country"
CONTINENT = "continent"

#: Predicates of the knowledge domain.
COVER_ARTIST = "cover_artist"
PUBLISHER = "publisher"
PARENT_COMPANY = "parent_company"
CEO = "ceo"
BIRTH_PLACE = "birth_place"
BIRTH_DATE = "birth_date"
IN_COUNTRY = "in_country"
ON_CONTINENT = "on_continent"
CATALOGUE_ID = "catalogue_id"
CITES = "cites"
INFLUENCED = "influenced"
AWARDED_WITH = "awarded_with"

#: The knowledge domain: a 5-level chain and a 5-hop-capable locator path.
KNOWLEDGE_SPEC = DomainSpec(
    name="dbpedia",
    levels=(
        LevelSpec(BOOK, COVER_ARTIST, population=20),
        LevelSpec(ARTIST, BIRTH_PLACE, population=14),
        LevelSpec(LOCATION, IN_COUNTRY, population=10),
        LevelSpec(COUNTRY, ON_CONTINENT, population=6),
        LevelSpec(CONTINENT, "adjacent_to", population=3),
    ),
    locator=LocatorSpec(
        hops=(
            (BIRTH_PLACE, LOCATION),
            (IN_COUNTRY, COUNTRY),
            (ON_CONTINENT, CONTINENT),
            ("adjacent_to", CONTINENT),
        ),
        value_predicate=CATALOGUE_ID,
    ),
    flavour_predicates=(CITES, INFLUENCED, AWARDED_WITH),
    flavour_edges_per_entity=0.8,
)


def knowledge_dataset(
    scale: float = 1.0,
    chain_length: int = 2,
    radius: int = 2,
    duplicate_fraction: float = 0.25,
    seed: int = 23,
) -> DomainDataset:
    """Generate the DBpedia-like workload (``c`` = chain_length, ``d`` = radius)."""
    return build_domain_dataset(
        KNOWLEDGE_SPEC,
        chain_length=chain_length,
        radius=radius,
        scale=scale,
        duplicate_fraction=duplicate_fraction,
        seed=seed,
    )


def knowledge_keys(chain_length: int = 2, radius: int = 2) -> KeySet:
    """The generated key set used by :func:`knowledge_dataset`."""
    return domain_keys(KNOWLEDGE_SPEC, chain_length, radius)


# ---------------------------------------------------------------------- #
# the three keys of Fig. 7, hand-written for the knowledge-fusion example
# ---------------------------------------------------------------------- #


def key_book_fig7() -> Key:
    """A book is identified by its name, its cover artist and its publisher company."""
    x = designated("x", BOOK)
    pattern = GraphPattern(
        [
            PatternTriple(x, NAME_OF, value_var("name")),
            PatternTriple(x, COVER_ARTIST, entity_var("artist", ARTIST)),
            PatternTriple(x, PUBLISHER, entity_var("company", COMPANY)),
        ],
        name="book_by_artist_and_publisher",
    )
    return Key(pattern, name="book_by_artist_and_publisher")


def key_company_fig7() -> Key:
    """A company is identified by its name, its CEO's name and its parent company."""
    x = designated("x", COMPANY)
    ceo = wildcard("ceo", PERSON)
    pattern = GraphPattern(
        [
            PatternTriple(x, NAME_OF, value_var("name1")),
            PatternTriple(ceo, CEO, x),
            PatternTriple(ceo, NAME_OF, value_var("name2")),
            PatternTriple(x, PARENT_COMPANY, entity_var("parent", COMPANY)),
        ],
        name="company_by_ceo_and_parent",
    )
    return Key(pattern, name="company_by_ceo_and_parent")


def key_artist_fig7() -> Key:
    """An artist is identified by its name, birth date and (identified) birth place."""
    x = designated("x", ARTIST)
    place = entity_var("place", LOCATION)
    pattern = GraphPattern(
        [
            PatternTriple(x, NAME_OF, value_var("name1")),
            PatternTriple(x, BIRTH_DATE, value_var("date")),
            PatternTriple(x, BIRTH_PLACE, place),
            PatternTriple(place, NAME_OF, value_var("name2")),
        ],
        name="artist_by_birth",
    )
    return Key(pattern, name="artist_by_birth")


def key_location_value_based() -> Key:
    """A location is identified by its name and catalogue id (value-based anchor)."""
    x = designated("x", LOCATION)
    pattern = GraphPattern(
        [
            PatternTriple(x, NAME_OF, value_var("name")),
            PatternTriple(x, CATALOGUE_ID, value_var("cat")),
        ],
        name="location_by_catalogue",
    )
    return Key(pattern, name="location_by_catalogue")


def fig7_keys() -> KeySet:
    """The Fig. 7 keys plus a value-based anchor key for locations."""
    return KeySet(
        [key_book_fig7(), key_company_fig7(), key_artist_fig7(), key_location_value_based()]
    )


def fusion_example_graph():
    """A small hand-built knowledge-fusion scenario exercising the Fig. 7 keys.

    Two sources contributed overlapping descriptions of the same artist, the
    same birth place and the same book; the companies differ only by their
    parent company.  Returns ``(graph, keys, expected_pairs)``.
    """
    from ..core.graph import Graph

    graph = Graph()
    # locations (duplicated across sources)
    graph.add_entity("loc_edinburgh_a", LOCATION)
    graph.add_entity("loc_edinburgh_b", LOCATION)
    graph.add_entity("loc_glasgow", LOCATION)
    for loc, name, cat in (
        ("loc_edinburgh_a", "Edinburgh", "GB-EDH"),
        ("loc_edinburgh_b", "Edinburgh", "GB-EDH"),
        ("loc_glasgow", "Glasgow", "GB-GLG"),
    ):
        graph.add_value(loc, NAME_OF, name)
        graph.add_value(loc, CATALOGUE_ID, cat)

    # artists born there (duplicated across sources)
    graph.add_entity("artist_a", ARTIST)
    graph.add_entity("artist_b", ARTIST)
    graph.add_entity("artist_other", ARTIST)
    for artist, name, date, place in (
        ("artist_a", "J. Painter", "1970-01-01", "loc_edinburgh_a"),
        ("artist_b", "J. Painter", "1970-01-01", "loc_edinburgh_b"),
        ("artist_other", "J. Painter", "1980-05-05", "loc_glasgow"),
    ):
        graph.add_value(artist, NAME_OF, name)
        graph.add_value(artist, BIRTH_DATE, date)
        graph.add_edge(artist, BIRTH_PLACE, place)

    # publishers: same name, same CEO name, same parent → duplicates
    graph.add_entity("pub_a", COMPANY)
    graph.add_entity("pub_b", COMPANY)
    graph.add_entity("pub_parent", COMPANY)
    graph.add_entity("ceo_1", PERSON)
    graph.add_entity("ceo_2", PERSON)
    graph.add_value("pub_a", NAME_OF, "Old Town Press")
    graph.add_value("pub_b", NAME_OF, "Old Town Press")
    graph.add_value("pub_parent", NAME_OF, "Holding House")
    graph.add_value("ceo_1", NAME_OF, "A. Chief")
    graph.add_value("ceo_2", NAME_OF, "A. Chief")
    graph.add_edge("ceo_1", CEO, "pub_a")
    graph.add_edge("ceo_2", CEO, "pub_b")
    graph.add_edge("pub_a", PARENT_COMPANY, "pub_parent")
    graph.add_edge("pub_b", PARENT_COMPANY, "pub_parent")

    # books by the duplicated artist at the duplicated publisher
    graph.add_entity("book_a", BOOK)
    graph.add_entity("book_b", BOOK)
    graph.add_value("book_a", NAME_OF, "Views of the Castle")
    graph.add_value("book_b", NAME_OF, "Views of the Castle")
    graph.add_edge("book_a", COVER_ARTIST, "artist_a")
    graph.add_edge("book_b", COVER_ARTIST, "artist_b")
    graph.add_edge("book_a", PUBLISHER, "pub_a")
    graph.add_edge("book_b", PUBLISHER, "pub_b")

    expected = {
        ("loc_edinburgh_a", "loc_edinburgh_b"),
        ("artist_a", "artist_b"),
        ("pub_a", "pub_b"),
        ("book_a", "book_b"),
    }
    return graph, fig7_keys(), expected
