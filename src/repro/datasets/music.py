"""The music knowledge-graph example of the paper (Example 1, Fig. 1–2, G1).

The graph ``G1`` contains three album entities and three artist entities:

* ``alb1`` and ``alb2`` are both called "Anthology 2" and initially released
  in 1996, but only ``alb1`` has a ``recorded_by`` edge (to ``art1``);
* ``alb3`` is a different "Anthology 2" (by John Farnham, ``art3``);
* ``art1`` and ``art2`` are both called "The Beatles"; ``art2`` recorded
  ``alb2``.

With the keys

* ``Q1`` — an album is identified by its name and its recording artist,
* ``Q2`` — an album is identified by its name and its year of initial release,
* ``Q3`` — an artist is identified by its name and an album he or she recorded,

the chase identifies ``(alb1, alb2)`` by ``Q2`` and then ``(art1, art2)`` by
the recursively defined ``Q3`` (Example 7 of the paper).
"""

from __future__ import annotations

from typing import Tuple

from ..core.graph import Graph
from ..core.key import Key, KeySet
from ..core.pattern import (
    GraphPattern,
    PatternTriple,
    designated,
    entity_var,
    value_var,
)

#: Predicates used by the music example.
NAME_OF = "name_of"
RELEASE_YEAR = "release_year"
RECORDED_BY = "recorded_by"

#: Entity types used by the music example.
ALBUM = "album"
ARTIST = "artist"


def music_graph() -> Graph:
    """Build the graph fragment ``G1`` of Fig. 2."""
    graph = Graph()
    for album in ("alb1", "alb2", "alb3"):
        graph.add_entity(album, ALBUM)
    for artist in ("art1", "art2", "art3"):
        graph.add_entity(artist, ARTIST)

    graph.add_value("alb1", NAME_OF, "Anthology 2")
    graph.add_value("alb2", NAME_OF, "Anthology 2")
    graph.add_value("alb3", NAME_OF, "Anthology 2")
    graph.add_value("alb1", RELEASE_YEAR, "1996")
    graph.add_value("alb2", RELEASE_YEAR, "1996")
    graph.add_value("alb3", RELEASE_YEAR, "1997")

    graph.add_value("art1", NAME_OF, "The Beatles")
    graph.add_value("art2", NAME_OF, "The Beatles")
    graph.add_value("art3", NAME_OF, "John Farnham")

    graph.add_edge("alb1", RECORDED_BY, "art1")
    graph.add_edge("alb2", RECORDED_BY, "art2")
    graph.add_edge("alb3", RECORDED_BY, "art3")
    return graph


def key_q1() -> Key:
    """``Q1``: an album is identified by its name and its recording artist."""
    x = designated("x", ALBUM)
    name = value_var("name")
    artist = entity_var("artist1", ARTIST)
    pattern = GraphPattern(
        [
            PatternTriple(x, NAME_OF, name),
            PatternTriple(x, RECORDED_BY, artist),
        ],
        name="Q1",
    )
    return Key(pattern, name="Q1")


def key_q2() -> Key:
    """``Q2``: an album is identified by its name and release year (value-based)."""
    x = designated("x", ALBUM)
    name = value_var("name")
    year = value_var("year")
    pattern = GraphPattern(
        [
            PatternTriple(x, NAME_OF, name),
            PatternTriple(x, RELEASE_YEAR, year),
        ],
        name="Q2",
    )
    return Key(pattern, name="Q2")


def key_q3() -> Key:
    """``Q3``: an artist is identified by its name and an album it recorded."""
    x = designated("x", ARTIST)
    name = value_var("name")
    album = entity_var("album1", ALBUM)
    pattern = GraphPattern(
        [
            PatternTriple(x, NAME_OF, name),
            PatternTriple(album, RECORDED_BY, x),
        ],
        name="Q3",
    )
    return Key(pattern, name="Q3")


def music_keys() -> KeySet:
    """The key set ``Σ1 = {Q1, Q2, Q3}`` of Example 7."""
    return KeySet([key_q1(), key_q2(), key_q3()])


def music_dataset() -> Tuple[Graph, KeySet]:
    """The (graph, keys) pair of the music example."""
    return music_graph(), music_keys()


#: Pairs the chase must identify on this dataset (Example 7 of the paper).
EXPECTED_IDENTIFIED_PAIRS = frozenset({("alb1", "alb2"), ("art1", "art2")})
