"""Shared machinery for the domain-flavoured dataset generators.

The Google+-like (:mod:`repro.datasets.social`) and DBpedia-like
(:mod:`repro.datasets.knowledge`) generators both need the same ingredients
the paper's experiments rely on:

* a *chain* of entity types (e.g. ``user → university → city → region``)
  whose keys are recursively defined along the chain — this realises the
  dependency-chain length ``c`` of Exp-3;
* a *locator path* of wildcard hops ending in a value — this realises the key
  radius ``d`` of Exp-3;
* planted duplicates at every chain level, where the duplicate of a level-i
  entity references the duplicate of its level-(i+1) entity, so recursive
  keys have real work to do;
* extra domain-specific "flavour" edges (friendships, publications, …) that
  no key mentions, providing the distractors that the pairing filter and the
  neighbourhood reduction prune away.

A :class:`DomainSpec` describes the domain; :func:`build_domain_dataset`
produces the graph, keys and ground-truth planted pairs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.equivalence import Pair, canonical_pair
from ..core.graph import Graph
from ..core.key import Key, KeySet
from ..core.pattern import (
    GraphPattern,
    PatternTriple,
    designated,
    entity_var,
    value_var,
    wildcard,
)
from ..exceptions import DatasetError

#: Predicate used for the "name" value of every domain entity.
NAME_OF = "name_of"


@dataclass(frozen=True)
class LevelSpec:
    """One level of a domain chain."""

    etype: str
    #: predicate linking this level to the next (ignored for the last level)
    ref_predicate: str
    #: how many entities this level has per scale unit
    population: int


@dataclass(frozen=True)
class LocatorSpec:
    """The locator path shared by all keys of a domain (controls the radius)."""

    #: (predicate, wildcard entity type) per hop; length ``d − 1`` hops are used
    hops: Tuple[Tuple[str, str], ...]
    #: predicate of the final value
    value_predicate: str


@dataclass(frozen=True)
class DomainSpec:
    """A complete description of a domain-flavoured dataset."""

    name: str
    levels: Tuple[LevelSpec, ...]
    locator: LocatorSpec
    #: extra predicates used for flavour edges between random entities
    flavour_predicates: Tuple[str, ...] = ()
    flavour_edges_per_entity: float = 0.5

    def max_chain_length(self) -> int:
        return len(self.levels)

    def max_radius(self) -> int:
        return len(self.locator.hops) + 1


@dataclass
class DomainDataset:
    """Graph, keys and ground truth of a generated domain dataset."""

    name: str
    graph: Graph
    keys: KeySet
    planted_pairs: Set[Pair] = field(default_factory=set)

    def summary(self) -> Dict[str, int]:
        summary = dict(self.graph.stats())
        summary["keys"] = self.keys.cardinality
        summary["planted_pairs"] = len(self.planted_pairs)
        return summary


# ---------------------------------------------------------------------- #
# key construction
# ---------------------------------------------------------------------- #


def _locator_triples(spec: DomainSpec, radius: int, x) -> List[PatternTriple]:
    triples: List[PatternTriple] = []
    current = x
    for hop_index in range(radius - 1):
        predicate, wildcard_type = spec.locator.hops[hop_index]
        nxt = wildcard(f"w{hop_index + 1}", wildcard_type)
        triples.append(PatternTriple(current, predicate, nxt))
        current = nxt
    triples.append(PatternTriple(current, spec.locator.value_predicate, value_var("locator")))
    return triples


def domain_keys(spec: DomainSpec, chain_length: int, radius: int) -> KeySet:
    """The keys of *spec* for the requested ``c`` and ``d``.

    Level ``i < c`` gets a recursive key (name + locator + next-level entity
    variable); level ``c`` gets a value-based key (name + locator).
    """
    if not 1 <= chain_length <= spec.max_chain_length():
        raise DatasetError(
            f"{spec.name}: chain_length must be in [1, {spec.max_chain_length()}], "
            f"got {chain_length}"
        )
    if not 1 <= radius <= spec.max_radius():
        raise DatasetError(
            f"{spec.name}: radius must be in [1, {spec.max_radius()}], got {radius}"
        )
    keys = KeySet()
    for index in range(chain_length):
        level = spec.levels[index]
        x = designated("x", level.etype)
        triples = [PatternTriple(x, NAME_OF, value_var("name"))]
        triples.extend(_locator_triples(spec, radius, x))
        if index < chain_length - 1:
            next_level = spec.levels[index + 1]
            triples.append(
                PatternTriple(x, level.ref_predicate, entity_var("nxt", next_level.etype))
            )
        name = f"{spec.name}_{level.etype}_key"
        keys.add(Key(GraphPattern(triples, name=name), name=name))
    return keys


# ---------------------------------------------------------------------- #
# graph construction
# ---------------------------------------------------------------------- #


def build_domain_dataset(
    spec: DomainSpec,
    chain_length: int = 2,
    radius: int = 2,
    scale: float = 1.0,
    duplicate_fraction: float = 0.25,
    seed: int = 11,
    name_vocabulary: Optional[Callable[[str, int], str]] = None,
) -> DomainDataset:
    """Generate a domain dataset with planted duplicate entities.

    ``name_vocabulary(etype, index)`` produces the display name of an entity;
    duplicates reuse the name of their original so name-based keys can match.
    """
    if scale <= 0:
        raise DatasetError("scale must be positive")
    if not 0.0 <= duplicate_fraction <= 1.0:
        raise DatasetError("duplicate_fraction must be in [0, 1]")
    rng = random.Random(seed)
    graph = Graph()
    keys = domain_keys(spec, chain_length, radius)
    planted: Set[Pair] = set()
    vocabulary = name_vocabulary or (lambda etype, index: f"{etype} #{index}")

    levels = spec.levels[:chain_length]
    ids_per_level: List[List[str]] = []
    duplicate_ids_per_level: List[Dict[int, str]] = []

    # entities, names and locator paths
    for level_index, level in enumerate(levels):
        population = max(2, int(round(level.population * scale)))
        num_duplicates = max(1, int(round(population * duplicate_fraction)))
        ids: List[str] = []
        duplicates: Dict[int, str] = {}
        for index in range(population):
            eid = f"{spec.name}_{level.etype}_{index}"
            graph.add_entity(eid, level.etype)
            graph.add_value(eid, NAME_OF, vocabulary(level.etype, index))
            _attach_locator(graph, spec, radius, level.etype, index, eid, shared_with=None)
            ids.append(eid)
            if index < num_duplicates:
                dup = f"{eid}_dup"
                graph.add_entity(dup, level.etype)
                graph.add_value(dup, NAME_OF, vocabulary(level.etype, index))
                _attach_locator(graph, spec, radius, level.etype, index, dup, shared_with=eid)
                duplicates[index] = dup
                planted.add(canonical_pair(eid, dup))
        ids_per_level.append(ids)
        duplicate_ids_per_level.append(duplicates)

    # chain edges; duplicates reference duplicates so dependencies are real
    for level_index in range(len(levels) - 1):
        level = levels[level_index]
        next_ids = ids_per_level[level_index + 1]
        next_duplicates = duplicate_ids_per_level[level_index + 1]
        for index, eid in enumerate(ids_per_level[level_index]):
            target_index = index % len(next_ids)
            graph.add_edge(eid, level.ref_predicate, next_ids[target_index])
            dup = duplicate_ids_per_level[level_index].get(index)
            if dup is not None:
                dup_target = next_duplicates.get(target_index)
                if dup_target is None:
                    # no duplicate exists downstream: reference the original,
                    # the pair is then identifiable once (t, t) ∈ Eq trivially
                    dup_target = next_ids[target_index]
                graph.add_edge(dup, level.ref_predicate, dup_target)

    _add_flavour_edges(graph, rng, spec, ids_per_level)
    return DomainDataset(name=spec.name, graph=graph, keys=keys, planted_pairs=planted)


def _attach_locator(
    graph: Graph,
    spec: DomainSpec,
    radius: int,
    etype: str,
    index: int,
    eid: str,
    shared_with: Optional[str],
) -> None:
    """Attach the locator path (length ``radius``) to *eid*.

    Duplicates (``shared_with`` set) link into the original's first hop entity
    so both sides reach the same locator value.
    """
    if radius == 1:
        graph.add_value(eid, spec.locator.value_predicate, f"{spec.name}_loc_{etype}_{index}")
        return
    previous = eid
    for hop_index in range(radius - 1):
        predicate, wildcard_type = spec.locator.hops[hop_index]
        hop_id = f"{spec.name}_{etype}_{index}_hop{hop_index + 1}"
        graph.add_entity(hop_id, wildcard_type)
        graph.add_edge(previous, predicate, hop_id)
        previous = hop_id
        if shared_with is not None:
            return  # the shared path continues from the original's hop entity
    graph.add_value(previous, spec.locator.value_predicate, f"{spec.name}_loc_{etype}_{index}")


def _add_flavour_edges(
    graph: Graph,
    rng: random.Random,
    spec: DomainSpec,
    ids_per_level: Sequence[Sequence[str]],
) -> None:
    """Random domain-flavour edges that no key mentions (distractors)."""
    if not spec.flavour_predicates:
        return
    all_ids = [eid for ids in ids_per_level for eid in ids]
    if len(all_ids) < 2:
        return
    num_edges = int(len(all_ids) * spec.flavour_edges_per_entity)
    for _ in range(num_edges):
        source = rng.choice(all_ids)
        target = rng.choice(all_ids)
        if source == target:
            continue
        graph.add_edge(source, rng.choice(list(spec.flavour_predicates)), target)
