"""Monotone-circuit reduction: the construction behind Theorem 4.

Theorem 4 shows that entity matching cannot be parallelised in logarithmic
rounds by reducing the Monotone Circuit Value problem to it: for every gate
``l`` of a monotone Boolean circuit there is a pair of entities ``(e_l, e'_l)``
that is identified by the constructed keys iff the gate evaluates to true.

This module implements that construction concretely:

* every gate gets its own entity type and a pair of entities;
* an **input** gate's pair shares a tag value iff the input is true, and a
  value-based key identifies pairs of that type by the tag;
* an **AND** gate's key has two entity variables — one per input — so its
  pair is identified only after *both* input pairs are;
* an **OR** gate has two keys, one per input.

Besides serving as a test of the theory (the chase must agree with direct
circuit evaluation), deep circuits are a convenient way to build workloads
with very long dependency chains for the ``c``-sweep ablations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.equivalence import Pair, canonical_pair
from ..core.graph import Graph
from ..core.key import Key, KeySet
from ..core.pattern import (
    GraphPattern,
    PatternTriple,
    designated,
    entity_var,
    value_var,
)
from ..exceptions import DatasetError

#: Predicates of the circuit encoding.
TAG_OF = "tag_of"
INPUT_1 = "input_1"
INPUT_2 = "input_2"


@dataclass(frozen=True)
class Gate:
    """One gate of a monotone circuit."""

    gate_id: str
    kind: str  # "input", "and", "or"
    inputs: Tuple[str, ...] = ()
    value: Optional[bool] = None  # only for input gates

    def __post_init__(self) -> None:
        if self.kind not in ("input", "and", "or"):
            raise DatasetError(f"unknown gate kind {self.kind!r}")
        if self.kind == "input":
            if self.value is None:
                raise DatasetError(f"input gate {self.gate_id!r} needs a value")
            if self.inputs:
                raise DatasetError(f"input gate {self.gate_id!r} must not have inputs")
        else:
            if len(self.inputs) != 2:
                raise DatasetError(
                    f"{self.kind} gate {self.gate_id!r} needs exactly two inputs"
                )


@dataclass
class MonotoneCircuit:
    """A monotone Boolean circuit given as a DAG of gates."""

    gates: Dict[str, Gate] = field(default_factory=dict)
    output: Optional[str] = None

    def add_input(self, gate_id: str, value: bool) -> None:
        self._add(Gate(gate_id, "input", value=value))

    def add_and(self, gate_id: str, left: str, right: str) -> None:
        self._add(Gate(gate_id, "and", inputs=(left, right)))

    def add_or(self, gate_id: str, left: str, right: str) -> None:
        self._add(Gate(gate_id, "or", inputs=(left, right)))

    def set_output(self, gate_id: str) -> None:
        if gate_id not in self.gates:
            raise DatasetError(f"unknown output gate {gate_id!r}")
        self.output = gate_id

    def _add(self, gate: Gate) -> None:
        if gate.gate_id in self.gates:
            raise DatasetError(f"gate {gate.gate_id!r} already exists")
        for dependency in gate.inputs:
            if dependency not in self.gates:
                raise DatasetError(
                    f"gate {gate.gate_id!r} references unknown input {dependency!r}"
                )
        self.gates[gate.gate_id] = gate

    def evaluate(self) -> Dict[str, bool]:
        """Direct evaluation of every gate (the ground truth for tests)."""
        values: Dict[str, bool] = {}

        def value_of(gate_id: str) -> bool:
            if gate_id in values:
                return values[gate_id]
            gate = self.gates[gate_id]
            if gate.kind == "input":
                result = bool(gate.value)
            elif gate.kind == "and":
                result = value_of(gate.inputs[0]) and value_of(gate.inputs[1])
            else:
                result = value_of(gate.inputs[0]) or value_of(gate.inputs[1])
            values[gate_id] = result
            return result

        for gate_id in self.gates:
            value_of(gate_id)
        return values

    def output_value(self) -> bool:
        if self.output is None:
            raise DatasetError("circuit has no output gate")
        return self.evaluate()[self.output]


def gate_type(gate_id: str) -> str:
    """The entity type encoding *gate_id*."""
    return f"gate_{gate_id}"


def gate_pair(gate_id: str) -> Pair:
    """The entity pair encoding *gate_id*."""
    return (f"{gate_id}_a", f"{gate_id}_b")


def encode_circuit(circuit: MonotoneCircuit) -> Tuple[Graph, KeySet]:
    """The Theorem-4 construction: graph and keys encoding *circuit*."""
    graph = Graph()
    keys = KeySet()
    for gate_id, gate in circuit.gates.items():
        e_a, e_b = gate_pair(gate_id)
        etype = gate_type(gate_id)
        graph.add_entity(e_a, etype)
        graph.add_entity(e_b, etype)
        if gate.kind == "input":
            graph.add_value(e_a, TAG_OF, f"tag_{gate_id}_a")
            graph.add_value(
                e_b, TAG_OF, f"tag_{gate_id}_a" if gate.value else f"tag_{gate_id}_b"
            )
            x = designated("x", etype)
            pattern = GraphPattern(
                [PatternTriple(x, TAG_OF, value_var("tag"))], name=f"key_{gate_id}"
            )
            keys.add(Key(pattern, name=f"key_{gate_id}"))
        else:
            left, right = gate.inputs
            left_a, left_b = gate_pair(left)
            right_a, right_b = gate_pair(right)
            graph.add_edge(e_a, INPUT_1, left_a)
            graph.add_edge(e_b, INPUT_1, left_b)
            graph.add_edge(e_a, INPUT_2, right_a)
            graph.add_edge(e_b, INPUT_2, right_b)
            if gate.kind == "and":
                x = designated("x", etype)
                triples = [PatternTriple(x, INPUT_1, entity_var("l", gate_type(left)))]
                if right != left:
                    # a gate fed twice by the same input only needs one entity
                    # variable (injectivity forbids mapping two variables to
                    # the same entity, and AND(v, v) = v anyway)
                    triples.append(
                        PatternTriple(x, INPUT_2, entity_var("r", gate_type(right)))
                    )
                pattern = GraphPattern(triples, name=f"key_{gate_id}")
                keys.add(Key(pattern, name=f"key_{gate_id}"))
            else:  # OR: one key per distinct input
                or_sources = [("l", INPUT_1, left)]
                if right != left:
                    or_sources.append(("r", INPUT_2, right))
                for suffix, predicate, source in or_sources:
                    x = designated("x", etype)
                    pattern = GraphPattern(
                        [PatternTriple(x, predicate, entity_var(suffix, gate_type(source)))],
                        name=f"key_{gate_id}_{suffix}",
                    )
                    keys.add(Key(pattern, name=f"key_{gate_id}_{suffix}"))
    return graph, keys


def expected_identified_pairs(circuit: MonotoneCircuit) -> Set[Pair]:
    """The pairs the chase must identify: one per gate that evaluates to true."""
    values = circuit.evaluate()
    return {
        canonical_pair(*gate_pair(gate_id))
        for gate_id, value in values.items()
        if value
    }


def random_monotone_circuit(
    num_inputs: int = 4, num_gates: int = 6, seed: int = 3
) -> MonotoneCircuit:
    """A random monotone circuit (used by property-based tests)."""
    if num_inputs < 1 or num_gates < 1:
        raise DatasetError("num_inputs and num_gates must be >= 1")
    rng = random.Random(seed)
    circuit = MonotoneCircuit()
    gate_ids: List[str] = []
    for index in range(num_inputs):
        gate_id = f"in{index}"
        circuit.add_input(gate_id, rng.random() < 0.5)
        gate_ids.append(gate_id)
    for index in range(num_gates):
        gate_id = f"g{index}"
        left, right = rng.choice(gate_ids), rng.choice(gate_ids)
        if rng.random() < 0.5:
            circuit.add_and(gate_id, left, right)
        else:
            circuit.add_or(gate_id, left, right)
        gate_ids.append(gate_id)
    circuit.set_output(gate_ids[-1])
    return circuit


def deep_and_chain(depth: int, value: bool = True) -> MonotoneCircuit:
    """A chain of AND gates of the given depth (long dependency chains)."""
    if depth < 1:
        raise DatasetError("depth must be >= 1")
    circuit = MonotoneCircuit()
    circuit.add_input("in_a", value)
    circuit.add_input("in_b", True)
    previous = "in_a"
    for level in range(depth):
        gate_id = f"and{level}"
        circuit.add_and(gate_id, previous, "in_b")
        previous = gate_id
    circuit.set_output(previous)
    return circuit
