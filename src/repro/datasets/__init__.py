"""Datasets: the paper's running examples, realistic synthetic stand-ins for
the Google+ and DBpedia experiments, a schema-driven synthetic generator and
the theory constructions used in the hardness results.
"""

from .business import (
    address_dataset,
    address_graph,
    address_keys,
    business_dataset,
    business_graph,
    business_keys,
)
from .circuits import (
    MonotoneCircuit,
    deep_and_chain,
    encode_circuit,
    expected_identified_pairs,
    random_monotone_circuit,
)
from .domain_base import DomainDataset, DomainSpec, LevelSpec, LocatorSpec, build_domain_dataset, domain_keys
from .keygen import generate_keys
from .knowledge import fig7_keys, fusion_example_graph, knowledge_dataset, knowledge_keys
from .music import music_dataset, music_graph, music_keys
from .registry import DATASETS, DatasetSpec, dataset_factory, dataset_spec, make_dataset
from .social import reconciliation_keys, social_dataset, social_keys
from .synthetic import SyntheticConfig, SyntheticDataset, generate_synthetic, synthetic_dataset

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_factory",
    "dataset_spec",
    "make_dataset",
    "DomainDataset",
    "DomainSpec",
    "LevelSpec",
    "LocatorSpec",
    "MonotoneCircuit",
    "SyntheticConfig",
    "SyntheticDataset",
    "address_dataset",
    "address_graph",
    "address_keys",
    "build_domain_dataset",
    "business_dataset",
    "business_graph",
    "business_keys",
    "deep_and_chain",
    "domain_keys",
    "encode_circuit",
    "expected_identified_pairs",
    "fig7_keys",
    "fusion_example_graph",
    "generate_keys",
    "generate_synthetic",
    "knowledge_dataset",
    "knowledge_keys",
    "music_dataset",
    "music_graph",
    "music_keys",
    "random_monotone_circuit",
    "reconciliation_keys",
    "social_dataset",
    "social_keys",
    "synthetic_dataset",
]
