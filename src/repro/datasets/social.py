"""A Google+-like social-attribute network (the "Google" workload).

The paper's Google workload is a snapshot of the Google+ social network
(2.6M nodes, 17.5M relationship edges, 30 attribute-derived entity types)
with 30 hand-constructed keys.  That snapshot is not redistributable and is
far beyond a pure-Python isomorphism engine, so this module generates a
laptop-scale social-attribute network with the same *shape*:

* users attend universities, universities sit in cities, cities belong to
  regions and countries (the chain that recursive keys walk);
* every entity has a profile "locator" path (city → region → … → a postal
  value) realising the key radius;
* users also have friendship / follow / endorsement edges that no key
  mentions (the distractors social networks are full of);
* a fraction of entities are *duplicate accounts* — the ground truth for
  social-network reconciliation (the paper's motivating application [28]).

``social_dataset(scale, chain_length, radius, seed)`` is what the benchmarks
use; ``reconciliation_keys()`` exposes a small hand-written key set in the
spirit of the paper's examples for the quickstart / example scripts.
"""

from __future__ import annotations

from typing import Optional

from ..core.key import Key, KeySet
from ..core.pattern import (
    GraphPattern,
    PatternTriple,
    designated,
    entity_var,
    value_var,
)
from .domain_base import (
    NAME_OF,
    DomainDataset,
    DomainSpec,
    LevelSpec,
    LocatorSpec,
    build_domain_dataset,
    domain_keys,
)

#: Entity types of the social domain.
USER = "user"
UNIVERSITY = "university"
CITY = "city"
REGION = "region"
COUNTRY = "country"
EMPLOYER = "employer"

#: Predicates of the social domain.
ATTENDS = "attends"
LOCATED_IN = "located_in"
IN_REGION = "in_region"
IN_COUNTRY = "in_country"
POSTAL_CODE = "postal_code"
LIVES_IN = "lives_in"
WORKS_AT = "works_at"
FRIEND = "friend"
FOLLOWS = "follows"
ENDORSES = "endorses"

#: The social domain: a 5-level chain and a 5-hop-capable locator path.
SOCIAL_SPEC = DomainSpec(
    name="google",
    levels=(
        LevelSpec(USER, ATTENDS, population=24),
        LevelSpec(UNIVERSITY, LOCATED_IN, population=12),
        LevelSpec(CITY, IN_REGION, population=8),
        LevelSpec(REGION, IN_COUNTRY, population=6),
        LevelSpec(COUNTRY, "borders", population=4),
    ),
    locator=LocatorSpec(
        hops=(
            (LIVES_IN, CITY),
            (IN_REGION, REGION),
            (IN_COUNTRY, COUNTRY),
            ("borders", COUNTRY),
        ),
        value_predicate=POSTAL_CODE,
    ),
    flavour_predicates=(FRIEND, FOLLOWS, ENDORSES),
    flavour_edges_per_entity=1.0,
)

_FIRST_NAMES = (
    "Ada", "Grace", "Alan", "Edsger", "Barbara", "Donald", "Leslie", "Tim",
    "Radia", "Vint", "Margaret", "John", "Frances", "Ken", "Dennis", "Niklaus",
)
_SURNAMES = (
    "Lovelace", "Hopper", "Turing", "Dijkstra", "Liskov", "Knuth", "Lamport",
    "Berners-Lee", "Perlman", "Cerf", "Hamilton", "Backus", "Allen", "Thompson",
    "Ritchie", "Wirth",
)


def _social_names(etype: str, index: int) -> str:
    """Human-flavoured display names (still injective per (etype, index))."""
    if etype == USER:
        first = _FIRST_NAMES[index % len(_FIRST_NAMES)]
        last = _SURNAMES[(index // len(_FIRST_NAMES)) % len(_SURNAMES)]
        return f"{first} {last} {index}"
    return f"{etype.title()} {index}"


def social_dataset(
    scale: float = 1.0,
    chain_length: int = 2,
    radius: int = 2,
    duplicate_fraction: float = 0.25,
    seed: int = 11,
) -> DomainDataset:
    """Generate the Google+-like workload.

    ``chain_length`` and ``radius`` play the role of ``c`` and ``d`` in Exp-3;
    ``scale`` is the |G| scale factor of Exp-2.
    """
    return build_domain_dataset(
        SOCIAL_SPEC,
        chain_length=chain_length,
        radius=radius,
        scale=scale,
        duplicate_fraction=duplicate_fraction,
        seed=seed,
        name_vocabulary=_social_names,
    )


def social_keys(chain_length: int = 2, radius: int = 2) -> KeySet:
    """The generated key set used by :func:`social_dataset`."""
    return domain_keys(SOCIAL_SPEC, chain_length, radius)


# ---------------------------------------------------------------------- #
# hand-written reconciliation keys for the example scripts
# ---------------------------------------------------------------------- #


def key_user_by_profile() -> Key:
    """A user account is identified by its display name and postal code."""
    x = designated("x", USER)
    pattern = GraphPattern(
        [
            PatternTriple(x, NAME_OF, value_var("name")),
            PatternTriple(x, POSTAL_CODE, value_var("postal")),
        ],
        name="user_by_profile",
    )
    return Key(pattern, name="user_by_profile")


def key_user_by_university() -> Key:
    """A user account is identified by its display name and its (identified) university."""
    x = designated("x", USER)
    pattern = GraphPattern(
        [
            PatternTriple(x, NAME_OF, value_var("name")),
            PatternTriple(x, ATTENDS, entity_var("uni", UNIVERSITY)),
        ],
        name="user_by_university",
    )
    return Key(pattern, name="user_by_university")


def key_university_by_city() -> Key:
    """A university is identified by its name and its (identified) city."""
    x = designated("x", UNIVERSITY)
    pattern = GraphPattern(
        [
            PatternTriple(x, NAME_OF, value_var("name")),
            PatternTriple(x, LOCATED_IN, entity_var("city", CITY)),
        ],
        name="university_by_city",
    )
    return Key(pattern, name="university_by_city")


def key_city_by_postal_code() -> Key:
    """A city is identified by its name and postal code (value-based)."""
    x = designated("x", CITY)
    pattern = GraphPattern(
        [
            PatternTriple(x, NAME_OF, value_var("name")),
            PatternTriple(x, POSTAL_CODE, value_var("postal")),
        ],
        name="city_by_postal_code",
    )
    return Key(pattern, name="city_by_postal_code")


def reconciliation_keys() -> KeySet:
    """A small, readable key set for the social-reconciliation example."""
    return KeySet(
        [
            key_user_by_profile(),
            key_user_by_university(),
            key_university_by_city(),
            key_city_by_postal_code(),
        ]
    )
