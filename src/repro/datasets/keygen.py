"""Key generator controlled by radius ``d`` and dependency-chain length ``c``.

The paper's synthetic experiments generate keys "for different types of
entities in Θ, with values from D and predicates from P", controlled by the
maximum radius ``d`` and the length ``c`` of the longest dependency chain
(Exp-3).  This module builds such keys over the schema used by
:mod:`repro.datasets.synthetic`:

* keys are organised into *groups*; group ``g`` covers a chain of entity
  types ``T{g}_1 → T{g}_2 → … → T{g}_c``;
* the key for the last type of the chain is **value-based**: the entity is
  identified by its name and by a *locator value* reachable through a path of
  ``d − 1`` wildcards (so the key's radius is exactly ``d``);
* the key for every other type is **recursively defined**: the entity is
  identified by its name, the same locator path, and an entity variable of
  the next type in the chain — giving a dependency chain of length ``c``.
"""

from __future__ import annotations

from typing import List

from ..core.key import Key, KeySet
from ..core.pattern import (
    GraphPattern,
    PatternTriple,
    designated,
    entity_var,
    value_var,
    wildcard,
)

#: Predicates shared by all synthetic groups.
NAME_OF = "name_of"
LOCATOR_OF = "locator_of"


def chain_type(group: int, level: int) -> str:
    """The entity type at *level* (1-based) of the chain of *group*."""
    return f"T{group}_{level}"


def aux_type(group: int, hop: int) -> str:
    """The auxiliary (wildcard) entity type at *hop* of the locator path."""
    return f"A{group}_{hop}"


def ref_predicate(group: int) -> str:
    """The predicate linking a chain type to the next one."""
    return f"ref_{group}"


def hop_predicate(group: int, hop: int) -> str:
    """The predicate of the *hop*-th step of the locator path."""
    return f"hop_{group}_{hop}"


def _locator_triples(group: int, radius: int, x) -> List[PatternTriple]:
    """The locator path: ``x → w1 → … → w(d−1) → locator*`` (radius = *radius*).

    For radius 1 the locator value hangs directly off ``x``.
    """
    triples: List[PatternTriple] = []
    current = x
    for hop in range(1, radius):
        nxt = wildcard(f"w{hop}", aux_type(group, hop))
        triples.append(PatternTriple(current, hop_predicate(group, hop), nxt))
        current = nxt
    triples.append(PatternTriple(current, LOCATOR_OF, value_var("locator")))
    return triples


def value_based_key(group: int, level: int, radius: int) -> Key:
    """The value-based key for ``T{group}_{level}`` with the given radius."""
    if radius < 1:
        raise ValueError(f"radius must be >= 1, got {radius}")
    x = designated("x", chain_type(group, level))
    triples = [PatternTriple(x, NAME_OF, value_var("name"))]
    triples.extend(_locator_triples(group, radius, x))
    name = f"K{group}_{level}"
    return Key(GraphPattern(triples, name=name), name=name)


def recursive_key(group: int, level: int, radius: int) -> Key:
    """The recursive key for ``T{group}_{level}``: depends on the next chain type."""
    if radius < 1:
        raise ValueError(f"radius must be >= 1, got {radius}")
    x = designated("x", chain_type(group, level))
    next_entity = entity_var("nxt", chain_type(group, level + 1))
    triples = [
        PatternTriple(x, NAME_OF, value_var("name")),
        PatternTriple(x, ref_predicate(group), next_entity),
    ]
    triples.extend(_locator_triples(group, radius, x))
    name = f"K{group}_{level}"
    return Key(GraphPattern(triples, name=name), name=name)


def group_keys(group: int, chain_length: int, radius: int) -> List[Key]:
    """All keys of one group: ``chain_length`` keys forming a dependency chain."""
    if chain_length < 1:
        raise ValueError(f"chain_length must be >= 1, got {chain_length}")
    keys: List[Key] = []
    for level in range(1, chain_length):
        keys.append(recursive_key(group, level, radius))
    keys.append(value_based_key(group, chain_length, radius))
    return keys


def generate_keys(num_keys: int, chain_length: int = 2, radius: int = 2) -> KeySet:
    """Generate approximately *num_keys* keys with the requested ``c`` and ``d``.

    Keys come in groups of ``chain_length``; the number of groups is chosen so
    that at least *num_keys* keys are produced (the paper's 30 / 100 / 500 key
    workloads map to the corresponding number of groups).
    """
    if num_keys < 1:
        raise ValueError(f"num_keys must be >= 1, got {num_keys}")
    keys = KeySet()
    groups = max(1, (num_keys + chain_length - 1) // chain_length)
    for group in range(groups):
        for key in group_keys(group, chain_length, radius):
            keys.add(key)
    return keys
