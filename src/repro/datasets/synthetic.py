"""Schema-driven synthetic graph generator with planted duplicates.

This is the laptop-scale counterpart of the paper's synthetic workload
(graphs up to 100M nodes / 500M edges with 500 generated keys).  The
generator is driven by the same knobs as the paper's experiments:

* ``num_keys`` — how many keys to generate (grouped into dependency chains);
* ``chain_length`` (``c``) — the length of the longest dependency chain;
* ``radius`` (``d``) — the maximum key radius;
* ``entities_per_type`` and ``duplicate_fraction`` — graph size and how many
  duplicate entities are planted;
* ``scale`` — a global multiplier used by the ``|G|`` sweep of Exp-2;
* ``noise_edges`` — extra random edges that are irrelevant to every key, so
  neighbourhoods contain distractors and the pairing filter has work to do.

Planted duplicates are returned together with the graph, so tests and
benchmarks can verify that entity matching finds exactly the planted pairs:
the duplicate of a chain entity points to the duplicate of its successor, so
identifying a level-``i`` pair requires the level-``i+1`` pair first — the
dependency structure that makes the MapReduce round count grow with ``c``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..core.equivalence import Pair, canonical_pair
from ..core.graph import Graph
from ..core.key import KeySet
from ..exceptions import DatasetError
from .keygen import (
    LOCATOR_OF,
    NAME_OF,
    aux_type,
    chain_type,
    generate_keys,
    hop_predicate,
    ref_predicate,
)


@dataclass(frozen=True)
class SyntheticConfig:
    """Configuration of the synthetic generator."""

    num_keys: int = 20
    chain_length: int = 2
    radius: int = 2
    entities_per_type: int = 8
    duplicate_fraction: float = 0.25
    noise_edges: int = 2
    scale: float = 1.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.chain_length < 1:
            raise DatasetError("chain_length must be >= 1")
        if self.radius < 1:
            raise DatasetError("radius must be >= 1")
        if not 0.0 <= self.duplicate_fraction <= 1.0:
            raise DatasetError("duplicate_fraction must be in [0, 1]")
        if self.entities_per_type < 2:
            raise DatasetError("entities_per_type must be >= 2")
        if self.scale <= 0:
            raise DatasetError("scale must be positive")

    @property
    def groups(self) -> int:
        return max(1, (self.num_keys + self.chain_length - 1) // self.chain_length)

    @property
    def scaled_entities_per_type(self) -> int:
        return max(2, int(round(self.entities_per_type * self.scale)))


@dataclass
class SyntheticDataset:
    """The output of the generator: graph, keys and ground truth."""

    graph: Graph
    keys: KeySet
    planted_pairs: Set[Pair] = field(default_factory=set)
    config: SyntheticConfig = field(default_factory=SyntheticConfig)

    def summary(self) -> Dict[str, int]:
        summary = dict(self.graph.stats())
        summary["keys"] = self.keys.cardinality
        summary["planted_pairs"] = len(self.planted_pairs)
        return summary


def _entity_id(group: int, level: int, index: int, duplicate: bool = False) -> str:
    suffix = "_dup" if duplicate else ""
    return f"e{group}_{level}_{index}{suffix}"


def generate_synthetic(config: SyntheticConfig = SyntheticConfig()) -> SyntheticDataset:
    """Generate a synthetic dataset according to *config* (deterministic per seed)."""
    rng = random.Random(config.seed)
    graph = Graph()
    keys = generate_keys(config.num_keys, config.chain_length, config.radius)
    planted: Set[Pair] = set()

    per_type = config.scaled_entities_per_type
    num_duplicates = max(1, int(round(per_type * config.duplicate_fraction)))

    for group in range(config.groups):
        _generate_group(graph, rng, config, group, per_type, num_duplicates, planted)

    _add_noise_edges(graph, rng, config)
    return SyntheticDataset(graph=graph, keys=keys, planted_pairs=planted, config=config)


def _generate_group(
    graph: Graph,
    rng: random.Random,
    config: SyntheticConfig,
    group: int,
    per_type: int,
    num_duplicates: int,
    planted: Set[Pair],
) -> None:
    """Generate the entities, locator paths and duplicates of one key group."""
    duplicate_indices = set(range(num_duplicates))

    # chain entities (level 1 .. c), their names and locator paths
    for level in range(1, config.chain_length + 1):
        etype = chain_type(group, level)
        for index in range(per_type):
            eid = _entity_id(group, level, index)
            graph.add_entity(eid, etype)
            graph.add_value(eid, NAME_OF, f"name_{group}_{level}_{index}")
            _attach_locator_path(graph, config, group, level, index, eid)
            if index in duplicate_indices:
                dup = _entity_id(group, level, index, duplicate=True)
                graph.add_entity(dup, etype)
                # same name and same locator path head → the value-based /
                # recursive key conditions can coincide
                graph.add_value(dup, NAME_OF, f"name_{group}_{level}_{index}")
                _attach_locator_path(graph, config, group, level, index, dup, shared=True)
                planted.add(canonical_pair(eid, dup))

    # chain edges: level i → level i+1; duplicates point to duplicates so the
    # recursive keys impose a genuine dependency chain
    for level in range(1, config.chain_length):
        predicate = ref_predicate(group)
        for index in range(per_type):
            source = _entity_id(group, level, index)
            target = _entity_id(group, level + 1, index)
            graph.add_edge(source, predicate, target)
            if index in duplicate_indices:
                dup_source = _entity_id(group, level, index, duplicate=True)
                dup_target = _entity_id(group, level + 1, index, duplicate=True)
                graph.add_edge(dup_source, predicate, dup_target)


def _attach_locator_path(
    graph: Graph,
    config: SyntheticConfig,
    group: int,
    level: int,
    index: int,
    eid: str,
    shared: bool = False,
) -> None:
    """Attach the radius-``d`` locator path to *eid*.

    The path consists of ``d − 1`` auxiliary entities ending in a locator
    value.  A duplicate entity (``shared=True``) re-uses the original's first
    auxiliary entity (wildcards do not require distinct nodes), so the
    coincidence conditions of the generated keys hold for planted pairs.
    """
    if config.radius == 1:
        graph.add_value(eid, LOCATOR_OF, f"loc_{group}_{level}_{index}")
        return
    previous = eid
    for hop in range(1, config.radius):
        aux_id = f"aux_{group}_{level}_{index}_{hop}"
        graph.add_entity(aux_id, aux_type(group, hop))
        graph.add_edge(previous, hop_predicate(group, hop), aux_id)
        previous = aux_id
        if shared:
            # the duplicate only needs its own edge into the shared path head
            return
    graph.add_value(previous, LOCATOR_OF, f"loc_{group}_{level}_{index}")


def _add_noise_edges(graph: Graph, rng: random.Random, config: SyntheticConfig) -> None:
    """Add random edges between chain entities that no key mentions."""
    if config.noise_edges <= 0:
        return
    entity_ids = sorted(graph.entity_ids())
    if len(entity_ids) < 2:
        return
    for index in range(config.noise_edges * config.groups):
        source = rng.choice(entity_ids)
        target = rng.choice(entity_ids)
        if source == target:
            continue
        graph.add_edge(source, f"noise_{index % 5}", target)


def synthetic_dataset(
    num_keys: int = 20,
    chain_length: int = 2,
    radius: int = 2,
    entities_per_type: int = 8,
    duplicate_fraction: float = 0.25,
    scale: float = 1.0,
    seed: int = 7,
) -> SyntheticDataset:
    """Convenience wrapper around :func:`generate_synthetic`."""
    config = SyntheticConfig(
        num_keys=num_keys,
        chain_length=chain_length,
        radius=radius,
        entities_per_type=entities_per_type,
        duplicate_fraction=duplicate_fraction,
        scale=scale,
        seed=seed,
    )
    return generate_synthetic(config)
