"""The business (company) example of the paper (Example 1, Fig. 1–2, G2) and
the UK-address example (key ``Q6``).

Graph ``G2`` records company mergers and splits around AT&T/SBC:

* ``com1`` and ``com2`` are both called "AT&T"; ``com0`` (also "AT&T") is a
  parent of both, and of ``com3`` ("SBC") — the split scenario;
* ``com4`` and ``com5`` are both called "AT&T" and have parents
  ``{com1, com3}`` and ``{com2, com3}`` respectively, with ``com3`` ("SBC")
  shared — the merge scenario.

The keys are:

* ``Q4`` — a company merged from a same-named parent is identified by its
  name and the *other* parent company (an entity variable);
* ``Q5`` — a company split from a same-named parent is identified by its name
  and another child company of that parent.

Example 7 of the paper: the chase identifies ``(com4, com5)`` by ``Q4`` (the
same-named parent is a wildcard, so no recursion is needed), and then
``(com1, com2)`` by ``Q5``.
"""

from __future__ import annotations

from typing import Tuple

from ..core.graph import Graph
from ..core.key import Key, KeySet
from ..core.pattern import (
    GraphPattern,
    PatternTriple,
    constant,
    designated,
    entity_var,
    value_var,
    wildcard,
)

#: Predicates used by the business / address examples.
NAME_OF = "name_of"
PARENT_OF = "parent_of"
NATION_OF = "nation_of"
ZIP_CODE = "zip_code"

#: Entity types.
COMPANY = "company"
STREET = "street"


def business_graph() -> Graph:
    """Build the graph fragment ``G2`` of Fig. 2."""
    graph = Graph()
    for company in ("com0", "com1", "com2", "com3", "com4", "com5"):
        graph.add_entity(company, COMPANY)

    graph.add_value("com0", NAME_OF, "AT&T")
    graph.add_value("com1", NAME_OF, "AT&T")
    graph.add_value("com2", NAME_OF, "AT&T")
    graph.add_value("com3", NAME_OF, "SBC")
    graph.add_value("com4", NAME_OF, "AT&T")
    graph.add_value("com5", NAME_OF, "AT&T")

    # com0 split into com1, com2 and com3; com1/com2 and com3 are parents of
    # com4/com5 (merge).  Example 7 identifies (com1, com2) by Q5 using com3
    # as the shared "other child", so com3 must be a child of com0 as well.
    graph.add_edge("com0", PARENT_OF, "com1")
    graph.add_edge("com0", PARENT_OF, "com2")
    graph.add_edge("com0", PARENT_OF, "com3")
    graph.add_edge("com1", PARENT_OF, "com4")
    graph.add_edge("com3", PARENT_OF, "com4")
    graph.add_edge("com2", PARENT_OF, "com5")
    graph.add_edge("com3", PARENT_OF, "com5")
    return graph


def key_q4() -> Key:
    """``Q4``: identify a merged company by name and the other parent company."""
    x = designated("x", COMPANY)
    name = value_var("name")
    same_named_parent = wildcard("p", COMPANY)
    other_parent = entity_var("other_parent", COMPANY)
    pattern = GraphPattern(
        [
            PatternTriple(x, NAME_OF, name),
            PatternTriple(same_named_parent, NAME_OF, name),
            PatternTriple(same_named_parent, PARENT_OF, x),
            PatternTriple(other_parent, PARENT_OF, x),
        ],
        name="Q4",
    )
    return Key(pattern, name="Q4")


def key_q5() -> Key:
    """``Q5``: identify a split company by name and another child company."""
    x = designated("x", COMPANY)
    name = value_var("name")
    same_named_parent = wildcard("p", COMPANY)
    other_child = entity_var("other_child", COMPANY)
    pattern = GraphPattern(
        [
            PatternTriple(x, NAME_OF, name),
            PatternTriple(same_named_parent, NAME_OF, name),
            PatternTriple(same_named_parent, PARENT_OF, x),
            PatternTriple(same_named_parent, PARENT_OF, other_child),
        ],
        name="Q5",
    )
    return Key(pattern, name="Q5")


def business_keys() -> KeySet:
    """The key set ``Σ2 = {Q4, Q5}`` of Example 7."""
    return KeySet([key_q4(), key_q5()])


def business_dataset() -> Tuple[Graph, KeySet]:
    """The (graph, keys) pair of the business example."""
    return business_graph(), business_keys()


#: Pairs the chase must identify on this dataset (Example 7 of the paper).
EXPECTED_IDENTIFIED_PAIRS = frozenset({("com4", "com5"), ("com1", "com2")})


# ---------------------------------------------------------------------- #
# the UK address example (key Q6 of Fig. 1)
# ---------------------------------------------------------------------- #


def key_q6() -> Key:
    """``Q6``: a street in the UK is identified by its zip code (constant condition)."""
    x = designated("x", STREET)
    nation = constant("UK", name="uk")
    code = value_var("code")
    pattern = GraphPattern(
        [
            PatternTriple(x, NATION_OF, nation),
            PatternTriple(x, ZIP_CODE, code),
        ],
        name="Q6",
    )
    return Key(pattern, name="Q6")


def address_graph() -> Graph:
    """A small address graph: two UK streets share a zip code, two US streets do too."""
    graph = Graph()
    for street in ("st_uk_1", "st_uk_2", "st_uk_3", "st_us_1", "st_us_2"):
        graph.add_entity(street, STREET)

    graph.add_value("st_uk_1", NATION_OF, "UK")
    graph.add_value("st_uk_2", NATION_OF, "UK")
    graph.add_value("st_uk_3", NATION_OF, "UK")
    graph.add_value("st_us_1", NATION_OF, "US")
    graph.add_value("st_us_2", NATION_OF, "US")

    graph.add_value("st_uk_1", ZIP_CODE, "EH8 9AB")
    graph.add_value("st_uk_2", ZIP_CODE, "EH8 9AB")
    graph.add_value("st_uk_3", ZIP_CODE, "G12 8QQ")
    # the US streets share a zip code but Q6 does not apply to them
    graph.add_value("st_us_1", ZIP_CODE, "94103")
    graph.add_value("st_us_2", ZIP_CODE, "94103")
    return graph


def address_keys() -> KeySet:
    """The key set containing only ``Q6``."""
    return KeySet([key_q6()])


def address_dataset() -> Tuple[Graph, KeySet]:
    """The (graph, keys) pair of the address example."""
    return address_graph(), address_keys()


#: Only the UK streets sharing a zip code are identified.
EXPECTED_ADDRESS_PAIRS = frozenset({("st_uk_1", "st_uk_2")})
