"""Shared work accounting used by both execution substrates.

The MapReduce ``TaskContext`` and the vertex-centric ``VertexContext`` used to
carry near-identical work-unit bookkeeping (a counter plus validation).  Both
now inherit from :class:`WorkAccount`, which also adds named counters and a
per-task scratch space:

* ``add_work`` / ``work`` — the abstract work units the cost models convert
  into simulated cluster seconds;
* ``count`` / ``counters`` — named statistics (e.g. ``"checks"``) that user
  code reports *through the context* instead of mutating its own attributes.
  This matters for real parallelism: a mapper object shipped to a worker
  process is a copy, so attribute mutations are lost — counter values returned
  with the task outcome are not;
* ``scratch`` — a per-task dictionary for worker-local helpers (e.g. a lazily
  built checker), so shared task objects stay read-only and thread-safe.
"""

from __future__ import annotations

from typing import Dict, Type


class WorkAccount:
    """Work units, named counters and scratch space of one task execution."""

    #: The substrate-specific error class raised on invalid work reports.
    error_class: Type[Exception] = ValueError

    def __init__(self) -> None:
        self.work = 0
        self.counters: Dict[str, int] = {}
        self.scratch: Dict[str, object] = {}

    def add_work(self, units: int = 1) -> None:
        """Report *units* of computational work to the cost model."""
        if units < 0:
            raise self.error_class("work units must be non-negative")
        self.work += units

    def count(self, name: str, units: int = 1) -> None:
        """Increment the named counter *name* by *units*."""
        if units < 0:
            raise self.error_class("counter increments must be non-negative")
        self.counters[name] = self.counters.get(name, 0) + units
