"""The shared execution runtime under both matching engines.

This package is the bottom layer of the system: it knows nothing about graphs,
keys or matching.  It provides

* **executors** (:mod:`repro.runtime.executor`) — serial, thread and process
  backends with one contract: batch order in, outcome order out, shared
  payload shipped once;
* **partitioners** (:mod:`repro.runtime.partition`) — deterministic hash,
  chunk and locality-aware fragment splitting, plus :func:`stable_hash`, the
  process-stable replacement for the salted builtin ``hash``;
* **work accounting** (:mod:`repro.runtime.context`) — the
  :class:`WorkAccount` base both substrates' task contexts inherit.

The MapReduce driver (:mod:`repro.mapreduce.runtime`) and the vertex-centric
engine (:mod:`repro.vertexcentric.engine`) execute on top of this layer; the
cost models remain a *parallel-observed* simulation layer (simulated cluster
seconds for ``p`` simulated processors) while the executors additionally
deliver measured wall-clock parallelism on the real machine.  Only the
substrates, ``benchlib`` and tests may import ``repro.runtime``; algorithm
and API layers configure it through ``executor=`` / ``workers=`` options.
"""

from .context import WorkAccount
from .executor import (
    EXECUTOR_KINDS,
    AttachByPath,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    create_executor,
    default_worker_count,
)
from .partition import (
    PARTITIONER_KINDS,
    ChunkPartitioner,
    FragmentPartitioner,
    HashPartitioner,
    Partitioner,
    create_partitioner,
    stable_hash,
)

__all__ = [
    "AttachByPath",
    "ChunkPartitioner",
    "EXECUTOR_KINDS",
    "Executor",
    "FragmentPartitioner",
    "HashPartitioner",
    "PARTITIONER_KINDS",
    "Partitioner",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "WorkAccount",
    "create_executor",
    "create_partitioner",
    "default_worker_count",
    "stable_hash",
]
