"""Executors: where task batches actually run.

The engines phrase their work as *task batches* — pure functions of
``(shared, *args)`` returning a picklable outcome — and an executor decides
where the batches run:

* :class:`SerialExecutor` — in the calling thread, in order.  The reference
  schedule; every other executor must produce identical outcomes.
* :class:`ThreadExecutor` — a ``concurrent.futures`` thread pool.  Overlaps
  blocking work; pure-Python compute stays GIL-bound, so it is mostly a
  correctness stressor and a stepping stone to the process executor.
* :class:`ProcessExecutor` — a process pool delivering real CPU parallelism.
  Task functions and arguments must be picklable.  The ``shared`` payload
  (graph, indexes, caches) is *not* pickled per task: it travels through the
  pool initializer exactly once per worker process, and the pool is recreated
  only when an engine publishes a different payload.

The contract every implementation honours:

* ``run_tasks(fn, batches, shared)`` returns one outcome per batch **in batch
  order**, regardless of completion order;
* exceptions raised by a task propagate to the caller;
* ``shared`` is read-only from the tasks' point of view: serial and thread
  executors pass the very object (mutations would leak), the process executor
  hands each worker a copy — task functions that mutate shared state are bugs;
* a published ``shared`` payload is immutable from the *caller's* side too:
  pool reuse and the process executor's serialized-payload cache both key on
  object identity, so mutating a payload in place between ``run_tasks`` calls
  (even across ``close()``) ships stale state — publish a new object instead.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

from ..exceptions import ExecutorError

#: The registered executor kinds, in documentation order.
EXECUTOR_KINDS: Tuple[str, ...] = ("serial", "thread", "process")

#: Shared payload slot of a process-pool worker (set by fork inheritance or
#: by the pool initializer, read by ``_invoke_with_shared``).
_WORKER_SHARED: object = None


class AttachByPath:
    """A shared payload that ships as a snapshot-store file path.

    Wrap a stored snapshot's path and pass the wrapper as ``shared``: the
    serial and thread executors resolve it in the calling process, and the
    process executor pickles only the tiny wrapper — each worker re-attaches
    by ``mmap``-loading the file, so a pool on one machine shares a single
    physical copy of the arrays through the page cache instead of receiving
    one pickled copy each.
    """

    __slots__ = ("path", "_loaded")

    def __init__(self, path) -> None:
        self.path = str(path)
        self._loaded: Optional[object] = None

    def resolve(self) -> object:
        """The attached snapshot, mmap-loaded once per process."""
        if self._loaded is None:
            from ..storage.store import read_snapshot  # runtime must not hard-depend on storage

            self._loaded = read_snapshot(self.path)
        return self._loaded

    def __getstate__(self) -> str:
        return self.path  # the loaded snapshot never travels; workers re-attach

    def __setstate__(self, path: str) -> None:
        self.path = path
        self._loaded = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AttachByPath({self.path!r})"


def _resolve_shared(shared: Optional[object]) -> Optional[object]:
    return shared.resolve() if isinstance(shared, AttachByPath) else shared


def _set_worker_shared(payload: bytes) -> None:
    """Pool initializer for spawn-based pools: unpickle the shared payload."""
    global _WORKER_SHARED
    _WORKER_SHARED = _resolve_shared(pickle.loads(payload))


def _invoke_with_shared(fn: Callable[..., object], args: Tuple[object, ...]) -> object:
    """Run *fn* in a pool worker against the worker's shared payload."""
    return fn(_WORKER_SHARED, *args)


class Executor:
    """Common surface of the executors (see the module docstring contract)."""

    kind: str = "abstract"

    def __init__(self, workers: int) -> None:
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ExecutorError(f"workers must be an int >= 1, got {workers!r}")
        self.workers = workers

    def run_tasks(
        self,
        fn: Callable[..., object],
        batches: Sequence[Tuple[object, ...]],
        shared: Optional[object] = None,
    ) -> List[object]:
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """Runs every batch in the calling thread — the reference schedule."""

    kind = "serial"

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers)

    def run_tasks(
        self,
        fn: Callable[..., object],
        batches: Sequence[Tuple[object, ...]],
        shared: Optional[object] = None,
    ) -> List[object]:
        shared = _resolve_shared(shared)
        return [fn(shared, *args) for args in batches]


class ThreadExecutor(Executor):
    """Runs batches on a thread pool, preserving batch order in the results."""

    kind = "thread"

    def __init__(self, workers: int) -> None:
        super().__init__(workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    def run_tasks(
        self,
        fn: Callable[..., object],
        batches: Sequence[Tuple[object, ...]],
        shared: Optional[object] = None,
    ) -> List[object]:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-runtime"
            )
        shared = _resolve_shared(shared)
        futures: List[Future] = [
            self._pool.submit(fn, shared, *args) for args in batches
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor(Executor):
    """Runs batches on a process pool; the shared payload ships once.

    The pool is created lazily on the first ``run_tasks`` call and recreated
    whenever the ``shared`` object changes identity, so that workers hold the
    current payload (via fork inheritance where available, else via a pickled
    initializer argument).  Engines therefore publish their big invariant
    state once per run and pay per-task pickling only for the small per-batch
    arguments.
    """

    kind = "process"

    def __init__(self, workers: int) -> None:
        super().__init__(workers)
        self._pool: Optional[ProcessPoolExecutor] = None
        # strong reference: payload changes are detected with `is`, and the
        # reference keeps the object alive so its identity cannot be recycled
        self._shared: Optional[object] = None
        # (payload, pickled bytes) of the last serialized payload — survives
        # close(), so recreating a pool for an unchanged payload reuses the
        # bytes instead of re-pickling the (potentially large) object
        self._shared_bytes: Optional[Tuple[object, bytes]] = None
        #: times a shared payload was actually pickled / served from the cache
        self.payload_pickles = 0
        self.payload_reuses = 0

    def _serialize_shared(self, shared: Optional[object]) -> bytes:
        cached = self._shared_bytes
        if cached is not None and cached[0] is shared:
            self.payload_reuses += 1
            return cached[1]
        payload = pickle.dumps(shared)
        self._shared_bytes = (shared, payload)
        self.payload_pickles += 1
        return payload

    def _ensure_pool(self, shared: Optional[object]) -> None:
        if self._pool is not None and self._shared is shared:
            return
        self.close()
        try:
            import multiprocessing

            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = None
        # The payload travels through the pool initializer (pickled once per
        # worker, not per task).  Workers spawn lazily, so fork-time global
        # inheritance would be racy; initargs are captured at construction.
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=_set_worker_shared,
            initargs=(self._serialize_shared(shared),),
        )
        self._shared = shared

    def run_tasks(
        self,
        fn: Callable[..., object],
        batches: Sequence[Tuple[object, ...]],
        shared: Optional[object] = None,
    ) -> List[object]:
        self._ensure_pool(shared)
        assert self._pool is not None
        futures: List[Future] = [
            self._pool.submit(_invoke_with_shared, fn, tuple(args)) for args in batches
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._shared = None


def default_worker_count(processors: int) -> int:
    """Sensible real-worker default: simulated ``p`` capped at the machine."""
    return max(1, min(processors, os.cpu_count() or 1))


def create_executor(
    kind: Optional[str],
    workers: Optional[int] = None,
    *,
    processors: int = 1,
) -> Executor:
    """Build an executor from configuration strings.

    ``kind=None`` means "no parallelism requested" and returns a single-worker
    :class:`SerialExecutor`.  ``workers=None`` defaults to the simulated
    processor count capped at the machine's CPU count — the *same* default
    for every kind, so partition-count-sensitive schedules (the vertex-centric
    supersteps) stay identical when only the executor kind changes.
    """
    if kind is None:
        return SerialExecutor()
    if workers is None:
        workers = default_worker_count(processors)
    if kind == "serial":
        return SerialExecutor(workers)
    if kind == "thread":
        return ThreadExecutor(workers)
    if kind == "process":
        return ProcessExecutor(workers)
    raise ExecutorError(
        f"unknown executor kind {kind!r}; expected one of {', '.join(EXECUTOR_KINDS)}"
    )
