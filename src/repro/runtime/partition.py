"""Deterministic data partitioning shared by the execution substrates.

Two distinct needs, one module:

* **Stateless placement** (:func:`stable_hash`, :meth:`Partitioner.assign`) —
  the MapReduce shuffle and the vertex-centric cost model must map a key or a
  vertex to a worker *without seeing the other keys*, and the mapping must be
  identical in every process.  The builtin ``hash`` is salted per process
  (``PYTHONHASHSEED``), which silently breaks any multiprocess run — hence
  :func:`stable_hash`, a CRC-32 over a canonical repr.
* **Whole-set splitting** (:meth:`Partitioner.split`) — placing all vertices
  (or all input records) at once, where balance and locality matter.

Strategies:

* ``hash`` — stable hash placement; stateless, the shuffle-compatible default.
* ``chunk`` — contiguous, maximally balanced splits (Hadoop-style input
  splits); not stateless, best for one-shot record batches.
* ``fragment`` — locality-aware: items are grouped by an *affinity key* (for
  product-graph vertices: the first entity of the pair, so pairs touching the
  same entity — which exchange transitive-closure and dependency messages —
  land on one worker), and groups are packed onto workers by decreasing size,
  least-loaded first.

Every strategy is a total function of its inputs: each item is assigned to
exactly one partition and repeated calls yield identical results in any
process.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..exceptions import ExecutorError

#: The registered partitioner strategies, in documentation order.
PARTITIONER_KINDS: Tuple[str, ...] = ("hash", "chunk", "fragment")


def _canonical_repr(value: object) -> str:
    """A repr that is stable across processes for partitionable keys.

    ``repr`` alone is canonical for the identifiers the engines partition on
    (strings, numbers, tuples of those), but *unordered* collections render
    in hash-iteration order, which ``PYTHONHASHSEED`` salts per process —
    those are serialised in sorted element order here instead.  Containers
    recurse so a tuple wrapping a set is canonical too.
    """
    if isinstance(value, (set, frozenset)):
        inner = ", ".join(sorted(_canonical_repr(item) for item in value))
        return f"{type(value).__name__}({{{inner}}})"
    if isinstance(value, dict):
        items = sorted(
            (_canonical_repr(k), _canonical_repr(v)) for k, v in value.items()
        )
        return "{" + ", ".join(f"{k}: {v}" for k, v in items) + "}"
    if isinstance(value, tuple):
        inner = ", ".join(_canonical_repr(item) for item in value)
        return f"({inner},)" if len(value) == 1 else f"({inner})"
    if isinstance(value, list):
        return "[" + ", ".join(_canonical_repr(item) for item in value) + "]"
    return repr(value)


def stable_hash(value: object) -> int:
    """A process-stable, platform-stable hash of *value*.

    CRC-32 over a canonical repr — unlike the builtin ``hash`` it does not
    depend on ``PYTHONHASHSEED``, so two worker processes (or two runs)
    always agree on placement, including for keys containing unordered
    collections (see :func:`_canonical_repr`).
    """
    return zlib.crc32(_canonical_repr(value).encode("utf-8"))


class Partitioner:
    """Common surface of the partitioning strategies."""

    kind: str = "abstract"

    def __init__(self, num_partitions: int) -> None:
        if (
            not isinstance(num_partitions, int)
            or isinstance(num_partitions, bool)
            or num_partitions < 1
        ):
            raise ExecutorError(
                f"num_partitions must be an int >= 1, got {num_partitions!r}"
            )
        self.num_partitions = num_partitions

    def assign(self, item: Hashable) -> int:
        """The partition hosting *item* (stateless strategies only)."""
        raise ExecutorError(
            f"partitioner strategy {self.kind!r} has no stateless assignment; "
            f"use split() on the full item set"
        )

    def split(self, items: Sequence[Hashable]) -> List[List[Hashable]]:
        """Partition *items*: every item lands in exactly one part."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(num_partitions={self.num_partitions})"


class HashPartitioner(Partitioner):
    """Stable-hash placement: stateless, shuffle-compatible.

    ``key_fn`` optionally maps an item to the key actually hashed — the
    matching engines install
    :meth:`~repro.storage.snapshot.GraphSnapshot.placement_key` so vertex
    placement hashes interned integer ids instead of node reprs.
    """

    kind = "hash"

    def __init__(
        self,
        num_partitions: int,
        key_fn: Optional[Callable[[Hashable], Hashable]] = None,
    ) -> None:
        super().__init__(num_partitions)
        self._key_fn = key_fn

    def assign(self, item: Hashable) -> int:
        key = item if self._key_fn is None else self._key_fn(item)
        return stable_hash(key) % self.num_partitions

    def split(self, items: Sequence[Hashable]) -> List[List[Hashable]]:
        parts: List[List[Hashable]] = [[] for _ in range(self.num_partitions)]
        for item in items:
            parts[self.assign(item)].append(item)
        return parts


class ChunkPartitioner(Partitioner):
    """Contiguous, maximally balanced splits (part sizes differ by <= 1)."""

    kind = "chunk"

    def split(self, items: Sequence[Hashable]) -> List[List[Hashable]]:
        n, p = len(items), self.num_partitions
        base, extra = divmod(n, p)
        parts: List[List[Hashable]] = []
        start = 0
        for index in range(p):
            size = base + (1 if index < extra else 0)
            parts.append(list(items[start : start + size]))
            start += size
        return parts


class FragmentPartitioner(Partitioner):
    """Locality-aware splits: affinity groups packed least-loaded first.

    Items sharing an affinity key stay on one worker.  Groups are packed by
    decreasing size onto the currently least-loaded partition (LPT), so the
    imbalance is bounded by the largest affinity group: every partition load
    is < ideal + max_group_size.
    """

    kind = "fragment"

    def __init__(
        self,
        num_partitions: int,
        affinity: Optional[Callable[[Hashable], Hashable]] = None,
    ) -> None:
        super().__init__(num_partitions)
        self._affinity = affinity if affinity is not None else default_affinity

    def split(self, items: Sequence[Hashable]) -> List[List[Hashable]]:
        groups: Dict[Hashable, List[Hashable]] = {}
        for item in items:
            groups.setdefault(self._affinity(item), []).append(item)
        parts: List[List[Hashable]] = [[] for _ in range(self.num_partitions)]
        loads = [0] * self.num_partitions
        # decreasing size, stable-hash tiebreak: deterministic in any process
        ordered = sorted(
            groups.items(), key=lambda kv: (-len(kv[1]), stable_hash(kv[0]), repr(kv[0]))
        )
        for _, group in ordered:
            target = min(range(self.num_partitions), key=lambda i: (loads[i], i))
            parts[target].extend(group)
            loads[target] += len(group)
        return parts


def default_affinity(item: Hashable) -> Hashable:
    """Affinity of a product-graph vertex: co-locate pairs by first component."""
    if isinstance(item, tuple) and item:
        return item[0]
    return item


def create_partitioner(
    kind: Optional[str],
    num_partitions: int,
    *,
    affinity: Optional[Callable[[Hashable], Hashable]] = None,
    key_fn: Optional[Callable[[Hashable], Hashable]] = None,
) -> Partitioner:
    """Build a partitioner from configuration strings (``None`` -> hash).

    ``key_fn`` feeds :class:`HashPartitioner` (interned-id placement);
    ``affinity`` feeds :class:`FragmentPartitioner`.
    """
    if kind is None or kind == "hash":
        return HashPartitioner(num_partitions, key_fn=key_fn)
    if kind == "chunk":
        return ChunkPartitioner(num_partitions)
    if kind == "fragment":
        return FragmentPartitioner(num_partitions, affinity=affinity)
    raise ExecutorError(
        f"unknown partitioner strategy {kind!r}; "
        f"expected one of {', '.join(PARTITIONER_KINDS)}"
    )
