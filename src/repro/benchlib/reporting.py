"""Formatting of experiment results into paper-style tables.

The benchmarks print these tables (one per figure / table of the paper) so
``pytest benchmarks/ --benchmark-only`` output can be compared side by side
with Figure 8 and Table 2, and EXPERIMENTS.md records the same numbers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..matching.result import EMResult
from .harness import ExperimentResult


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: Optional[str] = None
) -> str:
    """Render a plain-text table with aligned columns."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)] if rows else [
        [str(h)] for h in headers
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def figure_table(
    result: ExperimentResult, unit: str = "sim s", include_wall: bool = False
) -> str:
    """A Fig. 8-style table: one row per sweep value, one column per algorithm.

    With ``include_wall=True`` every algorithm gets a second column with the
    *measured* wall-clock seconds of the run next to the simulated cluster
    seconds — the column that turns a Figure-8 sweep over a real executor
    into an actual speedup curve.
    """
    spec = result.spec
    headers: List[str] = [spec.parameter]
    for algo in spec.algorithms:
        headers.append(f"{algo} ({unit})")
        if include_wall:
            headers.append(f"{algo} (wall s)")
    rows: List[List[object]] = []
    for point in result.points:
        row: List[object] = [point.value]
        for algorithm in spec.algorithms:
            row.append(f"{point.seconds(algorithm):.2f}")
            if include_wall:
                row.append(f"{point.wall_seconds(algorithm):.3f}")
        rows.append(row)
    return format_table(headers, rows, title=spec.describe())


def speedup_summary(result: ExperimentResult) -> str:
    """Speedups over the sweep (e.g. "4.8x faster from p=4 to p=20").

    When the sweep ran on a real executor, each simulated speedup is followed
    by the measured wall-clock ratio of the same series.
    """
    spec = result.spec
    measured = spec.executor is not None
    parts = []
    for algorithm in spec.algorithms:
        entry = f"{algorithm}: {result.speedup(algorithm):.1f}x"
        if measured:
            entry += f" (wall {result.measured_speedup(algorithm):.1f}x)"
        parts.append(entry)
    return (
        f"{spec.experiment_id} speedup from {spec.parameter}={result.points[0].value} "
        f"to {spec.parameter}={result.points[-1].value}: " + ", ".join(parts)
    )


def candidate_table(
    rows: Mapping[str, Mapping[str, int]],
    title: str = "Table 2: candidate matches vs confirmed matches",
) -> str:
    """Table-2-style summary: candidates considered by EMOptVC / EMOptMR vs confirmed."""
    headers = ["Dataset", "Candidates (EMOptVC)", "Candidates (EMOptMR)", "Confirmed"]
    body = [
        [
            dataset,
            counts.get("candidates_vc", 0),
            counts.get("candidates_mr", 0),
            counts.get("confirmed", 0),
        ]
        for dataset, counts in rows.items()
    ]
    return format_table(headers, body, title=title)


def result_summary_table(results: Mapping[str, EMResult], title: str) -> str:
    """A per-algorithm summary (identified pairs, rounds, messages, seconds)."""
    headers = ["Algorithm", "Identified", "Rounds", "Messages", "Checks", "Sim seconds"]
    rows = [
        [
            name,
            result.num_identified,
            result.stats.rounds,
            result.stats.messages_sent,
            result.stats.checks,
            f"{result.simulated_seconds:.2f}",
        ]
        for name, result in results.items()
    ]
    return format_table(headers, rows, title=title)


def paper_expectation(note: str) -> str:
    """A one-line reminder of what the paper reports for the same experiment."""
    return f"paper reports: {note}"
