"""Experiment harness and reporting used by the ``benchmarks/`` suite."""

from .harness import (
    FIGURE8_ALGORITHMS,
    ExperimentResult,
    ExperimentSpec,
    SweepPoint,
    chain_sweep,
    processors_sweep,
    radius_sweep,
    run_experiment,
    scale_sweep,
)
from .reporting import (
    candidate_table,
    figure_table,
    format_table,
    paper_expectation,
    result_summary_table,
    speedup_summary,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "FIGURE8_ALGORITHMS",
    "SweepPoint",
    "candidate_table",
    "chain_sweep",
    "figure_table",
    "format_table",
    "paper_expectation",
    "processors_sweep",
    "radius_sweep",
    "result_summary_table",
    "run_experiment",
    "scale_sweep",
    "speedup_summary",
]
