"""Experiment harness: the parameter sweeps behind Figure 8 and Table 2.

Every experiment of Section 6 is a sweep of one knob (processors ``p``, graph
scale ``|G|``, chain length ``c`` or radius ``d``) over a fixed dataset and a
fixed set of algorithms, reporting simulated cluster seconds per algorithm.
The harness expresses each sweep as data (an :class:`ExperimentSpec`), runs
it, and returns an :class:`ExperimentResult` whose series can be printed next
to the corresponding sub-figure of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..api.session import MatchSession
from ..core.graph import Graph
from ..core.key import KeySet
from ..matching.result import EMResult

#: The algorithms of Fig. 8, in the paper's legend order.
FIGURE8_ALGORITHMS = ("EMVF2MR", "EMMR", "EMOptMR", "EMVC", "EMOptVC")

#: A dataset factory returns (graph, keys) for a given sweep point.
DatasetFactory = Callable[..., Tuple[Graph, KeySet]]


@dataclass(frozen=True)
class ExperimentSpec:
    """One sub-figure: a dataset, a knob to vary, and the algorithms to run."""

    experiment_id: str
    dataset_name: str
    parameter: str                      # "p", "scale", "c" or "d"
    values: Tuple[object, ...]
    dataset_factory: DatasetFactory
    algorithms: Tuple[str, ...] = FIGURE8_ALGORITHMS
    fixed: Dict[str, object] = field(default_factory=dict)
    #: per-algorithm backend options, e.g. {"EMOptVC": {"fanout": 8}}.
    algorithm_options: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    #: real execution runtime for every run of the sweep (None: classic path).
    executor: Optional[str] = None
    workers: Optional[int] = None

    def describe(self) -> str:
        fixed = ", ".join(f"{k}={v}" for k, v in sorted(self.fixed.items()))
        runtime = ""
        if self.executor is not None:
            workers = self.workers if self.workers is not None else "auto"
            runtime = f" [executor={self.executor}, workers={workers}]"
        return (
            f"{self.experiment_id}: {self.dataset_name}, varying {self.parameter} "
            f"over {list(self.values)}"
            + (f" ({fixed})" if fixed else "")
            + runtime
        )


@dataclass
class SweepPoint:
    """The results of all algorithms at one sweep value."""

    value: object
    results: Dict[str, EMResult] = field(default_factory=dict)

    def seconds(self, algorithm: str) -> float:
        return self.results[algorithm].simulated_seconds

    def wall_seconds(self, algorithm: str) -> float:
        """Measured wall-clock seconds of one algorithm at this point."""
        return self.results[algorithm].wall_seconds


@dataclass
class ExperimentResult:
    """The full series of one experiment."""

    spec: ExperimentSpec
    points: List[SweepPoint] = field(default_factory=list)

    def series(self, algorithm: str) -> List[Tuple[object, float]]:
        """(value, simulated seconds) pairs for one algorithm."""
        return [(point.value, point.seconds(algorithm)) for point in self.points]

    def wall_series(self, algorithm: str) -> List[Tuple[object, float]]:
        """(value, measured wall-clock seconds) pairs for one algorithm."""
        return [(point.value, point.wall_seconds(algorithm)) for point in self.points]

    def measured_speedup(self, algorithm: str) -> float:
        """Last-over-first wall-clock ratio of the series (measured, not simulated)."""
        series = self.wall_series(algorithm)
        if len(series) < 2 or series[-1][1] == 0:
            return 1.0
        return series[0][1] / series[-1][1]

    def speedup(self, algorithm: str) -> float:
        """Last-over-first ratio of the series (e.g. the p=4 → p=20 speedup)."""
        series = self.series(algorithm)
        if len(series) < 2 or series[-1][1] == 0:
            return 1.0
        return series[0][1] / series[-1][1]

    def consistent_pairs(self) -> bool:
        """All algorithms found the same identified pairs at every point."""
        for point in self.points:
            expected = None
            for result in point.results.values():
                pairs = result.pairs()
                if expected is None:
                    expected = pairs
                elif pairs != expected:
                    return False
        return True


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Run a sweep: one dataset instantiation and one matching run per point.

    All algorithms at one sweep point share a :class:`MatchSession`, so the
    candidate set, d-neighbourhood index and product graph are built once per
    point instead of once per algorithm.
    """
    outcome = ExperimentResult(spec=spec)
    for value in spec.values:
        parameters = dict(spec.fixed)
        parameters[spec.parameter] = value
        processors = int(parameters.pop("p", 4))
        graph, keys = spec.dataset_factory(**parameters)
        session = MatchSession(graph).with_keys(keys)
        point = SweepPoint(value=value)
        for algorithm in spec.algorithms:
            options = dict(spec.algorithm_options.get(algorithm, {}))
            # a per-algorithm "processors" entry overrides the sweep default
            point_processors = int(options.pop("processors", processors))
            point.results[algorithm] = session.run(
                algorithm,
                processors=point_processors,
                executor=spec.executor,
                workers=spec.workers,
                **options,
            )
        outcome.points.append(point)
    return outcome


def processors_sweep(
    experiment_id: str,
    dataset_name: str,
    dataset_factory: DatasetFactory,
    processors: Sequence[int] = (4, 8, 12, 16, 20),
    algorithms: Sequence[str] = FIGURE8_ALGORITHMS,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    **fixed: object,
) -> ExperimentSpec:
    """Exp-1 (Fig. 8 a/e/i): vary the number of processors."""
    return ExperimentSpec(
        experiment_id=experiment_id,
        dataset_name=dataset_name,
        parameter="p",
        values=tuple(processors),
        dataset_factory=dataset_factory,
        algorithms=tuple(algorithms),
        fixed=dict(fixed),
        executor=executor,
        workers=workers,
    )


def scale_sweep(
    experiment_id: str,
    dataset_name: str,
    dataset_factory: DatasetFactory,
    scales: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    algorithms: Sequence[str] = FIGURE8_ALGORITHMS,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    **fixed: object,
) -> ExperimentSpec:
    """Exp-2 (Fig. 8 b/f/j): vary the graph scale factor."""
    return ExperimentSpec(
        experiment_id=experiment_id,
        dataset_name=dataset_name,
        parameter="scale",
        values=tuple(scales),
        dataset_factory=dataset_factory,
        algorithms=tuple(algorithms),
        fixed=dict(fixed),
        executor=executor,
        workers=workers,
    )


def chain_sweep(
    experiment_id: str,
    dataset_name: str,
    dataset_factory: DatasetFactory,
    chains: Sequence[int] = (1, 2, 3, 4, 5),
    algorithms: Sequence[str] = FIGURE8_ALGORITHMS,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    **fixed: object,
) -> ExperimentSpec:
    """Exp-3 (Fig. 8 c/g/k): vary the dependency-chain length ``c``."""
    return ExperimentSpec(
        experiment_id=experiment_id,
        dataset_name=dataset_name,
        parameter="chain_length",
        values=tuple(chains),
        dataset_factory=dataset_factory,
        algorithms=tuple(algorithms),
        fixed=dict(fixed),
        executor=executor,
        workers=workers,
    )


def radius_sweep(
    experiment_id: str,
    dataset_name: str,
    dataset_factory: DatasetFactory,
    radii: Sequence[int] = (1, 2, 3, 4, 5),
    algorithms: Sequence[str] = FIGURE8_ALGORITHMS,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    **fixed: object,
) -> ExperimentSpec:
    """Exp-3 (Fig. 8 d/h/l): vary the key radius ``d``."""
    return ExperimentSpec(
        experiment_id=experiment_id,
        dataset_name=dataset_name,
        parameter="radius",
        values=tuple(radii),
        dataset_factory=dataset_factory,
        algorithms=tuple(algorithms),
        fixed=dict(fixed),
        executor=executor,
        workers=workers,
    )
