"""d-neighbourhood extraction (Section 4.1).

For an entity ``e`` and radius ``d`` (the maximum radius of the keys defined
on ``e``'s type), the *d-neighbour* ``G^d`` of ``e`` is the subgraph of ``G``
induced by the nodes within ``d`` hops of ``e``, ignoring edge direction.

The data-locality property exploited by the algorithms is that
``(G, Σ) |= (e1, e2)`` iff ``(G^d_1 ∪ G^d_2, Σ) |= (e1, e2)``, so the
per-pair isomorphism checks never need the whole graph.  To avoid copying
subgraphs for every candidate pair, the matching code usually works with
*node sets* (:func:`d_neighborhood_nodes`) used as a restriction on the
adjacency queries of the full graph; :func:`d_neighborhood_subgraph` builds
an explicit induced subgraph when one is needed.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Mapping, Optional, Set

from .graph import Graph
from .key import KeySet
from .triples import GraphNode


def d_neighborhood_nodes(graph: Graph, entity: str, radius: int) -> Set[GraphNode]:
    """Return the nodes within *radius* undirected hops of *entity*.

    The entity itself is always included (radius 0).
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    seen: Set[GraphNode] = {entity}
    if radius == 0:
        return seen
    queue: deque[tuple[GraphNode, int]] = deque([(entity, 0)])
    while queue:
        node, depth = queue.popleft()
        if depth == radius:
            continue
        for nbr in graph.neighbors(node):
            if nbr not in seen:
                seen.add(nbr)
                queue.append((nbr, depth + 1))
    return seen


def d_neighborhood_subgraph(graph: Graph, entity: str, radius: int) -> Graph:
    """Return the subgraph of *graph* induced by the d-neighbourhood of *entity*."""
    return graph.induced_subgraph(d_neighborhood_nodes(graph, entity, radius))


def radius_per_type(keys: KeySet) -> Dict[str, int]:
    """The neighbourhood radius to use for each keyed type.

    This is the maximum radius over the keys defined on the type, as in the
    construction of ``G^d`` in Section 4.1.
    """
    return {etype: keys.max_radius_for_type(etype) for etype in keys.target_types()}


class NeighborhoodIndex:
    """A cache of d-neighbourhood node sets for the entities of keyed types.

    Algorithm ``EMMR`` constructs d-neighbourhoods for all entities appearing
    in the candidate set and caches them across rounds (the paper caches them
    on worker disks, Haloop-style).  This index plays that role in-process,
    and also reports the total and maximum neighbourhood sizes, which feed the
    cost model and the optimization-effectiveness statistics.
    """

    def __init__(self, graph: Graph, keys: KeySet) -> None:
        self._graph = graph
        self._radius = radius_per_type(keys)
        self._cache: Dict[str, Set[GraphNode]] = {}

    @property
    def graph(self) -> Graph:
        return self._graph

    def radius_for(self, entity: str) -> int:
        """The radius used for *entity* (0 when its type has no keys)."""
        return self._radius.get(self._graph.entity_type(entity), 0)

    def nodes(self, entity: str) -> Set[GraphNode]:
        """The (cached) d-neighbourhood node set of *entity*."""
        cached = self._cache.get(entity)
        if cached is None:
            cached = d_neighborhood_nodes(self._graph, entity, self.radius_for(entity))
            self._cache[entity] = cached
        return cached

    def subgraph(self, entity: str) -> Graph:
        """The explicit induced d-neighbourhood subgraph of *entity*."""
        return self._graph.induced_subgraph(self.nodes(entity))

    def clone(self) -> "NeighborhoodIndex":
        """A copy sharing the already-computed node sets.

        The cache *entries* are shared (they are never mutated in place:
        :meth:`restrict` replaces them with fresh sets), so a clone lets one
        consumer reduce its neighbourhoods without staling the original —
        the mechanism :class:`~repro.api.session.MatchSession` uses to serve
        both reduced and unreduced algorithm families from one BFS pass.
        """
        twin = object.__new__(NeighborhoodIndex)
        twin._graph = self._graph
        twin._radius = dict(self._radius)
        twin._cache = dict(self._cache)
        return twin

    def evict(self, entity: str) -> None:
        """Drop the cached neighbourhood of *entity* (recomputed on demand)."""
        self._cache.pop(entity, None)

    def restrict(self, entity: str, allowed: Set[GraphNode]) -> None:
        """Shrink the cached neighbourhood of *entity* to ``allowed`` nodes.

        Used by the optimization of Section 4.2 that reduces ``(G^d_1, G^d_2)``
        to the nodes appearing in the maximum pairing relation.  The entity
        itself is always kept.
        """
        current = self.nodes(entity)
        self._cache[entity] = (current & allowed) | {entity}

    def precompute(self, entities: Iterable[str]) -> None:
        """Eagerly compute the neighbourhoods of *entities*."""
        for entity in entities:
            self.nodes(entity)

    def total_size(self) -> int:
        """Total number of nodes over all cached neighbourhoods."""
        return sum(len(nodes) for nodes in self._cache.values())

    def max_size(self) -> int:
        """Size of the largest cached neighbourhood (``|G^d_m|``)."""
        return max((len(nodes) for nodes in self._cache.values()), default=0)

    def cached_entities(self) -> Set[str]:
        return set(self._cache.keys())

    def __len__(self) -> int:
        return len(self._cache)
