"""Declarative semantics of keys: valuations, matches, coincidence and
satisfaction (Section 2).

This module is the *reference* semantics; it enumerates matches explicitly
(subgraph isomorphism from the pattern into the graph), checks whether two
matches coincide (``S1(e1) ≅Q S2(e2)``) and decides key satisfaction
``G |= Q(x)``.  It deliberately favours clarity over speed; the matching
algorithms of :mod:`repro.matching` use the guided, early-terminating check of
:mod:`repro.core.eval_guided` instead, and the cross-checks in the test suite
assert that the two agree.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..exceptions import UnknownEntityError
from .equivalence import EquivalenceRelation
from .graph import Graph
from .key import Key
from .pattern import GraphPattern, NodeKind, PatternNode, PatternTriple
from .triples import GraphNode, Literal, Triple, is_entity_ref

#: A valuation maps pattern-node names to graph nodes.
Valuation = Dict[str, GraphNode]


def _node_admissible(
    graph: Graph,
    node: PatternNode,
    candidate: GraphNode,
) -> bool:
    """Can *candidate* be the image of pattern node *node* (ignoring identity)?

    This checks the typing discipline of valuations (Section 2.1): entity-kind
    nodes map to entities of the node's type, value variables map to values,
    constants map to the exact value.
    """
    if node.kind is NodeKind.CONSTANT:
        return isinstance(candidate, Literal) and candidate.value == node.value
    if node.kind is NodeKind.VALUE_VAR:
        return isinstance(candidate, Literal)
    # entity kinds
    if not is_entity_ref(candidate) or not graph.has_entity(candidate):
        return False
    return graph.entity_type(candidate) == node.etype


def _candidate_images(
    graph: Graph,
    pattern: GraphPattern,
    node: PatternNode,
    valuation: Valuation,
    restrict: Optional[Set[GraphNode]],
) -> Set[GraphNode]:
    """Graph nodes that could extend *valuation* at *node*.

    Candidates are generated from the pattern triples connecting *node* to
    already-instantiated nodes (guided expansion); when no such triple exists
    the node is unconstrained so far and all admissible graph nodes are
    candidates (this only happens transiently because patterns are connected
    and the search instantiates nodes in a connected order).
    """
    candidates: Optional[Set[GraphNode]] = None
    for triple in pattern.adjacent_triples(node.name):
        if triple.subject.name == node.name and triple.obj.name in valuation:
            other = valuation[triple.obj.name]
            found: Set[GraphNode] = set(graph.subjects(triple.predicate, other))
        elif triple.obj.name == node.name and triple.subject.name in valuation:
            other = valuation[triple.subject.name]
            if not is_entity_ref(other):
                return set()
            found = set(graph.objects(other, triple.predicate))
        else:
            continue
        candidates = found if candidates is None else (candidates & found)
        if not candidates:
            return set()
    if candidates is None:
        # unconstrained: fall back to all nodes of the right kind
        if node.kind in (NodeKind.VALUE_VAR, NodeKind.CONSTANT):
            candidates = set(graph.value_nodes())
        else:
            candidates = set(graph.entities_of_type(node.etype or ""))
    if restrict is not None:
        candidates = candidates & restrict
    return {c for c in candidates if _node_admissible(graph, node, c)}


def _search_order(pattern: GraphPattern) -> List[PatternNode]:
    """A connected instantiation order starting from the designated variable."""
    order = [pattern.designated]
    placed = {pattern.designated.name}
    remaining = {n.name: n for n in pattern.nodes() if n.name not in placed}
    while remaining:
        progressed = False
        for name, node in sorted(remaining.items()):
            for triple in pattern.adjacent_triples(name):
                other = (
                    triple.obj.name if triple.subject.name == name else triple.subject.name
                )
                if other in placed:
                    order.append(node)
                    placed.add(name)
                    del remaining[name]
                    progressed = True
                    break
            if progressed:
                break
        if not progressed:  # pragma: no cover - patterns are validated connected
            order.extend(remaining.values())
            break
    return order


def find_matches(
    graph: Graph,
    pattern: GraphPattern,
    at_entity: str,
    restrict: Optional[Set[GraphNode]] = None,
    limit: Optional[int] = None,
    work_counter: Optional[Dict[str, int]] = None,
) -> List[Valuation]:
    """Enumerate the valuations witnessing that *graph* matches *pattern* at
    *at_entity*.

    Each returned valuation is a bijection between the pattern nodes and a set
    of graph nodes (node-injective), mapping the designated variable to
    *at_entity*, and such that every pattern triple has its image in the
    graph — i.e. a subgraph isomorphism in the sense of Section 2.1.

    ``restrict`` optionally confines images to a node set (for example a
    d-neighbourhood); ``limit`` stops the enumeration early; ``work_counter``
    (a dict) accumulates ``"candidates"`` and ``"matches"`` counts so callers
    such as the ``EMVF2MR`` baseline can charge the enumeration cost to the
    simulated-cluster cost model.
    """
    if not graph.has_entity(at_entity):
        raise UnknownEntityError(at_entity)
    designated = pattern.designated
    if graph.entity_type(at_entity) != designated.etype:
        return []
    if restrict is not None and at_entity not in restrict:
        return []

    order = _search_order(pattern)
    matches: List[Valuation] = []
    valuation: Valuation = {designated.name: at_entity}
    used: Set[GraphNode] = {at_entity}

    def count(field: str, amount: int = 1) -> None:
        if work_counter is not None:
            work_counter[field] = work_counter.get(field, 0) + amount

    def backtrack(position: int) -> bool:
        """Return True when the enumeration should stop (limit reached)."""
        if position == len(order):
            matches.append(dict(valuation))
            count("matches")
            return limit is not None and len(matches) >= limit
        node = order[position]
        for candidate in sorted(
            _candidate_images(graph, pattern, node, valuation, restrict), key=repr
        ):
            count("candidates")
            if candidate in used:
                continue
            valuation[node.name] = candidate
            used.add(candidate)
            stop = backtrack(position + 1)
            del valuation[node.name]
            used.discard(candidate)
            if stop:
                return True
        return False

    backtrack(1)
    return matches


def has_match(
    graph: Graph,
    pattern: GraphPattern,
    at_entity: str,
    restrict: Optional[Set[GraphNode]] = None,
) -> bool:
    """True when *graph* matches *pattern* at *at_entity*."""
    return bool(find_matches(graph, pattern, at_entity, restrict=restrict, limit=1))


def match_triples(pattern: GraphPattern, valuation: Valuation) -> Set[Triple]:
    """The match ``S``: the image of the pattern triples under *valuation*."""
    image: Set[Triple] = set()
    for triple in pattern.triples:
        subject = valuation[triple.subject.name]
        obj = valuation[triple.obj.name]
        assert is_entity_ref(subject)
        image.add(Triple(subject, triple.predicate, obj))
    return image


def coincides(
    pattern: GraphPattern,
    valuation1: Valuation,
    valuation2: Valuation,
    eq: Optional[EquivalenceRelation] = None,
) -> bool:
    """Do the matches under *valuation1* and *valuation2* coincide?

    Implements ``S1(e1) ≅Q S2(e2)`` (and its chase variant ``≅^Eq_Q`` when an
    equivalence relation is supplied): entity variables other than ``x`` must
    map to identified entities, value variables must map to equal values;
    wildcards and the designated variable are unconstrained.
    """
    for node in pattern.nodes():
        v1 = valuation1[node.name]
        v2 = valuation2[node.name]
        if node.kind is NodeKind.ENTITY_VAR:
            assert is_entity_ref(v1) and is_entity_ref(v2)
            if eq is None:
                if v1 != v2:
                    return False
            elif not eq.identified(v1, v2):
                return False
        elif node.kind is NodeKind.VALUE_VAR:
            if v1 != v2:
                return False
        # DESIGNATED, WILDCARD: no constraint; CONSTANT: equal by construction.
    return True


def identify_pair_by_enumeration(
    graph: Graph,
    key: Key,
    e1: str,
    e2: str,
    eq: Optional[EquivalenceRelation] = None,
    restrict1: Optional[Set[GraphNode]] = None,
    restrict2: Optional[Set[GraphNode]] = None,
    work_counter: Optional[Dict[str, int]] = None,
) -> bool:
    """The naive per-pair check used by the ``EMVF2MR`` baseline.

    Enumerates *all* matches of the key's pattern at ``e1`` and at ``e2``
    (full VF2-style enumeration, no early termination) and then tests every
    pair of matches for coincidence.
    """
    pattern = key.pattern
    matches1 = find_matches(graph, pattern, e1, restrict=restrict1, work_counter=work_counter)
    if not matches1:
        return False
    matches2 = find_matches(graph, pattern, e2, restrict=restrict2, work_counter=work_counter)
    if not matches2:
        return False
    for val1, val2 in itertools.product(matches1, matches2):
        if work_counter is not None:
            work_counter["coincidence_checks"] = work_counter.get("coincidence_checks", 0) + 1
        if coincides(pattern, val1, val2, eq=eq):
            return True
    return False


def violations(graph: Graph, key: Key, limit: Optional[int] = None) -> List[Tuple[str, str]]:
    """Pairs of *distinct* entities with coinciding matches of *key*.

    These are the witnesses of ``G ⊭ Q(x)``: by the key's semantics each such
    pair refers to the same real-world entity (one of the two is a duplicate).
    """
    pattern = key.pattern
    found: List[Tuple[str, str]] = []
    entities = graph.entities_of_type(key.target_type)
    per_entity: Dict[str, List[Valuation]] = {}
    for entity in entities:
        per_entity[entity] = find_matches(graph, pattern, entity)
    for e1, e2 in itertools.combinations(entities, 2):
        for val1, val2 in itertools.product(per_entity[e1], per_entity[e2]):
            if coincides(pattern, val1, val2):
                found.append((e1, e2))
                break
        if limit is not None and len(found) >= limit:
            return found
    return found


def satisfies(graph: Graph, key: Key) -> bool:
    """``G |= Q(x)``: no two distinct entities are identified by the key."""
    return not violations(graph, key, limit=1)
