"""Proof graphs: verifiable witnesses of ``(G, Σ) |= (e1, e2)`` (Theorem 2).

The NP upper bound of Theorem 2 rests on *proof graphs*: DAGs whose nodes are
identified entity pairs, each annotated with the key that identified it and
edges to the prerequisite pairs its witness relied on.  A proof graph with at
most ``N²`` nodes exists whenever a pair is identified, and checking that a
candidate DAG is a valid proof takes polynomial time.

This module turns chase provenance (:class:`~repro.core.chase.ChaseStep`)
into proof graphs and verifies them independently of the chase: verification
re-checks every step with the guided evaluator against an ``Eq`` consisting
only of previously verified pairs, so a forged or cyclic proof is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..exceptions import ProofError
from .chase import ChaseResult, ChaseStep
from .equivalence import EquivalenceRelation, Pair, canonical_pair
from .eval_guided import GuidedPairEvaluator
from .graph import Graph
from .key import Key, KeySet


@dataclass(frozen=True)
class ProofNode:
    """One node of a proof graph: *pair* identified by *key_name* given *prerequisites*."""

    pair: Pair
    key_name: str
    prerequisites: Tuple[Pair, ...] = ()


@dataclass
class ProofGraph:
    """A DAG of :class:`ProofNode` indexed by the pair they identify."""

    nodes: Dict[Pair, ProofNode] = field(default_factory=dict)

    def add(self, node: ProofNode) -> None:
        self.nodes[node.pair] = node

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, pair: object) -> bool:
        return pair in self.nodes

    def pairs(self) -> Set[Pair]:
        return set(self.nodes.keys())

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    def topological_order(self) -> List[ProofNode]:
        """Nodes ordered so prerequisites come before dependents.

        Raises :class:`ProofError` when the prerequisite structure is cyclic
        (a cyclic "proof" proves nothing).
        """
        order: List[ProofNode] = []
        state: Dict[Pair, int] = {}  # 0 unvisited, 1 on stack, 2 done

        def visit(pair: Pair) -> None:
            node = self.nodes.get(pair)
            if node is None:
                return  # prerequisite proven elsewhere (e.g. trivially) — checked later
            status = state.get(pair, 0)
            if status == 1:
                raise ProofError(f"proof graph has a cyclic dependency through {pair}")
            if status == 2:
                return
            state[pair] = 1
            for prerequisite in node.prerequisites:
                visit(prerequisite)
            state[pair] = 2
            order.append(node)

        for pair in self.nodes:
            visit(pair)
        return order

    def restricted_to(self, target: Pair) -> "ProofGraph":
        """The sub-proof needed to establish *target* (its prerequisite closure)."""
        target = canonical_pair(*target)
        needed: Set[Pair] = set()
        frontier = [target]
        while frontier:
            pair = frontier.pop()
            if pair in needed:
                continue
            needed.add(pair)
            node = self.nodes.get(pair)
            if node is not None:
                frontier.extend(node.prerequisites)
        sub = ProofGraph()
        for pair in needed:
            if pair in self.nodes:
                sub.add(self.nodes[pair])
        return sub


def proof_from_chase(result: ChaseResult) -> ProofGraph:
    """Build a proof graph from the provenance recorded by the chase.

    Only directly identified pairs get a node; pairs identified purely by
    transitivity are implied by the equivalence closure of the proven pairs.
    """
    proof = ProofGraph()
    for step in result.steps:
        proof.add(
            ProofNode(
                pair=step.pair,
                key_name=step.key_name,
                prerequisites=step.prerequisites,
            )
        )
    return proof


def verify_proof(
    graph: Graph,
    keys: KeySet,
    proof: ProofGraph,
    target: Optional[Pair] = None,
) -> bool:
    """Verify a proof graph in polynomial time.

    Every node is re-checked with the guided evaluator against an ``Eq`` that
    contains only previously verified pairs; prerequisites that have no node
    in the proof must already follow from verified pairs by transitivity.

    Returns True when the proof is valid (and, when *target* is given, when
    the target pair follows from the proof); raises :class:`ProofError` with
    a description of the first offending node otherwise.
    """
    evaluator = GuidedPairEvaluator(graph)
    eq = EquivalenceRelation(graph.entity_ids())
    order = proof.topological_order()
    for node in order:
        for prerequisite in node.prerequisites:
            p1, p2 = prerequisite
            if not eq.identified(p1, p2):
                raise ProofError(
                    f"step for {node.pair} relies on unproven prerequisite {prerequisite}"
                )
        try:
            key = keys.by_name(node.key_name)
        except Exception as exc:
            raise ProofError(
                f"step for {node.pair} references unknown key {node.key_name!r}"
            ) from exc
        e1, e2 = node.pair
        if not evaluator.identify(key, e1, e2, eq):
            raise ProofError(
                f"key {node.key_name!r} does not identify {node.pair} "
                "given the previously verified pairs"
            )
        eq.merge(e1, e2)
    if target is not None:
        t1, t2 = canonical_pair(*target)
        if not eq.identified(t1, t2):
            raise ProofError(f"proof does not establish the target pair {(t1, t2)}")
    return True


def explain(
    graph: Graph, keys: KeySet, result: ChaseResult, e1: str, e2: str
) -> List[ProofNode]:
    """A human-oriented explanation of why ``(e1, e2)`` was identified.

    Returns the topologically ordered sub-proof establishing the pair; an
    empty list when the pair was not identified (or only by transitivity with
    no direct step, in which case the full proof of its class is returned).
    """
    if not result.identified(e1, e2):
        return []
    proof = proof_from_chase(result)
    target = canonical_pair(e1, e2)
    if target in proof:
        return proof.restricted_to(target).topological_order()
    # identified by transitivity: return every step touching the class
    cls = result.eq.class_of(e1)
    relevant = ProofGraph()
    for pair, node in proof.nodes.items():
        if pair[0] in cls or pair[1] in cls:
            for needed in proof.restricted_to(pair).nodes.values():
                relevant.add(needed)
    return relevant.topological_order()
