"""Guided, early-terminating per-pair check (procedure ``EvalMR``, Section 4.1).

Checking whether a pair ``(e1, e2)`` is identified by a key ``Q(x)`` naively
requires enumerating all matches of ``Q(x)`` at ``e1`` and at ``e2`` and then
testing coincidence — two exponential-cost subgraph-isomorphism enumerations.
``EvalMR`` instead instantiates the pattern nodes with *pairs* ``(s1, s2)``
drawn from the two d-neighbourhoods simultaneously, enforcing the coincidence
conditions on the fly, and stops as soon as one full instantiation is found.

The vector ``m`` of the paper maps each pattern node to a pair (or ⊥); the
feasibility conditions are:

* **Injective** — neither component of the candidate pair appears in ``m``
  on its side already.
* **Equality** — entity variables ``y`` require ``(s1, s2) ∈ Eq``; value
  variables require ``s1 = s2`` (values); wildcards require two entities of
  the node's type; constants require ``s1 = s2 = d``.
* **Guided expansion** — for every pattern triple incident to the node whose
  other endpoint is instantiated, the corresponding edges must exist in both
  neighbourhoods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .equivalence import EquivalenceRelation
from .graph import Graph
from .key import Key
from .pattern import GraphPattern, NodeKind, PatternNode
from .triples import GraphNode, Literal, is_entity_ref

#: The instantiation vector maps pattern-node names to pairs of graph nodes.
PairAssignment = Dict[str, Tuple[GraphNode, GraphNode]]


@dataclass
class EvalStatistics:
    """Work counters reported by the guided evaluation.

    These counters are consumed by the simulated-cluster cost models and by
    the optimization-effectiveness reports (Exp-1 of the paper).
    """

    calls: int = 0
    feasibility_checks: int = 0
    expansions: int = 0
    backtracks: int = 0
    successes: int = 0

    def merge(self, other: "EvalStatistics") -> None:
        self.calls += other.calls
        self.feasibility_checks += other.feasibility_checks
        self.expansions += other.expansions
        self.backtracks += other.backtracks
        self.successes += other.successes

    @property
    def work(self) -> int:
        """A single scalar work measure (used by the cost models)."""
        return self.feasibility_checks + self.expansions + self.calls


class GuidedPairEvaluator:
    """Evaluates ``(G^d_1 ∪ G^d_2, Eq, Σ) |= (e1, e2)`` key by key.

    One evaluator is typically shared by a whole algorithm run so that its
    :class:`EvalStatistics` accumulate the total guided-search work.
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self.stats = EvalStatistics()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def identify(
        self,
        key: Key,
        e1: str,
        e2: str,
        eq: EquivalenceRelation,
        neighborhood1: Optional[Set[GraphNode]] = None,
        neighborhood2: Optional[Set[GraphNode]] = None,
    ) -> bool:
        """True when the single key identifies ``(e1, e2)`` under ``Eq``.

        ``neighborhood1`` / ``neighborhood2`` restrict the nodes considered on
        each side (the d-neighbourhoods ``G^d_1`` and ``G^d_2``); ``None``
        means the whole graph.
        """
        return (
            self.identify_with_witness(key, e1, e2, eq, neighborhood1, neighborhood2)
            is not None
        )

    def identify_with_witness(
        self,
        key: Key,
        e1: str,
        e2: str,
        eq: EquivalenceRelation,
        neighborhood1: Optional[Set[GraphNode]] = None,
        neighborhood2: Optional[Set[GraphNode]] = None,
    ) -> Optional[PairAssignment]:
        """Like :meth:`identify` but return the witnessing instantiation ``m``.

        The returned mapping sends every pattern-node name to the pair of
        graph nodes it was instantiated with; ``None`` when the key does not
        identify the pair.  The witness is what proof graphs record.
        """
        self.stats.calls += 1
        graph = self._graph
        pattern = key.pattern
        designated = pattern.designated
        if not graph.has_entity(e1) or not graph.has_entity(e2):
            return None
        if graph.entity_type(e1) != designated.etype:
            return None
        if graph.entity_type(e2) != designated.etype:
            return None

        assignment: PairAssignment = {designated.name: (e1, e2)}
        used1: Set[GraphNode] = {e1}
        used2: Set[GraphNode] = {e2}
        order = self._instantiation_order(pattern)
        found = self._extend(
            pattern, order, 1, assignment, used1, used2, eq, neighborhood1, neighborhood2
        )
        if not found:
            return None
        self.stats.successes += 1
        return dict(assignment)

    def identify_with_any(
        self,
        keys: List[Key],
        e1: str,
        e2: str,
        eq: EquivalenceRelation,
        neighborhood1: Optional[Set[GraphNode]] = None,
        neighborhood2: Optional[Set[GraphNode]] = None,
    ) -> Optional[Key]:
        """Return the first key of *keys* identifying ``(e1, e2)``, else None."""
        for key in keys:
            if self.identify(key, e1, e2, eq, neighborhood1, neighborhood2):
                return key
        return None

    # ------------------------------------------------------------------ #
    # search internals
    # ------------------------------------------------------------------ #

    @staticmethod
    def _instantiation_order(pattern: GraphPattern) -> List[PatternNode]:
        """A connected order over pattern nodes, starting from ``x``.

        Value-kind nodes adjacent to already-placed nodes are preferred so
        that cheap equality conditions prune the search early.
        """
        order: List[PatternNode] = [pattern.designated]
        placed = {pattern.designated.name}
        remaining = {n.name: n for n in pattern.nodes() if n.name not in placed}
        while remaining:
            frontier: List[PatternNode] = []
            for name, node in remaining.items():
                for triple in pattern.adjacent_triples(name):
                    other = (
                        triple.obj.name
                        if triple.subject.name == name
                        else triple.subject.name
                    )
                    if other in placed:
                        frontier.append(node)
                        break
            if not frontier:  # pragma: no cover - patterns are connected
                frontier = list(remaining.values())
            frontier.sort(key=lambda n: (not n.is_value, not n.is_constant, n.name))
            chosen = frontier[0]
            order.append(chosen)
            placed.add(chosen.name)
            del remaining[chosen.name]
        return order

    def _extend(
        self,
        pattern: GraphPattern,
        order: List[PatternNode],
        position: int,
        assignment: PairAssignment,
        used1: Set[GraphNode],
        used2: Set[GraphNode],
        eq: EquivalenceRelation,
        neighborhood1: Optional[Set[GraphNode]],
        neighborhood2: Optional[Set[GraphNode]],
    ) -> bool:
        if position == len(order):
            return True
        node = order[position]
        for n1, n2 in self._candidate_pairs(
            pattern, node, assignment, neighborhood1, neighborhood2
        ):
            self.stats.feasibility_checks += 1
            if n1 in used1 or n2 in used2:
                continue
            if not self._equality_ok(node, n1, n2, eq):
                continue
            if not self._expansion_ok(pattern, node, n1, n2, assignment):
                continue
            assignment[node.name] = (n1, n2)
            used1.add(n1)
            used2.add(n2)
            self.stats.expansions += 1
            if self._extend(
                pattern,
                order,
                position + 1,
                assignment,
                used1,
                used2,
                eq,
                neighborhood1,
                neighborhood2,
            ):
                return True
            del assignment[node.name]
            used1.discard(n1)
            used2.discard(n2)
            self.stats.backtracks += 1
        return False

    def _candidate_pairs(
        self,
        pattern: GraphPattern,
        node: PatternNode,
        assignment: PairAssignment,
        neighborhood1: Optional[Set[GraphNode]],
        neighborhood2: Optional[Set[GraphNode]],
    ) -> List[Tuple[GraphNode, GraphNode]]:
        """Candidate pairs for *node*, guided by instantiated neighbours."""
        graph = self._graph
        candidates1: Optional[Set[GraphNode]] = None
        candidates2: Optional[Set[GraphNode]] = None
        for triple in pattern.adjacent_triples(node.name):
            if triple.subject.name == node.name and triple.obj.name in assignment:
                o1, o2 = assignment[triple.obj.name]
                found1: Set[GraphNode] = set(graph.subjects(triple.predicate, o1))
                found2: Set[GraphNode] = set(graph.subjects(triple.predicate, o2))
            elif triple.obj.name == node.name and triple.subject.name in assignment:
                s1, s2 = assignment[triple.subject.name]
                if not (is_entity_ref(s1) and is_entity_ref(s2)):
                    return []
                found1 = set(graph.objects(s1, triple.predicate))
                found2 = set(graph.objects(s2, triple.predicate))
            else:
                continue
            candidates1 = found1 if candidates1 is None else candidates1 & found1
            candidates2 = found2 if candidates2 is None else candidates2 & found2
            if not candidates1 or not candidates2:
                return []
        if candidates1 is None or candidates2 is None:
            # No instantiated neighbour yet; since the order is connected this
            # only happens for the designated node, which is pre-assigned.
            return []
        if neighborhood1 is not None:
            candidates1 &= neighborhood1
        if neighborhood2 is not None:
            candidates2 &= neighborhood2
        pairs = [(n1, n2) for n1 in candidates1 for n2 in candidates2]
        pairs.sort(key=repr)
        return pairs

    def _equality_ok(
        self,
        node: PatternNode,
        n1: GraphNode,
        n2: GraphNode,
        eq: EquivalenceRelation,
    ) -> bool:
        """The 'Equality' feasibility condition of ``EvalMR``."""
        graph = self._graph
        if node.kind is NodeKind.CONSTANT:
            return (
                isinstance(n1, Literal)
                and isinstance(n2, Literal)
                and n1.value == node.value
                and n2.value == node.value
            )
        if node.kind is NodeKind.VALUE_VAR:
            return isinstance(n1, Literal) and isinstance(n2, Literal) and n1 == n2
        # entity kinds
        if not (is_entity_ref(n1) and is_entity_ref(n2)):
            return False
        if not (graph.has_entity(n1) and graph.has_entity(n2)):
            return False
        if graph.entity_type(n1) != node.etype or graph.entity_type(n2) != node.etype:
            return False
        if node.kind is NodeKind.ENTITY_VAR:
            return eq.identified(n1, n2)
        # WILDCARD (and DESIGNATED, which is never re-instantiated)
        return True

    def _expansion_ok(
        self,
        pattern: GraphPattern,
        node: PatternNode,
        n1: GraphNode,
        n2: GraphNode,
        assignment: PairAssignment,
    ) -> bool:
        """The 'Guided expansion' feasibility condition of ``EvalMR``."""
        graph = self._graph
        for triple in pattern.adjacent_triples(node.name):
            if triple.subject.name == node.name and triple.obj.name in assignment:
                o1, o2 = assignment[triple.obj.name]
                if not (
                    is_entity_ref(n1)
                    and is_entity_ref(n2)
                    and graph.has_triple(n1, triple.predicate, o1)
                    and graph.has_triple(n2, triple.predicate, o2)
                ):
                    return False
            elif triple.obj.name == node.name and triple.subject.name in assignment:
                s1, s2 = assignment[triple.subject.name]
                if not (
                    is_entity_ref(s1)
                    and is_entity_ref(s2)
                    and graph.has_triple(s1, triple.predicate, n1)
                    and graph.has_triple(s2, triple.predicate, n2)
                ):
                    return False
        return True
