"""Core data model and reference semantics for keys for graphs.

This subpackage contains everything that does not depend on a particular
execution substrate: the graph and pattern model, keys, the declarative
matching semantics, the guided per-pair check, the pairing relation, the
sequential chase, proof graphs and the textual DSL.
"""

from .chase import ChaseResult, ChaseStep, candidate_pairs, chase, entities_identified
from .equivalence import EquivalenceRelation, canonical_pair
from .eval_guided import EvalStatistics, GuidedPairEvaluator
from .graph import Graph, merge_graphs
from .key import Key, KeySet
from .matching import (
    coincides,
    find_matches,
    has_match,
    identify_pair_by_enumeration,
    match_triples,
    satisfies,
    violations,
)
from .neighborhood import (
    NeighborhoodIndex,
    d_neighborhood_nodes,
    d_neighborhood_subgraph,
    radius_per_type,
)
from .pairing import (
    can_pair,
    can_pair_with_any,
    pairing_relation,
    pairing_support_nodes,
    reduced_neighborhoods,
)
from .parser import (
    load_graph,
    load_keys,
    parse_graph,
    parse_keys,
    save_graph,
    save_keys,
    serialize_graph,
    serialize_keys,
)
from .pattern import (
    GraphPattern,
    NodeKind,
    PatternNode,
    PatternTriple,
    constant,
    designated,
    entity_var,
    value_var,
    wildcard,
)
from .proof_graph import ProofGraph, ProofNode, explain, proof_from_chase, verify_proof
from .triples import Entity, Literal, Triple

__all__ = [
    "ChaseResult",
    "ChaseStep",
    "Entity",
    "EquivalenceRelation",
    "EvalStatistics",
    "Graph",
    "GraphPattern",
    "GuidedPairEvaluator",
    "Key",
    "KeySet",
    "Literal",
    "NeighborhoodIndex",
    "NodeKind",
    "PatternNode",
    "PatternTriple",
    "ProofGraph",
    "ProofNode",
    "Triple",
    "can_pair",
    "can_pair_with_any",
    "candidate_pairs",
    "canonical_pair",
    "chase",
    "coincides",
    "constant",
    "d_neighborhood_nodes",
    "d_neighborhood_subgraph",
    "designated",
    "entities_identified",
    "entity_var",
    "explain",
    "find_matches",
    "has_match",
    "identify_pair_by_enumeration",
    "load_graph",
    "load_keys",
    "match_triples",
    "merge_graphs",
    "pairing_relation",
    "pairing_support_nodes",
    "parse_graph",
    "parse_keys",
    "proof_from_chase",
    "radius_per_type",
    "reduced_neighborhoods",
    "satisfies",
    "save_graph",
    "save_keys",
    "serialize_graph",
    "serialize_keys",
    "value_var",
    "verify_proof",
    "violations",
    "wildcard",
]
