"""Graph patterns ``Q(x)``: the syntax of keys for graphs (Section 2.1).

A pattern is a connected set of pattern triples ``(s_Q, p_Q, o_Q)`` over
pattern nodes of five kinds:

* ``DESIGNATED`` — the designated entity variable ``x`` (exactly one per
  pattern); it denotes the entity to be identified and carries a type.
* ``ENTITY_VAR`` — entity variables ``y``; matching enforces *node identity*
  (for keys: the matched entities must already be identified), making the
  key *recursively defined*.
* ``VALUE_VAR`` — value variables ``y*``; matching enforces *value equality*.
* ``WILDCARD`` — wildcards ``ȳ``; only the existence of an entity of the
  right type is required, its identity is irrelevant.
* ``CONSTANT`` — a constant value ``d``; the matched object must equal ``d``.

Subjects of pattern triples are always entities (``DESIGNATED``,
``ENTITY_VAR`` or ``WILDCARD``); objects may be of any kind.
"""

from __future__ import annotations

import itertools
from collections import defaultdict, deque
from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Iterator, List, NamedTuple, Optional, Set, Tuple

from ..exceptions import PatternError


class NodeKind(Enum):
    """The five kinds of pattern node."""

    DESIGNATED = "designated"
    ENTITY_VAR = "entity_var"
    VALUE_VAR = "value_var"
    WILDCARD = "wildcard"
    CONSTANT = "constant"


#: Kinds whose matches are entities.
ENTITY_KINDS: FrozenSet[NodeKind] = frozenset(
    {NodeKind.DESIGNATED, NodeKind.ENTITY_VAR, NodeKind.WILDCARD}
)

#: Kinds whose matches are data values.
VALUE_KINDS: FrozenSet[NodeKind] = frozenset({NodeKind.VALUE_VAR, NodeKind.CONSTANT})


@dataclass(frozen=True, slots=True)
class PatternNode:
    """A node of a graph pattern.

    ``name`` identifies the node within its pattern (two occurrences of the
    same name denote the same node).  ``etype`` is required for entity kinds
    and must be ``None`` for value kinds.  ``value`` is only meaningful for
    constants.
    """

    name: str
    kind: NodeKind
    etype: Optional[str] = None
    value: object = None

    def __post_init__(self) -> None:
        if not self.name:
            raise PatternError("pattern node name must be non-empty")
        if self.kind in ENTITY_KINDS and not self.etype:
            raise PatternError(
                f"pattern node {self.name!r} of kind {self.kind.value} needs an entity type"
            )
        if self.kind in VALUE_KINDS and self.etype is not None:
            raise PatternError(
                f"pattern node {self.name!r} of kind {self.kind.value} must not carry a type"
            )
        if self.kind is NodeKind.CONSTANT and self.value is None:
            raise PatternError(f"constant node {self.name!r} must carry a value")

    # -- convenience predicates ---------------------------------------- #

    @property
    def is_entity(self) -> bool:
        """True when matches of this node are entities."""
        return self.kind in ENTITY_KINDS

    @property
    def is_value(self) -> bool:
        """True when matches of this node are data values."""
        return self.kind in VALUE_KINDS

    @property
    def is_designated(self) -> bool:
        return self.kind is NodeKind.DESIGNATED

    @property
    def is_entity_variable(self) -> bool:
        return self.kind is NodeKind.ENTITY_VAR

    @property
    def is_value_variable(self) -> bool:
        return self.kind is NodeKind.VALUE_VAR

    @property
    def is_wildcard(self) -> bool:
        return self.kind is NodeKind.WILDCARD

    @property
    def is_constant(self) -> bool:
        return self.kind is NodeKind.CONSTANT

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind is NodeKind.CONSTANT:
            return f"{self.value!r}"
        if self.kind is NodeKind.VALUE_VAR:
            return f"{self.name}*"
        if self.kind is NodeKind.WILDCARD:
            return f"_{self.name}:{self.etype}"
        return f"{self.name}:{self.etype}"


# ---------------------------------------------------------------------- #
# node constructors (the public, readable way to build patterns in code)
# ---------------------------------------------------------------------- #


def designated(name: str, etype: str) -> PatternNode:
    """The designated variable ``x`` of type *etype*."""
    return PatternNode(name, NodeKind.DESIGNATED, etype=etype)


def entity_var(name: str, etype: str) -> PatternNode:
    """A (recursive) entity variable ``y`` of type *etype*."""
    return PatternNode(name, NodeKind.ENTITY_VAR, etype=etype)


def value_var(name: str) -> PatternNode:
    """A value variable ``y*``."""
    return PatternNode(name, NodeKind.VALUE_VAR)


def wildcard(name: str, etype: str) -> PatternNode:
    """A wildcard ``ȳ`` of type *etype*."""
    return PatternNode(name, NodeKind.WILDCARD, etype=etype)


def constant(value: object, name: Optional[str] = None) -> PatternNode:
    """A constant value node."""
    label = name if name is not None else f"const:{value!r}"
    return PatternNode(label, NodeKind.CONSTANT, value=value)


class PatternTriple(NamedTuple):
    """A pattern triple ``(s_Q, p_Q, o_Q)``."""

    subject: PatternNode
    predicate: str
    obj: PatternNode

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.subject}, {self.predicate}, {self.obj})"


class GraphPattern:
    """A connected graph pattern ``Q(x)`` with a designated variable ``x``.

    The pattern is validated on construction: exactly one designated node,
    entity-kind subjects, consistent node definitions (a name may not be used
    with two different kinds or types), non-empty and connected.
    """

    __slots__ = ("_triples", "_nodes", "_designated", "_adjacency", "_name")

    def __init__(
        self,
        triples: Iterable[PatternTriple],
        name: str = "Q",
    ) -> None:
        self._triples: Tuple[PatternTriple, ...] = tuple(triples)
        self._name = name
        if not self._triples:
            raise PatternError("a graph pattern needs at least one triple")
        self._nodes: Dict[str, PatternNode] = {}
        designated_nodes: List[PatternNode] = []
        for triple in self._triples:
            for node in (triple.subject, triple.obj):
                known = self._nodes.get(node.name)
                if known is None:
                    self._nodes[node.name] = node
                    if node.is_designated:
                        designated_nodes.append(node)
                elif known != node:
                    raise PatternError(
                        f"pattern node {node.name!r} used inconsistently: "
                        f"{known} vs {node}"
                    )
            if not triple.subject.is_entity:
                raise PatternError(
                    f"pattern triple subject must be an entity node, got {triple.subject}"
                )
        if len(designated_nodes) != 1:
            raise PatternError(
                f"pattern {name!r} must have exactly one designated variable, "
                f"found {len(designated_nodes)}"
            )
        self._designated = designated_nodes[0]
        self._adjacency = self._build_adjacency()
        if not self._is_connected():
            raise PatternError(f"pattern {name!r} must be connected")

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    def _build_adjacency(self) -> Dict[str, Set[str]]:
        adjacency: Dict[str, Set[str]] = defaultdict(set)
        for triple in self._triples:
            adjacency[triple.subject.name].add(triple.obj.name)
            adjacency[triple.obj.name].add(triple.subject.name)
        return adjacency

    def _is_connected(self) -> bool:
        start = self._designated.name
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nbr in self._adjacency.get(node, ()):
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        return seen >= set(self._nodes.keys())

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        return self._name

    @property
    def designated(self) -> PatternNode:
        """The designated variable ``x``."""
        return self._designated

    @property
    def target_type(self) -> str:
        """The entity type identified by this pattern (the type of ``x``)."""
        assert self._designated.etype is not None
        return self._designated.etype

    @property
    def triples(self) -> Tuple[PatternTriple, ...]:
        return self._triples

    @property
    def size(self) -> int:
        """``|Q|``: the number of triples of the pattern."""
        return len(self._triples)

    def __len__(self) -> int:
        return len(self._triples)

    def nodes(self) -> Iterator[PatternNode]:
        """Iterate over the distinct pattern nodes."""
        return iter(self._nodes.values())

    def node(self, name: str) -> PatternNode:
        """Return the pattern node called *name*."""
        try:
            return self._nodes[name]
        except KeyError:
            raise PatternError(f"pattern {self._name!r} has no node {name!r}") from None

    def node_names(self) -> Set[str]:
        return set(self._nodes.keys())

    def entity_variables(self) -> List[PatternNode]:
        """The (recursive) entity variables ``y`` of the pattern, excluding ``x``."""
        return [n for n in self._nodes.values() if n.is_entity_variable]

    def value_variables(self) -> List[PatternNode]:
        return [n for n in self._nodes.values() if n.is_value_variable]

    def wildcards(self) -> List[PatternNode]:
        return [n for n in self._nodes.values() if n.is_wildcard]

    def constants(self) -> List[PatternNode]:
        return [n for n in self._nodes.values() if n.is_constant]

    def predicates(self) -> Set[str]:
        return {t.predicate for t in self._triples}

    # ------------------------------------------------------------------ #
    # properties from the paper
    # ------------------------------------------------------------------ #

    @property
    def is_recursive(self) -> bool:
        """True when the pattern contains an entity variable other than ``x``.

        Recursive patterns make keys *recursively defined* (Section 2.2).
        """
        return bool(self.entity_variables())

    @property
    def is_value_based(self) -> bool:
        """True when the pattern contains no entity variable other than ``x``."""
        return not self.is_recursive

    @property
    def radius(self) -> int:
        """``d(Q, x)``: the longest undirected distance from ``x`` to any node."""
        distances = self.distances_from_designated()
        return max(distances.values()) if distances else 0

    def distances_from_designated(self) -> Dict[str, int]:
        """BFS distances (undirected) from the designated variable to all nodes."""
        distances = {self._designated.name: 0}
        queue: deque[str] = deque([self._designated.name])
        while queue:
            current = queue.popleft()
            for nbr in self._adjacency.get(current, ()):
                if nbr not in distances:
                    distances[nbr] = distances[current] + 1
                    queue.append(nbr)
        return distances

    def adjacent_triples(self, node_name: str) -> List[PatternTriple]:
        """All pattern triples incident to the node called *node_name*."""
        return [
            t
            for t in self._triples
            if t.subject.name == node_name or t.obj.name == node_name
        ]

    def entity_variable_types(self) -> Set[str]:
        """The types of the (recursive) entity variables of the pattern."""
        return {n.etype for n in self.entity_variables() if n.etype is not None}

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphPattern):
            return NotImplemented
        return set(self._triples) == set(other._triples)

    def __hash__(self) -> int:
        return hash(frozenset(self._triples))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flavour = "recursive" if self.is_recursive else "value-based"
        return (
            f"GraphPattern({self._name!r}, target={self.target_type!r}, "
            f"triples={len(self._triples)}, radius={self.radius}, {flavour})"
        )

    def describe(self) -> str:
        """A human-readable multi-line description of the pattern."""
        lines = [f"pattern {self._name}({self._designated}) for {self.target_type}:"]
        for triple in self._triples:
            lines.append(f"  {triple.subject} -[{triple.predicate}]-> {triple.obj}")
        return "\n".join(lines)
