"""The equivalence relation ``Eq`` over entities, backed by union–find.

The chase of Section 3 maintains an equivalence relation ``Eq`` over entity
pairs of the same type: reflexive, symmetric and transitive, seeded with the
node-identity relation ``Eq0 = {(e, e)}``.  Union–find maintains exactly this
closure; merging two classes implements a chase step, and transitivity comes
for free.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Set, Tuple


Pair = Tuple[str, str]


def canonical_pair(e1: str, e2: str) -> Pair:
    """Return the pair ``(e1, e2)`` in canonical (sorted) order."""
    return (e1, e2) if e1 <= e2 else (e2, e1)


class EquivalenceRelation:
    """A union–find structure over entity ids.

    The relation starts as the identity relation over the ids it has seen;
    unseen ids are implicitly singleton classes (they are added lazily), so an
    ``EquivalenceRelation()`` with no arguments behaves like ``Eq0`` over the
    whole graph.
    """

    __slots__ = ("_parent", "_rank", "_merges")

    def __init__(self, members: Iterable[str] = ()) -> None:
        self._parent: Dict[str, str] = {}
        self._rank: Dict[str, int] = {}
        self._merges = 0
        for member in members:
            self.add(member)

    # ------------------------------------------------------------------ #
    # union–find internals
    # ------------------------------------------------------------------ #

    def add(self, member: str) -> None:
        """Register *member* as a singleton class (no-op when present)."""
        if member not in self._parent:
            self._parent[member] = member
            self._rank[member] = 0

    def find(self, member: str) -> str:
        """Return the canonical representative of *member*'s class."""
        self.add(member)
        root = member
        while self._parent[root] != root:
            root = self._parent[root]
        # path compression
        while self._parent[member] != root:
            self._parent[member], member = root, self._parent[member]
        return root

    def merge(self, e1: str, e2: str) -> bool:
        """Identify *e1* and *e2* (a chase step).  Return True when new."""
        r1, r2 = self.find(e1), self.find(e2)
        if r1 == r2:
            return False
        if self._rank[r1] < self._rank[r2]:
            r1, r2 = r2, r1
        self._parent[r2] = r1
        if self._rank[r1] == self._rank[r2]:
            self._rank[r1] += 1
        self._merges += 1
        return True

    # ------------------------------------------------------------------ #
    # relation queries
    # ------------------------------------------------------------------ #

    def identified(self, e1: str, e2: str) -> bool:
        """True when ``(e1, e2) ∈ Eq`` (including the trivial ``e1 == e2``)."""
        if e1 == e2:
            return True
        if e1 not in self._parent or e2 not in self._parent:
            return False
        return self.find(e1) == self.find(e2)

    def __contains__(self, pair: object) -> bool:
        if isinstance(pair, tuple) and len(pair) == 2:
            return self.identified(pair[0], pair[1])
        return False

    @property
    def merge_count(self) -> int:
        """The number of successful (novel) merges performed so far."""
        return self._merges

    def members(self) -> Iterator[str]:
        """Iterate over the ids this relation has seen."""
        return iter(self._parent.keys())

    def classes(self) -> List[Set[str]]:
        """Return all equivalence classes (including singletons)."""
        groups: Dict[str, Set[str]] = defaultdict(set)
        for member in self._parent:
            groups[self.find(member)].add(member)
        return list(groups.values())

    def nontrivial_classes(self) -> List[Set[str]]:
        """Return the classes of size ≥ 2 (i.e. classes with identified pairs)."""
        return [cls for cls in self.classes() if len(cls) > 1]

    def class_of(self, member: str) -> Set[str]:
        """Return the class containing *member*."""
        root = self.find(member)
        return {m for m in self._parent if self.find(m) == root}

    def pairs(self) -> Set[Pair]:
        """All nontrivial identified pairs, canonically ordered.

        This is the result ``chase(G, Σ)`` minus the trivial identity pairs:
        for every class ``{a, b, c}`` the pairs ``(a,b), (a,c), (b,c)`` are
        reported.
        """
        result: Set[Pair] = set()
        for cls in self.nontrivial_classes():
            ordered = sorted(cls)
            for e1, e2 in itertools.combinations(ordered, 2):
                result.add((e1, e2))
        return result

    def copy(self) -> "EquivalenceRelation":
        """Return an independent copy of this relation."""
        clone = EquivalenceRelation()
        clone._parent = dict(self._parent)
        clone._rank = dict(self._rank)
        clone._merges = self._merges
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EquivalenceRelation):
            return NotImplemented
        return self.pairs() == other.pairs()

    def __hash__(self) -> int:  # mutable; identity hash
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EquivalenceRelation(members={len(self._parent)}, "
            f"identified_pairs={len(self.pairs())})"
        )
