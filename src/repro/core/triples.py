"""Primitive data model: entities, literal values and triples.

The paper models a graph ``G`` as a set of triples ``(s, p, o)`` where the
subject ``s`` is always an entity, the predicate ``p`` is a label, and the
object ``o`` is either an entity or a data value.  Entities carry a unique id
and a type; values are compared by value equality, entities by node identity
(their id).

In this package:

* entities are referenced by their string id; their type lives in
  :class:`Entity` records held by the graph;
* values are wrapped in :class:`Literal` so that a triple object is
  unambiguously either an entity reference (a ``str``) or a value
  (a ``Literal``), regardless of the Python type of the value itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Union


@dataclass(frozen=True, slots=True)
class Entity:
    """An entity: a node with a unique id and a type from Θ."""

    eid: str
    etype: str

    def __post_init__(self) -> None:
        if not self.eid:
            raise ValueError("entity id must be a non-empty string")
        if not self.etype:
            raise ValueError("entity type must be a non-empty string")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.eid}:{self.etype}"


@dataclass(frozen=True, slots=True)
class Literal:
    """A data value from D.

    Two literals are equal exactly when their wrapped values are equal, which
    implements the paper's *value equality* (``d1 = d2``).  The wrapped value
    must be hashable (strings, numbers, booleans, tuples...).
    """

    value: object

    def __post_init__(self) -> None:
        try:
            hash(self.value)
        except TypeError as exc:  # pragma: no cover - defensive
            raise TypeError(
                f"literal values must be hashable, got {type(self.value).__name__}"
            ) from exc

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.value)


#: A triple object is either an entity id (``str``) or a :class:`Literal`.
GraphNode = Union[str, Literal]


class Triple(NamedTuple):
    """A triple ``(subject, predicate, object)``.

    ``subject`` is an entity id, ``predicate`` a label from P, and ``obj``
    either an entity id (``str``) or a :class:`Literal`.
    """

    subject: str
    predicate: str
    obj: GraphNode

    def object_is_value(self) -> bool:
        """Return ``True`` when the object of this triple is a data value."""
        return isinstance(self.obj, Literal)

    def object_is_entity(self) -> bool:
        """Return ``True`` when the object of this triple is an entity."""
        return isinstance(self.obj, str)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.subject}, {self.predicate}, {self.obj})"


def is_literal(node: GraphNode) -> bool:
    """Return ``True`` when *node* is a data value (a :class:`Literal`)."""
    return isinstance(node, Literal)


def is_entity_ref(node: GraphNode) -> bool:
    """Return ``True`` when *node* is an entity reference (an entity id)."""
    return isinstance(node, str)


def as_object(value: object) -> GraphNode:
    """Coerce *value* into a triple object.

    Strings are ambiguous (they could be entity ids or string values), so this
    helper treats plain strings as entity references and everything else as a
    value; wrap strings in :class:`Literal` explicitly when they are values.
    """
    if isinstance(value, (str, Literal)):
        return value
    return Literal(value)
