"""The pairing relation ``P^Q`` (Proposition 9) and its two uses.

Pairing is a *necessary* condition for a candidate pair to be identified by a
key: if ``(e1, e2)`` cannot be paired by any key of ``Σ`` then
``(G, Σ) ⊭ (e1, e2)``.  The maximum pairing relation is computed by a
simulation-style fixpoint in ``O(|Q|·|G^d_1|·|G^d_2|)`` time, which is far
cheaper than isomorphism checking; the optimizations of Section 4.2 use it to

1. filter the candidate set ``L`` (``EMOptMR`` / the product graph of ``EMVC``), and
2. shrink the d-neighbourhoods to the nodes that appear in the relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .equivalence import EquivalenceRelation
from .graph import Graph
from .key import Key, KeySet
from .pattern import GraphPattern, NodeKind, PatternNode
from .triples import GraphNode, Literal, is_entity_ref

#: ``P^Q`` grouped by pattern node: node name → set of (n1, n2) pairs.
PairingRelation = Dict[str, Set[Tuple[GraphNode, GraphNode]]]


@dataclass
class PairingStatistics:
    """Counters describing the pairing computation (for reports / ablations)."""

    computed: int = 0
    paired: int = 0
    pruned: int = 0

    def merge(self, other: "PairingStatistics") -> None:
        self.computed += other.computed
        self.paired += other.paired
        self.pruned += other.pruned


def _initial_candidates(
    graph: Graph,
    node: PatternNode,
    nodes1: Set[GraphNode],
    nodes2: Set[GraphNode],
    e1: str,
    e2: str,
) -> Set[Tuple[GraphNode, GraphNode]]:
    """Pairs satisfying condition (2a) of the pairing definition for *node*."""
    if node.kind is NodeKind.DESIGNATED:
        return {(e1, e2)}
    if node.kind is NodeKind.CONSTANT:
        literal = Literal(node.value)
        if literal in nodes1 and literal in nodes2:
            return {(literal, literal)}
        return set()
    if node.kind is NodeKind.VALUE_VAR:
        values1 = {n for n in nodes1 if isinstance(n, Literal)}
        values2 = {n for n in nodes2 if isinstance(n, Literal)}
        return {(v, v) for v in values1 & values2}
    # entity kinds (entity variable / wildcard): same declared type on both sides
    etype = node.etype
    ents1 = {
        n
        for n in nodes1
        if is_entity_ref(n) and graph.has_entity(n) and graph.entity_type(n) == etype
    }
    ents2 = {
        n
        for n in nodes2
        if is_entity_ref(n) and graph.has_entity(n) and graph.entity_type(n) == etype
    }
    return {(n1, n2) for n1 in ents1 for n2 in ents2}


def _supported(
    graph: Graph,
    pair: Tuple[GraphNode, GraphNode],
    node_name: str,
    pattern: GraphPattern,
    relation: PairingRelation,
) -> bool:
    """Condition (2b): every incident pattern triple has a supported image."""
    n1, n2 = pair
    for triple in pattern.adjacent_triples(node_name):
        if triple.subject.name == node_name:
            if not (is_entity_ref(n1) and is_entity_ref(n2)):
                return False
            targets = relation[triple.obj.name]
            objs1 = graph.objects(n1, triple.predicate)
            objs2 = graph.objects(n2, triple.predicate)
            if not any(o1 in objs1 and o2 in objs2 for (o1, o2) in targets):
                return False
        if triple.obj.name == node_name:
            sources = relation[triple.subject.name]
            subs1 = graph.subjects(triple.predicate, n1)
            subs2 = graph.subjects(triple.predicate, n2)
            if not any(s1 in subs1 and s2 in subs2 for (s1, s2) in sources):
                return False
    return True


def pairing_relation(
    graph: Graph,
    key: Key,
    e1: str,
    e2: str,
    neighborhood1: Set[GraphNode],
    neighborhood2: Set[GraphNode],
) -> Optional[PairingRelation]:
    """The maximum pairing relation of *key* at ``(e1, e2)``, or None.

    Returns ``None`` when ``(e1, e2)`` cannot be paired by *key* (the
    designated pair is pruned away by the fixpoint).
    """
    pattern = key.pattern
    relation: PairingRelation = {
        node.name: _initial_candidates(graph, node, neighborhood1, neighborhood2, e1, e2)
        for node in pattern.nodes()
    }
    if not relation[pattern.designated.name]:
        return None

    changed = True
    while changed:
        changed = False
        for node in pattern.nodes():
            survivors = {
                pair
                for pair in relation[node.name]
                if _supported(graph, pair, node.name, pattern, relation)
            }
            if len(survivors) != len(relation[node.name]):
                relation[node.name] = survivors
                changed = True
        if not relation[pattern.designated.name]:
            return None
    return relation


def can_pair(
    graph: Graph,
    key: Key,
    e1: str,
    e2: str,
    neighborhood1: Set[GraphNode],
    neighborhood2: Set[GraphNode],
) -> bool:
    """True when ``(e1, e2)`` can be paired by *key* (necessary condition)."""
    return (
        pairing_relation(graph, key, e1, e2, neighborhood1, neighborhood2) is not None
    )


def can_pair_with_any(
    graph: Graph,
    keys: List[Key],
    e1: str,
    e2: str,
    neighborhood1: Set[GraphNode],
    neighborhood2: Set[GraphNode],
) -> bool:
    """True when some key of *keys* can pair ``(e1, e2)``."""
    return any(
        can_pair(graph, key, e1, e2, neighborhood1, neighborhood2) for key in keys
    )


def pairing_support_nodes(
    relation: PairingRelation,
) -> Tuple[Set[GraphNode], Set[GraphNode]]:
    """The graph nodes appearing on each side of a pairing relation.

    Used by the neighbourhood-reduction optimization: the d-neighbourhoods can
    be restricted to these nodes without changing the outcome of the check.
    """
    side1: Set[GraphNode] = set()
    side2: Set[GraphNode] = set()
    for pairs in relation.values():
        for n1, n2 in pairs:
            side1.add(n1)
            side2.add(n2)
    return side1, side2


def reduced_neighborhoods(
    graph: Graph,
    keys: List[Key],
    e1: str,
    e2: str,
    neighborhood1: Set[GraphNode],
    neighborhood2: Set[GraphNode],
) -> Optional[Tuple[Set[GraphNode], Set[GraphNode]]]:
    """Neighbourhoods reduced to pairing-supported nodes, over all keys.

    Returns ``None`` when no key can pair ``(e1, e2)`` (the pair can be
    dropped from ``L`` altogether); otherwise the union over keys of the
    supported nodes on each side, always containing ``e1`` / ``e2``.
    """
    reduced1: Set[GraphNode] = set()
    reduced2: Set[GraphNode] = set()
    paired = False
    for key in keys:
        relation = pairing_relation(graph, key, e1, e2, neighborhood1, neighborhood2)
        if relation is None:
            continue
        paired = True
        side1, side2 = pairing_support_nodes(relation)
        reduced1 |= side1
        reduced2 |= side2
    if not paired:
        return None
    reduced1.add(e1)
    reduced2.add(e2)
    return reduced1 & neighborhood1 | {e1}, reduced2 & neighborhood2 | {e2}
