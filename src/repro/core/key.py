"""Keys for graphs and key sets ``Σ`` (Section 2.2).

A key for entities of type ``τ`` is a graph pattern ``Q(x)`` whose designated
variable ``x`` has type ``τ``.  A :class:`KeySet` groups keys, indexes them by
target type, and exposes the structural quantities the algorithms and the
experiments need: ``|Σ|``, ``||Σ||``, per-type maximum radius ``d`` and the
length ``c`` of the longest dependency chain induced by recursively defined
keys (the two knobs varied in Exp-3 of the paper).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..exceptions import InvalidKeyError
from .pattern import GraphPattern, PatternTriple


class Key:
    """A key: a graph pattern used as a uniqueness constraint.

    The key identifies entities of :attr:`target_type`; it is *recursively
    defined* when its pattern contains entity variables other than ``x``.
    """

    __slots__ = ("_pattern", "_name")

    def __init__(self, pattern: GraphPattern, name: Optional[str] = None) -> None:
        self._pattern = pattern
        self._name = name if name is not None else pattern.name

    @classmethod
    def from_triples(
        cls, triples: Iterable[PatternTriple], name: str = "Q"
    ) -> "Key":
        """Build a key directly from pattern triples."""
        return cls(GraphPattern(triples, name=name), name=name)

    @property
    def name(self) -> str:
        return self._name

    @property
    def pattern(self) -> GraphPattern:
        return self._pattern

    @property
    def target_type(self) -> str:
        """The entity type this key identifies (type of ``x``)."""
        return self._pattern.target_type

    @property
    def size(self) -> int:
        """``|Q|``: the number of triples of the key's pattern."""
        return self._pattern.size

    @property
    def radius(self) -> int:
        """``d(Q, x)``: the radius of the key's pattern."""
        return self._pattern.radius

    @property
    def is_recursive(self) -> bool:
        """True when the key is recursively defined."""
        return self._pattern.is_recursive

    @property
    def is_value_based(self) -> bool:
        """True when the key is value-based (no entity variables besides ``x``)."""
        return self._pattern.is_value_based

    def depends_on_types(self) -> Set[str]:
        """Types of the entity variables of this key.

        Identifying a pair with this key requires pairs of these types to be
        identified first (the dependency of Section 4.2).
        """
        return self._pattern.entity_variable_types()

    def is_defined_on(self, etype: str) -> bool:
        """True when this key is defined on entities of type *etype*."""
        return self.target_type == etype

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Key):
            return NotImplemented
        return self._pattern == other._pattern

    def __hash__(self) -> int:
        return hash(self._pattern)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flavour = "recursive" if self.is_recursive else "value-based"
        return f"Key({self._name!r}, for={self.target_type!r}, {flavour}, |Q|={self.size})"

    def describe(self) -> str:
        """A human-readable multi-line description of this key."""
        return self._pattern.describe()


class KeySet:
    """A set ``Σ`` of keys with the indexes the matching algorithms need."""

    __slots__ = ("_keys", "_by_type")

    def __init__(self, keys: Iterable[Key] = ()) -> None:
        self._keys: List[Key] = []
        self._by_type: Dict[str, List[Key]] = defaultdict(list)
        for key in keys:
            self.add(key)

    def add(self, key: Key) -> None:
        """Add a key to the set (duplicate keys are ignored)."""
        if not isinstance(key, Key):
            raise InvalidKeyError(f"expected a Key, got {type(key).__name__}")
        if key in self._keys:
            return
        self._keys.append(key)
        self._by_type[key.target_type].append(key)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    def __iter__(self) -> Iterator[Key]:
        return iter(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: object) -> bool:
        return key in self._keys

    def __getitem__(self, index: int) -> Key:
        return self._keys[index]

    @property
    def cardinality(self) -> int:
        """``||Σ||``: the number of keys."""
        return len(self._keys)

    @property
    def size(self) -> int:
        """``|Σ|``: the total number of pattern triples over all keys."""
        return sum(key.size for key in self._keys)

    def keys_for_type(self, etype: str) -> List[Key]:
        """All keys defined on entities of type *etype*."""
        return list(self._by_type.get(etype, ()))

    def target_types(self) -> Set[str]:
        """All entity types on which at least one key is defined."""
        return {t for t, keys in self._by_type.items() if keys}

    def value_based_keys(self) -> List[Key]:
        return [k for k in self._keys if k.is_value_based]

    def recursive_keys(self) -> List[Key]:
        return [k for k in self._keys if k.is_recursive]

    def by_name(self, name: str) -> Key:
        """Look a key up by its name."""
        for key in self._keys:
            if key.name == name:
                return key
        raise InvalidKeyError(f"no key named {name!r} in this key set")

    # ------------------------------------------------------------------ #
    # structural quantities used by the algorithms / experiments
    # ------------------------------------------------------------------ #

    def max_radius(self) -> int:
        """The maximum radius ``d`` over all keys (0 for an empty set)."""
        return max((k.radius for k in self._keys), default=0)

    def max_radius_for_type(self, etype: str) -> int:
        """The maximum radius of keys defined on *etype* (0 when none)."""
        return max((k.radius for k in self._by_type.get(etype, ())), default=0)

    def type_dependency_graph(self) -> Dict[str, Set[str]]:
        """Edges ``τ → τ'`` when a key for τ has an entity variable of type τ'.

        Only dependencies on types that themselves have keys are reported;
        identifying a pair of a type without keys is impossible, so such
        dependencies can never be discharged.
        """
        keyed = self.target_types()
        graph: Dict[str, Set[str]] = {t: set() for t in keyed}
        for key in self._keys:
            for dep in key.depends_on_types():
                if dep in keyed:
                    graph[key.target_type].add(dep)
        return graph

    def dependency_chain_length(self) -> int:
        """The length ``c`` of the longest dependency chain between keyed types.

        A value-based-only key set has chain length 1 (the paper's generator
        parameter ``c`` counts the number of keyed types along the longest
        chain; cycles — mutually recursive keys — contribute the cycle length).
        """
        graph = self.type_dependency_graph()
        if not graph:
            return 0

        longest = 1
        for start in graph:
            longest = max(longest, self._longest_path_from(start, graph))
        return longest

    def _longest_path_from(self, start: str, graph: Dict[str, Set[str]]) -> int:
        """Longest simple path (in nodes) starting at *start* in the type graph."""
        best = 1
        stack: List[Tuple[str, frozenset]] = [(start, frozenset({start}))]
        while stack:
            node, visited = stack.pop()
            best = max(best, len(visited))
            for nxt in graph.get(node, ()):
                if nxt not in visited:
                    stack.append((nxt, visited | {nxt}))
        return best

    def has_recursive_cycle(self) -> bool:
        """True when the type dependency graph has a cycle (mutual recursion)."""
        graph = self.type_dependency_graph()
        colors: Dict[str, int] = {}

        def visit(node: str) -> bool:
            colors[node] = 1
            for nxt in graph.get(node, ()):
                state = colors.get(nxt, 0)
                if state == 1:
                    return True
                if state == 0 and visit(nxt):
                    return True
            colors[node] = 2
            return False

        return any(visit(node) for node in graph if colors.get(node, 0) == 0)

    def stats(self) -> Dict[str, int]:
        """Summary statistics of this key set."""
        return {
            "keys": self.cardinality,
            "size": self.size,
            "recursive": len(self.recursive_keys()),
            "value_based": len(self.value_based_keys()),
            "target_types": len(self.target_types()),
            "max_radius": self.max_radius(),
            "chain_length": self.dependency_chain_length(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KeySet(keys={self.cardinality}, size={self.size}, "
            f"recursive={len(self.recursive_keys())})"
        )
