"""In-memory property graph (triple store) with the indexes the matching
algorithms need.

The graph follows the paper's model (Section 2.1): a set of triples
``(s, p, o)`` where ``s`` is an entity, ``p`` a predicate and ``o`` an entity
or a value.  The store maintains:

* an entity table (id → type) and a type index (type → ids),
* forward and backward adjacency indexes keyed by ``(node, predicate)``,
* an undirected adjacency index used for d-neighbourhood extraction.

Values (:class:`~repro.core.triples.Literal`) are graph nodes too: two equal
values are the same node, as in the paper.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..exceptions import DuplicateEntityError, GraphError, UnknownEntityError
from .fingerprint import _FP_MOD, entity_term, format_fingerprint, triple_term
from .triples import Entity, GraphNode, Literal, Triple, is_entity_ref


class Graph:
    """A directed, edge-labelled graph of entities and values.

    The public surface is intentionally small and explicit:

    >>> g = Graph()
    >>> g.add_entity("alb1", "album")
    >>> g.add_entity("art1", "artist")
    >>> g.add_value("alb1", "name_of", "Anthology 2")
    >>> g.add_edge("alb1", "recorded_by", "art1")
    >>> g.num_triples
    2
    """

    __slots__ = (
        "_entities",
        "_by_type",
        "_triples",
        "_out",
        "_in",
        "_out_by_pred",
        "_in_by_pred",
        "_undirected",
        "_pred_counts",
        "_version",
        "_touched_versions",
        "_touched_nodes",
        "_log_base_version",
        "_journal_compactions",
        "_fp_acc",
    )

    #: Mutation journal window (entries).  When the journal fills up it is
    #: first *compacted* — only the most recent entry per node is kept, which
    #: preserves every ``touched_since`` answer in the window exactly (the
    #: nodes touched after version ``v`` are precisely the nodes whose *last*
    #: touch is after ``v``) — so long-running ingest on a bounded node set
    #: keeps the full window alive indefinitely.  Only when more *distinct*
    #: nodes than the limit were touched does the window slide: the log is
    #: cleared and restarted at the current version, and
    #: :meth:`touched_since` answers ``None`` for versions that fell out
    #: (callers then do a full cache rebuild).
    MUTATION_LOG_LIMIT = 100_000

    def __init__(self) -> None:
        self._entities: Dict[str, Entity] = {}
        self._by_type: Dict[str, Set[str]] = defaultdict(set)
        self._triples: Set[Triple] = set()
        # node -> list/set of triples with that node as subject / object
        self._out: Dict[str, Set[Triple]] = defaultdict(set)
        self._in: Dict[GraphNode, Set[Triple]] = defaultdict(set)
        # (node, predicate) -> set of objects / subjects
        self._out_by_pred: Dict[Tuple[str, str], Set[GraphNode]] = defaultdict(set)
        self._in_by_pred: Dict[Tuple[GraphNode, str], Set[str]] = defaultdict(set)
        # undirected adjacency (ignoring direction and predicate), for BFS
        self._undirected: Dict[GraphNode, Set[GraphNode]] = defaultdict(set)
        # predicate -> live triple count, so predicates() and the snapshot
        # patcher answer the predicate universe without an O(|G|) scan
        self._pred_counts: Dict[str, int] = {}
        # mutation journal: monotone version + the nodes each mutation touched,
        # so sessions can invalidate exactly the caches a mutation staled;
        # the log holds the entries for versions (_log_base_version, _version]
        # as two parallel lists (versions strictly increasing, bisectable)
        self._version: int = 0
        self._touched_versions: List[int] = []
        self._touched_nodes: List[GraphNode] = []
        self._log_base_version: int = 0
        self._journal_compactions: int = 0
        # running content-fingerprint accumulator (see core.fingerprint):
        # every mutation primitive adds/subtracts its term, so
        # content_fingerprint() is O(1) at any moment
        self._fp_acc: int = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_entity(self, eid: str, etype: str) -> Entity:
        """Register an entity with id *eid* and type *etype*.

        Re-adding an entity with the same type is a no-op; re-adding with a
        different type raises :class:`DuplicateEntityError`.
        """
        existing = self._entities.get(eid)
        if existing is not None:
            if existing.etype != etype:
                raise DuplicateEntityError(eid, existing.etype, etype)
            return existing
        entity = Entity(eid, etype)
        self._entities[eid] = entity
        self._by_type[etype].add(eid)
        self._fp_acc = (self._fp_acc + entity_term(eid, etype)) % _FP_MOD
        self._record_mutation((eid,))
        return entity

    def add_triple(self, triple: Triple) -> None:
        """Add a triple; the subject (and an entity object) must be registered."""
        if triple.subject not in self._entities:
            raise UnknownEntityError(triple.subject)
        if triple.object_is_entity() and triple.obj not in self._entities:
            raise UnknownEntityError(str(triple.obj))
        if triple in self._triples:
            return
        self._triples.add(triple)
        self._out[triple.subject].add(triple)
        self._in[triple.obj].add(triple)
        self._out_by_pred[(triple.subject, triple.predicate)].add(triple.obj)
        self._in_by_pred[(triple.obj, triple.predicate)].add(triple.subject)
        self._undirected[triple.subject].add(triple.obj)
        self._undirected[triple.obj].add(triple.subject)
        self._pred_counts[triple.predicate] = self._pred_counts.get(triple.predicate, 0) + 1
        self._fp_acc = (
            self._fp_acc + triple_term(triple.subject, triple.predicate, triple.obj)
        ) % _FP_MOD
        self._record_mutation((triple.subject, triple.obj))

    def _record_mutation(self, nodes: Tuple[GraphNode, ...]) -> None:
        versions = self._touched_versions
        touched = self._touched_nodes
        for node in nodes:
            self._version += 1
            versions.append(self._version)
            touched.append(node)
        if len(touched) > self.MUTATION_LOG_LIMIT:
            self._compact_journal()

    def _compact_journal(self) -> None:
        # Keep only the most recent entry per node: touched_since(v) is
        # exactly the set of nodes whose *last* touch has version > v, so
        # dropping superseded entries preserves every answer in the window.
        # Repeated set_value/add/remove churn on a bounded node set therefore
        # never slides the window, no matter how long ingest runs.
        last: Dict[GraphNode, int] = {}
        for version, node in zip(self._touched_versions, self._touched_nodes):
            last[node] = version
        if len(last) > self.MUTATION_LOG_LIMIT:
            # more distinct nodes than the window holds: slide (old behavior)
            self._touched_versions = []
            self._touched_nodes = []
            self._log_base_version = self._version
            return
        entries = sorted(last.items(), key=lambda item: item[1])
        self._touched_versions = [version for _, version in entries]
        self._touched_nodes = [node for node, _ in entries]
        self._journal_compactions += 1

    @property
    def version(self) -> int:
        """Monotone mutation counter; bumped by every entity/triple mutation."""
        return self._version

    @property
    def journal_size(self) -> int:
        """Number of live journal entries (bounded by ``MUTATION_LOG_LIMIT``)."""
        return len(self._touched_nodes)

    @property
    def journal_compactions(self) -> int:
        """How many times the journal coalesced superseded entries."""
        return self._journal_compactions

    def content_fingerprint(self) -> str:
        """The graph's content fingerprint, from the O(1) running accumulator.

        Maintained incrementally through every mutation primitive; equal to
        :func:`repro.core.fingerprint.graph_fingerprint` (the full recompute)
        at all times — the property suite proves it across arbitrary
        mutation sequences.
        """
        return format_fingerprint(self._fp_acc)

    def touched_since(self, version: int) -> Optional[Set[GraphNode]]:
        """Nodes touched by mutations after *version* of this graph.

        Returns ``None`` when *version* fell out of the journal window;
        callers must then treat *every* node as possibly touched.
        """
        if version < self._log_base_version:
            return None
        start = bisect_right(self._touched_versions, version)
        return set(self._touched_nodes[start:])

    def add_edge(self, subject: str, predicate: str, obj: str) -> None:
        """Add an entity-to-entity triple ``(subject, predicate, obj)``."""
        self.add_triple(Triple(subject, predicate, obj))

    def add_value(self, subject: str, predicate: str, value: object) -> None:
        """Add an entity-to-value triple; *value* is wrapped in a Literal."""
        literal = value if isinstance(value, Literal) else Literal(value)
        self.add_triple(Triple(subject, predicate, literal))

    # ------------------------------------------------------------------ #
    # non-monotone mutations (journalled like the additions above)
    # ------------------------------------------------------------------ #

    def remove_triple(self, triple: Triple) -> None:
        """Remove a triple; removing an absent triple is a no-op (like re-adds).

        The mutation journal records both endpoints, exactly as
        :meth:`add_triple` does, so incremental consumers see deletions and
        insertions through the same ``touched_since`` window.
        """
        if triple not in self._triples:
            return
        self._triples.discard(triple)
        self._discard_index(self._out, triple.subject, triple)
        self._discard_index(self._in, triple.obj, triple)
        self._discard_index(self._out_by_pred, (triple.subject, triple.predicate), triple.obj)
        self._discard_index(self._in_by_pred, (triple.obj, triple.predicate), triple.subject)
        # a parallel triple (other predicate / direction) may still connect
        # the two endpoints; only drop the undirected edge when none does
        if not self._still_adjacent(triple.subject, triple.obj):
            self._discard_index(self._undirected, triple.subject, triple.obj)
            self._discard_index(self._undirected, triple.obj, triple.subject)
        remaining = self._pred_counts.get(triple.predicate, 0) - 1
        if remaining > 0:
            self._pred_counts[triple.predicate] = remaining
        else:
            self._pred_counts.pop(triple.predicate, None)
        self._fp_acc = (
            self._fp_acc - triple_term(triple.subject, triple.predicate, triple.obj)
        ) % _FP_MOD
        self._record_mutation((triple.subject, triple.obj))

    @staticmethod
    def _discard_index(index: Dict, key: object, member: object) -> None:
        members = index.get(key)
        if members is None:
            return
        members.discard(member)
        if not members:
            del index[key]

    def _still_adjacent(self, subject: str, obj: GraphNode) -> bool:
        for triple in self._out.get(subject, ()):
            if triple.obj == obj:
                return True
        if is_entity_ref(obj):
            for triple in self._out.get(obj, ()):
                if triple.obj == subject:
                    return True
        return False

    def remove_edge(self, subject: str, predicate: str, obj: str) -> None:
        """Remove an entity-to-entity triple (absent edge: no-op)."""
        self.remove_triple(Triple(subject, predicate, obj))

    def remove_value(self, subject: str, predicate: str, value: object) -> None:
        """Remove an entity-to-value triple (absent value: no-op)."""
        literal = value if isinstance(value, Literal) else Literal(value)
        self.remove_triple(Triple(subject, predicate, literal))

    def set_value(self, subject: str, predicate: str, value: object) -> None:
        """Replace every value of ``(subject, predicate)`` with *value*.

        The "literal edit" mutation: existing value triples under the
        predicate are removed and the single new value is added, all through
        the journalled mutation primitives.
        """
        literal = value if isinstance(value, Literal) else Literal(value)
        for existing in list(self.objects(subject, predicate)):
            if isinstance(existing, Literal) and existing != literal:
                self.remove_triple(Triple(subject, predicate, existing))
        self.add_triple(Triple(subject, predicate, literal))

    def retype_entity(self, eid: str, etype: str) -> Entity:
        """Change the type of entity *eid* to *etype* (same type: no-op).

        Incident triples are kept — only the type (and the type index)
        changes.  The journal records the entity as touched.
        """
        existing = self.entity(eid)
        if existing.etype == etype:
            return existing
        self._discard_index(self._by_type, existing.etype, eid)
        entity = Entity(eid, etype)
        self._entities[eid] = entity
        self._by_type[etype].add(eid)
        self._fp_acc = (
            self._fp_acc - entity_term(eid, existing.etype) + entity_term(eid, etype)
        ) % _FP_MOD
        self._record_mutation((eid,))
        return entity

    @classmethod
    def from_triples(
        cls, entities: Mapping[str, str], triples: Iterable[Triple]
    ) -> "Graph":
        """Build a graph from an entity-type mapping and an iterable of triples."""
        graph = cls()
        for eid, etype in entities.items():
            graph.add_entity(eid, etype)
        for triple in triples:
            graph.add_triple(triple)
        return graph

    def copy(self) -> "Graph":
        """Return a deep (structural) copy of this graph."""
        clone = Graph()
        for entity in self._entities.values():
            clone.add_entity(entity.eid, entity.etype)
        for triple in self._triples:
            clone.add_triple(triple)
        return clone

    # ------------------------------------------------------------------ #
    # basic inspection
    # ------------------------------------------------------------------ #

    @property
    def num_entities(self) -> int:
        """Number of entity nodes."""
        return len(self._entities)

    @property
    def num_triples(self) -> int:
        """Number of triples, i.e. ``|G|`` in the paper's notation."""
        return len(self._triples)

    @property
    def num_nodes(self) -> int:
        """Number of nodes (entities plus distinct value nodes)."""
        values = {t.obj for t in self._triples if t.object_is_value()}
        return len(self._entities) + len(values)

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Triple):
            return item in self._triples
        if isinstance(item, str):
            return item in self._entities
        return False

    def has_entity(self, eid: str) -> bool:
        """Return True when *eid* is a registered entity."""
        return eid in self._entities

    def entity(self, eid: str) -> Entity:
        """Return the :class:`Entity` record for *eid*."""
        try:
            return self._entities[eid]
        except KeyError:
            raise UnknownEntityError(eid) from None

    def entity_type(self, eid: str) -> str:
        """Return the type of entity *eid*."""
        return self.entity(eid).etype

    def entities(self) -> Iterator[Entity]:
        """Iterate over all entity records."""
        return iter(self._entities.values())

    def entity_ids(self) -> Iterator[str]:
        """Iterate over all entity ids."""
        return iter(self._entities.keys())

    def entities_of_type(self, etype: str) -> List[str]:
        """Return the ids of all entities with type *etype* (sorted)."""
        return sorted(self._by_type.get(etype, ()))

    def types(self) -> Set[str]:
        """Return the set of entity types present in the graph."""
        return {t for t, members in self._by_type.items() if members}

    def predicates(self) -> Set[str]:
        """Return the set of predicates used by triples of this graph.

        O(#predicates), off the live-count index — a predicate whose last
        triple was removed disappears from the answer.
        """
        return set(self._pred_counts)

    def triples(self) -> Iterator[Triple]:
        """Iterate over all triples."""
        return iter(self._triples)

    def has_triple(self, subject: str, predicate: str, obj: GraphNode) -> bool:
        """Return True when the triple ``(subject, predicate, obj)`` exists."""
        return Triple(subject, predicate, obj) in self._triples

    # ------------------------------------------------------------------ #
    # adjacency queries
    # ------------------------------------------------------------------ #

    def out_triples(self, subject: str) -> Set[Triple]:
        """All triples whose subject is *subject*."""
        return self._out.get(subject, set())

    def in_triples(self, obj: GraphNode) -> Set[Triple]:
        """All triples whose object is *obj*."""
        return self._in.get(obj, set())

    def objects(self, subject: str, predicate: str) -> Set[GraphNode]:
        """All objects ``o`` with ``(subject, predicate, o)`` in the graph."""
        return self._out_by_pred.get((subject, predicate), set())

    def subjects(self, predicate: str, obj: GraphNode) -> Set[str]:
        """All subjects ``s`` with ``(s, predicate, obj)`` in the graph."""
        return self._in_by_pred.get((obj, predicate), set())

    def neighbors(self, node: GraphNode) -> Set[GraphNode]:
        """Undirected neighbours of *node* (ignoring predicates and direction)."""
        return self._undirected.get(node, set())

    def degree(self, node: GraphNode) -> int:
        """Undirected degree of *node*."""
        return len(self._undirected.get(node, ()))

    def value_nodes(self) -> Set[Literal]:
        """Return the set of distinct value nodes."""
        return {t.obj for t in self._triples if t.object_is_value()}

    # ------------------------------------------------------------------ #
    # subgraphs and structural queries
    # ------------------------------------------------------------------ #

    def induced_subgraph(self, nodes: Iterable[GraphNode]) -> "Graph":
        """Return the subgraph induced by *nodes*.

        Entity nodes keep their types; a triple is kept when both endpoints
        are in *nodes*.
        """
        keep = set(nodes)
        sub = Graph()
        for node in keep:
            if is_entity_ref(node) and node in self._entities:
                sub.add_entity(node, self._entities[node].etype)
        for node in keep:
            if not is_entity_ref(node):
                continue
            for triple in self._out.get(node, ()):
                if triple.obj in keep:
                    sub.add_triple(triple)
        return sub

    def union(self, other: "Graph") -> "Graph":
        """Return a new graph with the entities and triples of both graphs.

        Raises :class:`DuplicateEntityError` when the two graphs disagree on
        the type of a shared entity id.
        """
        merged = self.copy()
        for entity in other.entities():
            merged.add_entity(entity.eid, entity.etype)
        for triple in other.triples():
            merged.add_triple(triple)
        return merged

    def is_tree(self) -> bool:
        """Return True when the undirected graph is connected and acyclic.

        Used by the PTIME tree-case analysis (Proposition 5 of the paper).
        An empty graph is considered a (trivial) tree.
        """
        nodes = set(self._undirected.keys()) | set(self._entities.keys())
        if not nodes:
            return True
        edge_count = len(self._triples)
        if edge_count != len(nodes) - 1:
            return False
        return self.is_connected()

    def is_connected(self) -> bool:
        """Return True when the undirected graph is connected (or empty)."""
        nodes = set(self._undirected.keys()) | set(self._entities.keys())
        if not nodes:
            return True
        start = next(iter(nodes))
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nbr in self._undirected.get(node, ()):
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        return seen >= nodes

    def connected_components(self) -> List[Set[GraphNode]]:
        """Return the undirected connected components (as node sets)."""
        nodes = set(self._undirected.keys()) | set(self._entities.keys())
        components: List[Set[GraphNode]] = []
        unseen = set(nodes)
        while unseen:
            start = unseen.pop()
            component = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for nbr in self._undirected.get(node, ()):
                    if nbr not in component:
                        component.add(nbr)
                        unseen.discard(nbr)
                        frontier.append(nbr)
            components.append(component)
        return components

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._entities == other._entities and self._triples == other._triples

    def __hash__(self) -> int:  # graphs are mutable; identity hash
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph(entities={self.num_entities}, triples={self.num_triples}, "
            f"types={len(self.types())})"
        )

    # ------------------------------------------------------------------ #
    # summary statistics used by reports and dataset scaling
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, int]:
        """Return a small dictionary of summary statistics."""
        return {
            "entities": self.num_entities,
            "values": len(self.value_nodes()),
            "nodes": self.num_nodes,
            "triples": self.num_triples,
            "types": len(self.types()),
            "predicates": len(self.predicates()),
        }


def merge_graphs(graphs: Sequence[Graph]) -> Graph:
    """Union an arbitrary sequence of graphs into a new graph."""
    merged = Graph()
    for graph in graphs:
        for entity in graph.entities():
            merged.add_entity(entity.eid, entity.etype)
        for triple in graph.triples():
            merged.add_triple(triple)
    return merged
