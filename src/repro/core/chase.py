"""The chase with keys: the sequential reference for ``chase(G, Σ)``
(Section 3.1).

The chase repeatedly applies keys as rules: a chase step
``Eq ⇒(e1,e2) Eq'`` fires when some key's matches at ``e1`` and ``e2``
coincide under the current ``Eq``; the result is the equivalence closure of
``Eq ∪ {(e1, e2)}``.  By Proposition 1 (Church–Rosser) all terminal chasing
sequences yield the same result, so any application order is correct; the
property-based tests exercise this by shuffling the order.

The sequential chase here is the ground truth that every parallel algorithm
of :mod:`repro.matching` is tested against.  It also records *provenance*
(which key identified which pair, relying on which previously identified
pairs), from which :mod:`repro.core.proof_graph` builds verifiable witnesses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..exceptions import MatchingError
from .equivalence import EquivalenceRelation, Pair, canonical_pair
from .eval_guided import EvalStatistics, GuidedPairEvaluator
from .graph import Graph
from .key import Key, KeySet
from .neighborhood import NeighborhoodIndex
from .pattern import NodeKind
from .triples import is_entity_ref


def candidate_pairs(graph: Graph, keys: KeySet) -> List[Pair]:
    """The candidate set ``L``: same-type entity pairs with a key defined on them.

    The order is deterministic and independent of graph insertion order:
    target types are visited in sorted order, both graph readers return each
    type's entities sorted, and ``itertools.combinations`` over a sorted
    bucket yields canonically ordered pairs in lexicographic order.  The
    result is *grouped by type* — it is not one globally sorted list.
    """
    pairs: List[Pair] = []
    for etype in sorted(keys.target_types()):
        entities = graph.entities_of_type(etype)
        for e1, e2 in itertools.combinations(entities, 2):
            pairs.append(canonical_pair(e1, e2))
    return pairs


@dataclass(frozen=True)
class ChaseStep:
    """One chase step: *pair* identified by *key_name* relying on *prerequisites*.

    ``prerequisites`` are the pairs instantiated at (recursive) entity
    variables in the witnessing instantiation — exactly the dependencies that
    make entity matching harder than transitive closure (Section 3.3).
    Prerequisite pairs of the form ``(e, e)`` (trivially identified) are
    omitted.
    """

    pair: Pair
    key_name: str
    prerequisites: Tuple[Pair, ...] = ()


@dataclass
class ChaseResult:
    """The result of a chase run.

    ``eq`` is the computed equivalence relation; :meth:`pairs` is
    ``chase(G, Σ)`` as a set of canonically ordered, non-trivial pairs.
    """

    eq: EquivalenceRelation
    steps: List[ChaseStep] = field(default_factory=list)
    rounds: int = 0
    candidates: int = 0
    checks: int = 0
    eval_stats: EvalStatistics = field(default_factory=EvalStatistics)

    def pairs(self) -> Set[Pair]:
        """All identified (non-trivial) pairs, i.e. ``chase(G, Σ)``."""
        return self.eq.pairs()

    def identified(self, e1: str, e2: str) -> bool:
        """``(G, Σ) |= (e1, e2)``."""
        return self.eq.identified(e1, e2)

    def step_for(self, e1: str, e2: str) -> Optional[ChaseStep]:
        """The chase step that directly identified ``(e1, e2)``, if any."""
        target = canonical_pair(e1, e2)
        for step in self.steps:
            if step.pair == target:
                return step
        return None

    def summary(self) -> Dict[str, int]:
        return {
            "identified_pairs": len(self.pairs()),
            "direct_steps": len(self.steps),
            "rounds": self.rounds,
            "candidates": self.candidates,
            "checks": self.checks,
        }


def _witness_prerequisites(key: Key, witness: Dict[str, Tuple[object, object]]) -> Tuple[Pair, ...]:
    """Extract the prerequisite pairs from a witnessing instantiation."""
    prerequisites: List[Pair] = []
    for node in key.pattern.nodes():
        if node.kind is not NodeKind.ENTITY_VAR:
            continue
        n1, n2 = witness[node.name]
        if isinstance(n1, str) and isinstance(n2, str) and n1 != n2:
            prerequisites.append(canonical_pair(n1, n2))
    return tuple(sorted(set(prerequisites)))


def chase(
    graph: Graph,
    keys: KeySet,
    pair_order: Optional[Sequence[Pair]] = None,
    key_order: Optional[Sequence[Key]] = None,
    use_neighborhoods: bool = True,
    record_provenance: bool = True,
    snapshot: Optional[object] = None,
    index: Optional[NeighborhoodIndex] = None,
    seed: Optional[Iterable[Pair]] = None,
    blocking: str = "off",
) -> ChaseResult:
    """Compute ``chase(G, Σ)`` sequentially.

    Parameters
    ----------
    graph, keys:
        The input graph ``G`` and key set ``Σ``.
    pair_order, key_order:
        Optional explicit orders in which candidate pairs / keys are tried.
        By the Church–Rosser property (Proposition 1) the result is the same
        for every order; the property tests rely on this hook.
    use_neighborhoods:
        When True (the default), per-pair checks are restricted to the
        d-neighbourhoods of the two entities (the data-locality property of
        Section 4.1).
    record_provenance:
        When True, each directly identified pair records the key used and the
        prerequisite pairs of its witness (see :class:`ChaseStep`).
    snapshot:
        An optional :class:`~repro.storage.snapshot.GraphSnapshot` of *graph*
        (e.g. the session cache's).  All reads — candidate enumeration,
        d-neighbourhood BFS, the guided per-pair checks — then run over the
        compiled arrays; the result is identical to the dict path.
    index:
        An optional prebuilt :class:`NeighborhoodIndex` (e.g. the session's
        cached one) to reuse d-neighbourhood BFS results across runs; it is
        extended in place with any missing entities.
    seed:
        Optional pairs merged into ``Eq`` *before* any chase step — the
        incremental-matching entry point: a previous run's surviving
        identifications seed the relation, and ``pair_order`` restricts the
        worklist to the pairs a delta could have affected.  Seed merges are
        not recorded as chase steps and do not count as checks.
    blocking:
        Candidate-enumeration strategy when *pair_order* is not given:
        ``"off"`` (default) is the quadratic :func:`candidate_pairs` scan,
        ``"auto"``/``"force"`` use the signature-blocking layer of
        :mod:`repro.matching.blocking`, which is sound (no false negatives)
        and so yields the same chase result.
    """
    if len(keys) == 0:
        eq = EquivalenceRelation(graph.entity_ids())
        for e1, e2 in seed or ():
            eq.merge(e1, e2)
        return ChaseResult(eq=eq, candidates=0)

    reader = snapshot if snapshot is not None else graph
    evaluator = GuidedPairEvaluator(reader)
    eq = EquivalenceRelation(graph.entity_ids())
    for e1, e2 in seed or ():
        eq.merge(e1, e2)
    if not use_neighborhoods:
        neighborhoods = None
    elif index is not None:
        neighborhoods = index
    elif snapshot is not None:
        from ..storage import SnapshotNeighborhoodIndex  # lazy: avoid import cycle

        neighborhoods = SnapshotNeighborhoodIndex(snapshot, keys)
    else:
        neighborhoods = NeighborhoodIndex(graph, keys)

    if pair_order is not None:
        candidates = list(pair_order)
    elif blocking != "off":
        from ..matching.blocking import blocked_candidate_pairs  # lazy: avoid import cycle

        candidates, _, _ = blocked_candidate_pairs(
            graph, keys, mode=blocking, snapshot=snapshot  # type: ignore[arg-type]
        )
    else:
        candidates = candidate_pairs(reader, keys)
    for e1, e2 in candidates:
        if not reader.has_entity(e1):
            raise MatchingError(f"candidate pair references unknown entity {e1!r}")
        if not reader.has_entity(e2):
            raise MatchingError(f"candidate pair references unknown entity {e2!r}")

    ordered_keys = list(key_order) if key_order is not None else list(keys)
    keys_by_type: Dict[str, List[Key]] = {}
    for key in ordered_keys:
        keys_by_type.setdefault(key.target_type, []).append(key)

    result = ChaseResult(eq=eq, candidates=len(candidates))
    pending: List[Pair] = list(candidates)
    rounds = 0
    while pending:
        rounds += 1
        changed = False
        still_pending: List[Pair] = []
        for e1, e2 in pending:
            if eq.identified(e1, e2):
                continue
            etype = reader.entity_type(e1)
            applicable = keys_by_type.get(etype, [])
            identified_by: Optional[Key] = None
            witness = None
            for key in applicable:
                result.checks += 1
                # "is not None", not truthiness: a fresh NeighborhoodIndex is
                # empty (len 0 → falsy) until its first nodes() call caches
                nbhd1 = neighborhoods.nodes(e1) if neighborhoods is not None else None
                nbhd2 = neighborhoods.nodes(e2) if neighborhoods is not None else None
                witness = evaluator.identify_with_witness(key, e1, e2, eq, nbhd1, nbhd2)
                if witness is not None:
                    identified_by = key
                    break
            if identified_by is not None and witness is not None:
                eq.merge(e1, e2)
                changed = True
                if record_provenance:
                    result.steps.append(
                        ChaseStep(
                            pair=canonical_pair(e1, e2),
                            key_name=identified_by.name,
                            prerequisites=_witness_prerequisites(identified_by, witness),
                        )
                    )
            else:
                still_pending.append((e1, e2))
        pending = still_pending if changed else []
    result.rounds = rounds
    result.eval_stats = evaluator.stats
    return result


def entities_identified(
    graph: Graph, keys: KeySet, e1: str, e2: str, **chase_kwargs: object
) -> bool:
    """Decision problem: ``(G, Σ) |= (e1, e2)``.

    Convenience wrapper that runs the chase and queries the result.
    """
    result = chase(graph, keys, **chase_kwargs)  # type: ignore[arg-type]
    return result.identified(e1, e2)
