"""A small textual DSL for graphs and keys, with round-trip serialization.

The DSL keeps examples, tests and the CLI readable; it is line-oriented and
has two document kinds.

Graph documents::

    # entities are declared with their type, triples with -[predicate]->
    entity alb1 : album
    entity art1 : artist
    alb1 -[name_of]-> "Anthology 2"
    alb1 -[release_year]-> 1996
    alb1 -[recorded_by]-> art1

Key documents::

    key Q1 for album:
      x -[name_of]-> name*
      x -[recorded_by]-> artist1:artist

    key Q4 for company:
      x -[name_of]-> name*
      _p:company -[name_of]-> name*
      _p:company -[parent_of]-> x
      other:company -[parent_of]-> x

Node syntax inside keys:

* ``x`` — the designated variable (its type comes from the ``for`` clause);
* ``name*`` — a value variable;
* ``other:company`` — an entity variable named ``other`` of type ``company``;
* ``_p:company`` — a wildcard named ``p`` of type ``company``;
* ``"UK"``, ``1996``, ``3.14``, ``true`` — constants.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..exceptions import ParseError
from .graph import Graph
from .key import Key, KeySet
from .pattern import (
    GraphPattern,
    NodeKind,
    PatternNode,
    PatternTriple,
    constant,
    designated,
    entity_var,
    value_var,
    wildcard,
)
from .triples import GraphNode, Literal

_ENTITY_RE = re.compile(r"^entity\s+(?P<eid>\S+)\s*:\s*(?P<etype>\S+)\s*$")
_TRIPLE_RE = re.compile(
    r"^(?P<subject>\S+)\s*-\[\s*(?P<predicate>[^\]\s]+)\s*\]->\s*(?P<object>.+?)\s*$"
)
_KEY_HEADER_RE = re.compile(r"^key\s+(?P<name>\S+)\s+for\s+(?P<etype>\S+)\s*:\s*$")
_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_\-.]*$")


def _strip_comment(line: str) -> str:
    """Remove a ``#`` comment, respecting a very small amount of quoting."""
    in_string = False
    for index, char in enumerate(line):
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            return line[:index]
    return line


def _parse_scalar(token: str, line_no: int) -> object:
    """Parse a constant scalar (string, number or boolean) from *token*."""
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return token[1:-1]
    lowered = token.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    raise ParseError(f"cannot parse value {token!r}", line=line_no)


def _format_scalar(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return f'"{value}"'
    return repr(value)


# ---------------------------------------------------------------------- #
# graphs
# ---------------------------------------------------------------------- #


def parse_graph(text: str) -> Graph:
    """Parse a graph document into a :class:`Graph`."""
    graph = Graph()
    pending_triples: List[Tuple[int, str, str, str]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        entity_match = _ENTITY_RE.match(line)
        if entity_match:
            graph.add_entity(entity_match.group("eid"), entity_match.group("etype"))
            continue
        triple_match = _TRIPLE_RE.match(line)
        if triple_match:
            pending_triples.append(
                (
                    line_no,
                    triple_match.group("subject"),
                    triple_match.group("predicate"),
                    triple_match.group("object"),
                )
            )
            continue
        raise ParseError(f"cannot parse graph line: {raw.strip()!r}", line=line_no)

    for line_no, subject, predicate, obj_token in pending_triples:
        if not graph.has_entity(subject):
            raise ParseError(f"triple subject {subject!r} is not a declared entity", line=line_no)
        obj: GraphNode
        if graph.has_entity(obj_token):
            obj = obj_token
        elif _IDENTIFIER_RE.match(obj_token) and not obj_token.lower() in ("true", "false"):
            raise ParseError(
                f"triple object {obj_token!r} looks like an entity but was never declared",
                line=line_no,
            )
        else:
            obj = Literal(_parse_scalar(obj_token, line_no))
        if isinstance(obj, Literal):
            graph.add_value(subject, predicate, obj)
        else:
            graph.add_edge(subject, predicate, obj)
    return graph


def serialize_graph(graph: Graph) -> str:
    """Serialize a graph back into the DSL (stable, sorted output)."""
    lines: List[str] = []
    for entity in sorted(graph.entities(), key=lambda e: e.eid):
        lines.append(f"entity {entity.eid} : {entity.etype}")
    for triple in sorted(graph.triples(), key=lambda t: (t.subject, t.predicate, repr(t.obj))):
        if triple.object_is_value():
            assert isinstance(triple.obj, Literal)
            obj = _format_scalar(triple.obj.value)
        else:
            obj = str(triple.obj)
        lines.append(f"{triple.subject} -[{triple.predicate}]-> {obj}")
    return "\n".join(lines) + "\n"


def load_graph(path: Union[str, Path]) -> Graph:
    """Load a graph document from *path*."""
    return parse_graph(Path(path).read_text(encoding="utf-8"))


def save_graph(graph: Graph, path: Union[str, Path]) -> None:
    """Write a graph document to *path*."""
    Path(path).write_text(serialize_graph(graph), encoding="utf-8")


# ---------------------------------------------------------------------- #
# keys
# ---------------------------------------------------------------------- #


def _parse_pattern_node(
    token: str, target_type: str, line_no: int
) -> PatternNode:
    """Parse a key-pattern node token (see module docstring for the syntax)."""
    token = token.strip()
    if token == "x":
        return designated("x", target_type)
    if token.endswith("*"):
        name = token[:-1]
        if not _IDENTIFIER_RE.match(name):
            raise ParseError(f"bad value-variable name {token!r}", line=line_no)
        return value_var(name)
    if ":" in token:
        name, _, etype = token.partition(":")
        name = name.strip()
        etype = etype.strip()
        if not etype:
            raise ParseError(f"missing type in pattern node {token!r}", line=line_no)
        if name.startswith("_"):
            bare = name[1:] or "w"
            return wildcard(bare, etype)
        if not _IDENTIFIER_RE.match(name):
            raise ParseError(f"bad entity-variable name {token!r}", line=line_no)
        return entity_var(name, etype)
    if _IDENTIFIER_RE.match(token) and token.lower() not in ("true", "false"):
        raise ParseError(
            f"pattern node {token!r} is neither 'x', a value variable (name*), "
            "a typed variable (name:type / _name:type) nor a constant",
            line=line_no,
        )
    return constant(_parse_scalar(token, line_no))


def parse_keys(text: str) -> KeySet:
    """Parse a key document into a :class:`KeySet`."""
    keys = KeySet()
    current_name: Optional[str] = None
    current_type: Optional[str] = None
    current_triples: List[PatternTriple] = []
    header_line = 0

    def flush() -> None:
        nonlocal current_name, current_type, current_triples
        if current_name is None:
            return
        if not current_triples:
            raise ParseError(
                f"key {current_name!r} has no pattern triples", line=header_line
            )
        keys.add(Key(GraphPattern(current_triples, name=current_name), name=current_name))
        current_name, current_type, current_triples = None, None, []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        header = _KEY_HEADER_RE.match(line)
        if header:
            flush()
            current_name = header.group("name")
            current_type = header.group("etype")
            header_line = line_no
            continue
        triple_match = _TRIPLE_RE.match(line)
        if triple_match:
            if current_name is None or current_type is None:
                raise ParseError("pattern triple outside of a key block", line=line_no)
            subject = _parse_pattern_node(triple_match.group("subject"), current_type, line_no)
            obj = _parse_pattern_node(triple_match.group("object"), current_type, line_no)
            current_triples.append(
                PatternTriple(subject, triple_match.group("predicate"), obj)
            )
            continue
        raise ParseError(f"cannot parse key line: {raw.strip()!r}", line=line_no)
    flush()
    return keys


def _format_pattern_node(node: PatternNode) -> str:
    if node.kind is NodeKind.DESIGNATED:
        return "x"
    if node.kind is NodeKind.VALUE_VAR:
        return f"{node.name}*"
    if node.kind is NodeKind.ENTITY_VAR:
        return f"{node.name}:{node.etype}"
    if node.kind is NodeKind.WILDCARD:
        return f"_{node.name}:{node.etype}"
    return _format_scalar(node.value)


def serialize_keys(keys: KeySet) -> str:
    """Serialize a key set back into the DSL."""
    blocks: List[str] = []
    for key in keys:
        lines = [f"key {key.name} for {key.target_type}:"]
        for triple in key.pattern.triples:
            subject = _format_pattern_node(triple.subject)
            obj = _format_pattern_node(triple.obj)
            lines.append(f"  {subject} -[{triple.predicate}]-> {obj}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"


def load_keys(path: Union[str, Path]) -> KeySet:
    """Load a key document from *path*."""
    return parse_keys(Path(path).read_text(encoding="utf-8"))


def save_keys(keys: KeySet, path: Union[str, Path]) -> None:
    """Write a key document to *path*."""
    Path(path).write_text(serialize_keys(keys), encoding="utf-8")
