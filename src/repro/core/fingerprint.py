"""Order-invariant content fingerprinting shared by ``Graph`` and the store.

A graph's fingerprint is the sum, modulo ``2**256``, of one SHA-256 *term*
per entity and per triple, formatted as 64 hex digits.  Summing (instead of
hashing a sorted serialization, as earlier versions did) makes the digest
**incrementally maintainable**: adding an entity or triple adds its term to
a running accumulator, removing subtracts it, and retyping an entity is one
subtract + one add — all O(1) per mutation, independent of graph size.
:class:`~repro.core.graph.Graph` keeps exactly this accumulator up to date
through every mutation primitive and exposes it as
:meth:`~repro.core.graph.Graph.content_fingerprint`, so store lookups no
longer pay an O(|G|) hash per run.

:func:`graph_fingerprint` is the full recompute over any graph-like object
(a ``Graph`` or a ``GraphSnapshot`` — anything with ``entities()`` and
``triples()``).  It is the verification baseline the property tests compare
the incremental accumulator against, and the only path for objects that do
not maintain one.

The per-term encodings are injective (length-prefixed chunks, canonical
literal encodings), so distinct graphs sum distinct multisets of terms; the
256-bit additive combination keeps collisions negligible for content
addressing (this is the classic AdHash construction — not meant to resist
adversarially crafted inputs, which content caching does not face).
"""

from __future__ import annotations

import hashlib
import pickle

from .triples import Literal

#: The accumulator is carried modulo ``2**_FP_BITS``; fingerprints are
#: ``_FP_BITS / 4`` hex digits (the same width as the SHA-256 hexdigests
#: earlier store formats used, so file names keep their shape).
_FP_BITS = 256
_FP_MOD = 1 << _FP_BITS
_FP_HEX = _FP_BITS // 4


def _chunk(tag: bytes, payload: bytes) -> bytes:
    """One length-prefixed hash chunk (no separator ambiguity)."""
    return tag + len(payload).to_bytes(4, "little") + payload


def _fingerprint_value(value: object) -> bytes:
    """Canonical bytes of a literal value for *fingerprinting*.

    Unlike the storage codec (which may fall back to pickle), this encoding
    is stable across processes for every commonly-hashable value:
    containers recurse, and unordered containers (frozensets) sort their
    element encodings, so hash randomization cannot leak into the
    fingerprint.  Only truly exotic user types hit the pickle fallback,
    whose cross-process stability is then up to that type.
    """
    kind = type(value)
    if kind is str:
        return b"s" + value.encode("utf-8")
    if kind is bool:
        return b"b1" if value else b"b0"
    if kind is int:
        return b"i" + str(value).encode("ascii")
    if kind is float:
        return b"f" + repr(value).encode("ascii")
    if value is None:
        return b"n"
    if kind is bytes:
        return b"y" + value
    if kind is tuple:
        return b"(" + b"".join(_chunk(b"v", _fingerprint_value(item)) for item in value) + b")"
    if kind is frozenset:
        parts = sorted(_chunk(b"v", _fingerprint_value(item)) for item in value)
        return b"{" + b"".join(parts) + b"}"
    return b"p" + pickle.dumps(value, protocol=4)


def entity_term(eid: str, etype: str) -> int:
    """The additive fingerprint term of one ``(entity id, type)`` record."""
    digest = hashlib.sha256(
        _chunk(b"E", eid.encode("utf-8")) + _chunk(b"t", etype.encode("utf-8"))
    ).digest()
    return int.from_bytes(digest, "little")


def triple_term(subject: str, predicate: str, obj: object) -> int:
    """The additive fingerprint term of one triple."""
    if isinstance(obj, Literal):
        obj_key = b"L" + _fingerprint_value(obj.value)
    else:
        obj_key = b"N" + obj.encode("utf-8")
    key = b"\x00".join((subject.encode("utf-8"), predicate.encode("utf-8"), obj_key))
    return int.from_bytes(hashlib.sha256(_chunk(b"T", key)).digest(), "little")


def format_fingerprint(accumulator: int) -> str:
    """Format an accumulator value as the canonical hex fingerprint."""
    return format(accumulator % _FP_MOD, f"0{_FP_HEX}x")


def graph_fingerprint(graph) -> str:
    """A content fingerprint of *graph* (64 hex digits), stable across processes.

    Sums the entity and triple terms of the graph's current content, making
    the fingerprint invariant under insertion order and identical for a
    :class:`~repro.core.graph.Graph` and any ``GraphSnapshot`` compiled from
    it.  This is the key the snapshot-store files are named by, and the
    recompute baseline for :meth:`Graph.content_fingerprint`.
    """
    accumulator = 0
    for entity in graph.entities():
        accumulator += entity_term(entity.eid, entity.etype)
    for triple in graph.triples():
        accumulator += triple_term(triple.subject, triple.predicate, triple.obj)
    return format_fingerprint(accumulator)


def fingerprint_of(graph) -> str:
    """The fingerprint of *graph*, via its O(1) accumulator when it has one.

    ``Graph`` maintains the accumulator incrementally; anything else (e.g. a
    ``GraphSnapshot``) pays the one-pass recompute.
    """
    accessor = getattr(graph, "content_fingerprint", None)
    if accessor is not None:
        return accessor()
    return graph_fingerprint(graph)
