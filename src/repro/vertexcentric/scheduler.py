"""Asynchronous scheduling of messages across the simulated workers.

The GraphLab-style model of the paper has no global rounds: each worker keeps
draining the queue of messages addressed to the vertices it hosts.  The
simulated scheduler reproduces that structure with one priority queue per
worker and a round-robin drain (one message per worker per turn), which is a
deterministic stand-in for concurrent workers progressing independently —
no worker ever waits for a straggler on another worker.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..exceptions import VertexCentricError
from .message import Message, VertexId


@dataclass
class SchedulerStats:
    """Counters describing one scheduler run."""

    enqueued: int = 0
    processed: int = 0
    max_queue_length: int = 0
    turns: int = 0


class AsyncScheduler:
    """Per-worker priority queues with a deterministic round-robin drain."""

    def __init__(self, num_workers: int, worker_for: Callable[[VertexId], int]) -> None:
        if num_workers < 1:
            raise VertexCentricError(f"num_workers must be >= 1, got {num_workers}")
        self._num_workers = num_workers
        self._worker_for = worker_for
        self._queues: List[List[Message]] = [[] for _ in range(num_workers)]
        self.stats = SchedulerStats()

    # ------------------------------------------------------------------ #
    # queue operations
    # ------------------------------------------------------------------ #

    def enqueue(self, message: Message) -> None:
        """Route *message* to the queue of the worker hosting its target."""
        worker = self._worker_for(message.target) % self._num_workers
        heapq.heappush(self._queues[worker], message)
        self.stats.enqueued += 1
        self.stats.max_queue_length = max(
            self.stats.max_queue_length, sum(len(q) for q in self._queues)
        )

    def pending(self) -> int:
        """Total number of messages waiting in all queues."""
        return sum(len(queue) for queue in self._queues)

    def has_pending(self) -> bool:
        return any(self._queues)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(
        self,
        handler: Callable[[Message], None],
        max_messages: Optional[int] = None,
    ) -> int:
        """Drain the queues, calling *handler* for each message.

        Workers are visited round-robin and each processes at most one message
        per turn; handlers may enqueue further messages.  Returns the number
        of messages processed.  ``max_messages`` is a safety valve against
        runaway algorithms (an exception is raised when it is exceeded).
        """
        processed = 0
        while self.has_pending():
            self.stats.turns += 1
            for worker in range(self._num_workers):
                queue = self._queues[worker]
                if not queue:
                    continue
                message = heapq.heappop(queue)
                handler(message)
                processed += 1
                self.stats.processed += 1
                if max_messages is not None and processed > max_messages:
                    raise VertexCentricError(
                        f"message budget exceeded ({max_messages}); "
                        "the vertex program appears not to terminate"
                    )
        return processed
