"""Partitioned execution of a vertex program on the shared runtime.

The classic :meth:`VertexCentricEngine.run` drains one global message pool in
a deterministic round-robin.  Partitioned execution replaces that schedule
with a *superstep* schedule that real workers can execute concurrently:

1. vertices are split across ``W`` partitions by a
   :class:`~repro.runtime.partition.Partitioner` (stable hash by default,
   locality-aware fragments optionally);
2. each superstep dispatches one task per partition with pending messages:
   the task drains its partition's inbox — local sends are processed
   immediately, messages for other partitions go to a cross-partition
   **mailbox** (the outbox);
3. a barrier routes every outbox to the target partitions' inboxes and merges
   the tasks' state deltas, in task order, into the driver's canonical state;
4. the loop ends when no cross-partition messages remain.

Every worker holds a *replica* of the run state (under the process executor a
forked copy, under serial/thread executors the engine itself, reset between
tasks).  The vertex program makes that sound by implementing the **replica
protocol** — ``replica_canonical`` / ``replica_sync`` / ``replica_delta``
(see :class:`repro.matching.eval_vc.EvalVCProgram`): its mutable state must
be *monotone* (flags only rise, equivalence classes only merge), so a replica
can always be reset to the canonical state and its deltas merged back.  A
task is therefore a pure function of ``(canonical state, inbox)``, which is
what makes the schedule — and every statistic — bit-identical across serial,
thread and process executors.

The cost models are untouched: they keep observing the same per-vertex work
and message traffic and keep reporting simulated cluster seconds for ``p``
*simulated* processors, while the executor delivers measured wall-clock
parallelism on ``W`` *real* workers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import VertexCentricError
from ..runtime import Executor, HashPartitioner, Partitioner
from .message import Message, VertexId

#: A message crossing a partition boundary: (priority, target, sender, payload).
MailboxEntry = Tuple[int, VertexId, Optional[VertexId], object]

#: The hooks a vertex program must provide for partitioned execution.
REPLICA_PROTOCOL = (
    "replica_canonical",
    "replica_sync",
    "replica_delta",
    "replica_finalize",
)


@dataclass
class SuperstepOutcome:
    """The picklable result of one partition's superstep task."""

    worker_id: int
    outbox: List[MailboxEntry] = field(default_factory=list)
    flags: tuple = ()
    merges: tuple = ()
    counters: Dict[str, int] = field(default_factory=dict)
    processed: int = 0
    sent: int = 0
    dropped: int = 0
    work_by_sim_worker: List[int] = field(default_factory=list)


class _SuperstepTask:
    """Drains one partition's inbox against the worker's engine replica."""

    def __init__(self, engine, worker_id: int, inbox: List[MailboxEntry]) -> None:
        self._engine = engine
        self.worker_id = worker_id
        self.heap: List[Message] = []
        # inbox messages keep their arrival order via sequence numbers 0..n-1;
        # locally generated messages continue the sequence, so the heap order
        # is a pure function of (canonical, inbox) in any executor.
        self._next_sequence = 0
        for priority, target, sender, payload in inbox:
            heapq.heappush(
                self.heap,
                Message(priority, self._sequence(), target, sender, payload),
            )
        self.outbox: List[MailboxEntry] = []
        self.processed = 0
        self.sent = 0
        self.dropped = 0
        self.work_by_sim_worker = [0] * engine.cost_model.processors

    def _sequence(self) -> int:
        value = self._next_sequence
        self._next_sequence += 1
        return value

    def route(
        self, target: VertexId, payload: object, sender: Optional[VertexId], priority: int
    ) -> None:
        """A send performed by the vertex program during this task."""
        if not self._engine.has_vertex(target):
            self.dropped += 1
            return
        self.sent += 1
        if self._engine._partition_of[target] == self.worker_id:
            heapq.heappush(
                self.heap,
                Message(priority, self._sequence(), target, sender, payload),
            )
        else:
            self.outbox.append((priority, target, sender, payload))

    def drain(self) -> None:
        engine = self._engine
        program = engine._program
        worker_for = engine.cost_model.worker_for
        budget = engine._max_messages
        while self.heap:
            message = heapq.heappop(self.heap)
            context = engine._superstep_context(message.target, self)
            state = engine.vertex_state(message.target)
            context.add_work(1)
            program.on_message(message.target, state, message.payload, context)
            self.work_by_sim_worker[worker_for(message.target)] += context.work
            self.processed += 1
            if budget is not None and self.processed > budget:
                raise VertexCentricError(
                    f"message budget exceeded ({budget}); "
                    "the vertex program appears not to terminate"
                )


def _run_superstep(
    engine, worker_id: int, canonical: Tuple[tuple, tuple, int], inbox: List[MailboxEntry]
) -> SuperstepOutcome:
    """Execute one partition's superstep (module-level for process pools).

    Serial and thread executors hand every task the *same* engine object; the
    site lock serialises them and ``replica_sync`` resets the shared state to
    canonical between tasks, so sharing is invisible.  Process executors hand
    each worker its own forked replica.
    """
    with engine._site_lock:
        program = engine._program
        program.replica_sync(engine._vertices, canonical)
        task = _SuperstepTask(engine, worker_id, inbox)
        task.drain()
        flags, merges, counters = program.replica_delta()
        return SuperstepOutcome(
            worker_id=worker_id,
            outbox=task.outbox,
            flags=flags,
            merges=merges,
            counters=dict(vars(counters)),
            processed=task.processed,
            sent=task.sent,
            dropped=task.dropped,
            work_by_sim_worker=task.work_by_sim_worker,
        )


class PartitionedRun:
    """One partitioned execution of an engine's program (driver side)."""

    def __init__(
        self,
        engine,
        executor: Executor,
        partitioner: Optional[Partitioner] = None,
    ) -> None:
        program = engine._program
        missing = [hook for hook in REPLICA_PROTOCOL if not hasattr(program, hook)]
        if missing:
            raise VertexCentricError(
                f"vertex program {type(program).__name__} cannot run partitioned: "
                f"it lacks the replica protocol hooks {', '.join(missing)}"
            )
        self._engine = engine
        self._executor = executor
        self._partitioner = (
            partitioner
            if partitioner is not None
            else HashPartitioner(executor.workers)
        )

    def run(self) -> None:
        engine = self._engine
        program = engine._program
        num_partitions = self._partitioner.num_partitions

        parts = self._partitioner.split(list(engine._vertices.keys()))
        engine._partition_of = {
            vertex: index for index, part in enumerate(parts) for vertex in part
        }

        # canonical run state, kept on the driver and re-broadcast per task;
        # the epoch (superstep number) lets replicas apply list tails
        # incrementally once their own deltas are known to be absorbed
        flags, seed_merges, _ = program.replica_canonical(engine._vertices)
        flag_list: List[object] = list(flags)
        flag_set = set(flags)
        # the canonical merge history starts with the program's seed merges
        # (incremental re-matching), so every replica reconstructs the same
        # seeded equivalence relation from the history alone
        merge_list: List[Tuple[str, str]] = list(seed_merges)
        from ..core.equivalence import EquivalenceRelation

        novelty_eq = EquivalenceRelation()
        for e1, e2 in seed_merges:
            novelty_eq.merge(e1, e2)
        counter_totals: Dict[str, int] = {}
        total_processed = 0

        inboxes: List[List[MailboxEntry]] = [[] for _ in range(num_partitions)]
        for entry in engine._pending_posts:
            inboxes[engine._partition_of[entry[1]]].append(entry)
        engine._pending_posts.clear()

        epoch = 0
        while any(inboxes):
            epoch += 1
            canonical = (tuple(flag_list), tuple(merge_list), epoch)
            batches = [
                (worker_id, canonical, inbox)
                for worker_id, inbox in enumerate(inboxes)
                if inbox
            ]
            outcomes = self._executor.run_tasks(_run_superstep, batches, shared=engine)

            inboxes = [[] for _ in range(num_partitions)]
            # barrier: merge deltas and route mailboxes in task order — the
            # one canonical order every executor reproduces
            for outcome in outcomes:
                for vertex in outcome.flags:
                    if vertex not in flag_set:
                        flag_set.add(vertex)
                        flag_list.append(vertex)
                for pair in outcome.merges:
                    if novelty_eq.merge(pair[0], pair[1]):
                        merge_list.append(pair)
                for name, value in outcome.counters.items():
                    counter_totals[name] = counter_totals.get(name, 0) + value
                for index, work in enumerate(outcome.work_by_sim_worker):
                    engine.cost_model.worker_work[index] += work
                engine.cost_model.record_message_sent(outcome.sent)
                engine.cost_model.record_message_processed(outcome.processed)
                engine.stats.messages_sent += outcome.sent
                engine.stats.messages_processed += outcome.processed
                engine.stats.messages_dropped += outcome.dropped
                total_processed += outcome.processed
                for entry in outcome.outbox:
                    inboxes[engine._partition_of[entry[1]]].append(entry)
            if engine._max_messages is not None and total_processed > engine._max_messages:
                raise VertexCentricError(
                    f"message budget exceeded ({engine._max_messages}); "
                    "the vertex program appears not to terminate"
                )

        # land the driver-side engine on the canonical final state
        program.replica_finalize(
            engine._vertices,
            (tuple(flag_list), tuple(merge_list), epoch + 1),
            counter_totals,
        )
