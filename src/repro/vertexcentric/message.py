"""Messages exchanged by the simulated vertex-centric engine.

A message carries an opaque payload from one vertex to another.  Payload
contents are algorithm-specific (``EMVC`` sends partial instantiation vectors,
dependency notifications and transitive-closure joins); the engine only needs
the target vertex and an optional priority used by prioritized propagation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable, Optional

#: Vertices are identified by hashable ids (EM uses entity-pair tuples).
VertexId = Hashable

_sequence = itertools.count()


@dataclass(order=True)
class Message:
    """One message in flight.

    Messages are ordered by (priority, sequence) so that a priority queue pops
    the most promising message first while remaining deterministic; lower
    priority values are processed earlier.
    """

    priority: int
    sequence: int = field(compare=True)
    target: VertexId = field(compare=False, default=None)
    sender: Optional[VertexId] = field(compare=False, default=None)
    payload: object = field(compare=False, default=None)

    @classmethod
    def create(
        cls,
        target: VertexId,
        payload: object,
        sender: Optional[VertexId] = None,
        priority: int = 0,
    ) -> "Message":
        return cls(
            priority=priority,
            sequence=next(_sequence),
            target=target,
            sender=sender,
            payload=payload,
        )
