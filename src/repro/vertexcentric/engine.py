"""The simulated vertex-centric asynchronous engine (GraphLab stand-in).

A *vertex program* is executed at every vertex of a graph (for entity
matching: the product graph ``Gp``); vertices hold mutable state and react to
messages by updating their state and sending further messages.  There are no
global rounds and no global variables — exactly the model of [31] that the
paper's ``EMVC`` targets.

The engine:

* hosts vertices on ``p`` simulated workers (hash partitioning),
* routes messages through the :class:`~repro.vertexcentric.scheduler.AsyncScheduler`,
* charges per-message processing work to the hosting worker through the
  :class:`~repro.vertexcentric.cost_model.VertexCentricCostModel`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Protocol, Tuple

from ..exceptions import VertexCentricError
from ..runtime import Executor, Partitioner, WorkAccount
from .cost_model import VertexCentricCostModel
from .message import Message, VertexId
from .scheduler import AsyncScheduler


class VertexContext(WorkAccount):
    """The API a vertex program sees while handling a message.

    Work accounting (``add_work`` / named counters / scratch space) comes from
    the shared :class:`repro.runtime.WorkAccount`, the same base the MapReduce
    task context uses.
    """

    error_class = VertexCentricError

    def __init__(self, engine: "VertexCentricEngine", vertex_id: VertexId) -> None:
        super().__init__()
        self._engine = engine
        self.vertex_id = vertex_id

    def state(self, vertex_id: Optional[VertexId] = None) -> object:
        """The mutable state of *vertex_id* (default: the current vertex).

        Reading another vertex's state models the paper's "send a message to
        (e1, e2) to check Flag" shortcut without simulating the extra hop.
        """
        return self._engine.vertex_state(vertex_id if vertex_id is not None else self.vertex_id)

    def send(
        self,
        target: VertexId,
        payload: object,
        priority: int = 0,
    ) -> None:
        """Send *payload* to *target* asynchronously."""
        self._engine._send(Message.create(target, payload, sender=self.vertex_id, priority=priority))

    def has_vertex(self, vertex_id: VertexId) -> bool:
        return self._engine.has_vertex(vertex_id)


class _SuperstepContext(VertexContext):
    """Context used under partitioned execution: sends go through the task."""

    def __init__(self, engine: "VertexCentricEngine", vertex_id: VertexId, task) -> None:
        super().__init__(engine, vertex_id)
        self._task = task

    def send(self, target: VertexId, payload: object, priority: int = 0) -> None:
        self._task.route(target, payload, self.vertex_id, priority)


class VertexProgram(Protocol):
    """A vertex program: reacts to messages delivered at vertices."""

    def on_message(self, vertex_id: VertexId, state: object, payload: object, context: VertexContext) -> None:  # pragma: no cover - protocol
        ...


@dataclass
class EngineStats:
    """Run-level statistics of the engine."""

    vertices: int = 0
    messages_sent: int = 0
    messages_processed: int = 0
    messages_dropped: int = 0


class VertexCentricEngine:
    """Hosts vertices, runs a vertex program, accounts for cost."""

    def __init__(
        self,
        program: VertexProgram,
        processors: int,
        max_messages: Optional[int] = None,
        executor: Optional[Executor] = None,
        partitioner: Optional[Partitioner] = None,
    ) -> None:
        if processors < 1:
            raise VertexCentricError(f"processors must be >= 1, got {processors}")
        self._program = program
        self._processors = processors
        self._vertices: Dict[VertexId, object] = {}
        self.cost_model = VertexCentricCostModel(processors=processors)
        self._scheduler = AsyncScheduler(processors, self.cost_model.worker_for)
        self._max_messages = max_messages
        self.stats = EngineStats()
        # Partitioned execution (see repro.vertexcentric.parallel): an
        # executor switches run() to the superstep schedule; ``processors``
        # stays the *simulated* cluster size observed by the cost model, the
        # executor's workers are the *real* parallelism.  The program must
        # implement the replica protocol.
        self._executor = executor
        self._partitioner = partitioner
        self._pending_posts: List[Tuple[int, VertexId, Optional[VertexId], object]] = []
        self._partition_of: Dict[VertexId, int] = {}
        self._site_lock = threading.RLock()

    # Engines travel to process-pool workers as the shared payload of a
    # partitioned run; pools and locks stay behind.
    def __getstate__(self) -> Dict[str, object]:
        state = self.__dict__.copy()
        state["_executor"] = None
        state["_site_lock"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._site_lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # topology
    # ------------------------------------------------------------------ #

    def add_vertex(self, vertex_id: VertexId, state: object) -> None:
        """Register a vertex with its initial mutable state."""
        if vertex_id in self._vertices:
            raise VertexCentricError(f"vertex {vertex_id!r} already exists")
        self._vertices[vertex_id] = state
        self.stats.vertices = len(self._vertices)

    def has_vertex(self, vertex_id: VertexId) -> bool:
        return vertex_id in self._vertices

    def vertex_state(self, vertex_id: VertexId) -> object:
        try:
            return self._vertices[vertex_id]
        except KeyError:
            raise VertexCentricError(f"unknown vertex {vertex_id!r}") from None

    def vertices(self) -> Iterable[VertexId]:
        return self._vertices.keys()

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    # ------------------------------------------------------------------ #
    # messaging & execution
    # ------------------------------------------------------------------ #

    def _send(self, message: Message) -> None:
        if message.target not in self._vertices:
            # messages to non-existent product-graph nodes are silently dropped,
            # like messages to filtered-out candidate pairs in the paper
            self.stats.messages_dropped += 1
            return
        self._scheduler.enqueue(message)
        self.cost_model.record_message_sent()
        self.stats.messages_sent += 1

    def post(self, target: VertexId, payload: object, priority: int = 0) -> None:
        """Inject an initial message from outside the engine (the driver)."""
        if self._executor is not None:
            if target not in self._vertices:
                self.stats.messages_dropped += 1
                return
            self._pending_posts.append((priority, target, None, payload))
            self.cost_model.record_message_sent()
            self.stats.messages_sent += 1
            return
        self._send(Message.create(target, payload, sender=None, priority=priority))

    def run(self) -> None:
        """Process messages until none are in flight.

        Without an executor this is the classic deterministic round-robin
        drain.  With one, the run is partitioned into per-worker supersteps
        with a cross-partition mailbox (see
        :mod:`repro.vertexcentric.parallel`); results are identical for every
        executor kind.
        """
        if self._executor is None:
            self._scheduler.run(self._handle, max_messages=self._max_messages)
            return
        from .parallel import PartitionedRun

        PartitionedRun(self, self._executor, self._partitioner).run()

    def _superstep_context(self, vertex_id: VertexId, task) -> VertexContext:
        """Build the message-handling context of a partitioned task."""
        return _SuperstepContext(self, vertex_id, task)

    def _handle(self, message: Message) -> None:
        context = VertexContext(self, message.target)
        state = self.vertex_state(message.target)
        context.add_work(1)
        self._program.on_message(message.target, state, message.payload, context)
        self.cost_model.add_work(message.target, context.work)
        self.cost_model.record_message_processed()
        self.stats.messages_processed += 1

    def simulated_seconds(self) -> float:
        """Simulated cluster seconds of the whole run."""
        return self.cost_model.simulated_seconds()
