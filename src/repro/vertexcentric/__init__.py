"""A simulated vertex-centric asynchronous substrate (GraphLab stand-in)."""

from .cost_model import (
    ENGINE_OVERHEAD_SECONDS,
    MESSAGE_SECONDS,
    WORK_UNIT_SECONDS,
    VertexCentricCostModel,
)
from .engine import EngineStats, VertexCentricEngine, VertexContext
from .message import Message, VertexId
from .parallel import PartitionedRun, SuperstepOutcome
from .scheduler import AsyncScheduler, SchedulerStats

__all__ = [
    "AsyncScheduler",
    "ENGINE_OVERHEAD_SECONDS",
    "EngineStats",
    "MESSAGE_SECONDS",
    "Message",
    "PartitionedRun",
    "SchedulerStats",
    "SuperstepOutcome",
    "VertexCentricCostModel",
    "VertexCentricEngine",
    "VertexContext",
    "VertexId",
    "WORK_UNIT_SECONDS",
]
