"""Deterministic cost model for the simulated vertex-centric engine.

As with the MapReduce cost model, the goal is to reproduce the *shape* of the
paper's measurements: the vertex-centric algorithms pay no per-round barrier
and no HDFS I/O — their cost is message processing, spread over the workers
hosting the vertices — which is why ``EMVC`` beats ``EMMR`` by an order of
magnitude in Figure 8 and why it is far less sensitive to the dependency-chain
length ``c`` (stragglers do not block unrelated vertices).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..runtime import stable_hash


#: Simulated seconds charged per work unit performed while processing a message.
WORK_UNIT_SECONDS = 1.5e-3
#: Simulated seconds charged per message delivered (routing + queueing).
MESSAGE_SECONDS = 5e-4
#: Fixed simulated seconds charged once per run (graph loading + program setup).
ENGINE_OVERHEAD_SECONDS = 0.15


@dataclass
class VertexCentricCostModel:
    """Accumulates per-worker work and message traffic of a run."""

    processors: int
    worker_work: List[int] = field(default_factory=list)
    messages_sent: int = 0
    messages_processed: int = 0
    setup_work: int = 0

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError(f"processors must be >= 1, got {self.processors}")
        if not self.worker_work:
            self.worker_work = [0] * self.processors

    def worker_for(self, vertex_id: object) -> int:
        """The worker hosting *vertex_id* (deterministic hash partitioning).

        Uses the process-stable :func:`repro.runtime.stable_hash`, not the
        salted builtin ``hash``, so placement — and therefore the simulated
        makespan — is identical in every process of a multiprocess run.
        """
        return stable_hash(vertex_id) % self.processors

    def add_work(self, vertex_id: object, units: int) -> None:
        """Charge *units* of work to the worker hosting *vertex_id*."""
        self.worker_work[self.worker_for(vertex_id)] += units

    def add_setup_work(self, units: int) -> None:
        """Charge product-graph / traversal-order construction work."""
        self.setup_work += units

    def record_message_sent(self, count: int = 1) -> None:
        self.messages_sent += count

    def record_message_processed(self, count: int = 1) -> None:
        self.messages_processed += count

    @property
    def total_work(self) -> int:
        return self.setup_work + sum(self.worker_work)

    def simulated_seconds(self) -> float:
        """Simulated wall-clock seconds of the run on ``processors`` workers."""
        makespan = max(self.worker_work, default=0) * WORK_UNIT_SECONDS
        messaging = self.messages_sent * MESSAGE_SECONDS / self.processors
        setup = self.setup_work * WORK_UNIT_SECONDS / self.processors
        return ENGINE_OVERHEAD_SECONDS + setup + makespan + messaging

    def breakdown(self) -> Dict[str, float]:
        return {
            "setup_seconds": ENGINE_OVERHEAD_SECONDS
            + self.setup_work * WORK_UNIT_SECONDS / self.processors,
            "compute_seconds": max(self.worker_work, default=0) * WORK_UNIT_SECONDS,
            "message_seconds": self.messages_sent * MESSAGE_SECONDS / self.processors,
            "messages_sent": float(self.messages_sent),
            "total_seconds": self.simulated_seconds(),
        }
