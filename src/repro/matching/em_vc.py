"""``EMVC`` and ``EMOptVC``: entity matching in the (simulated) vertex-centric
asynchronous model (Section 5).

The driver builds the product graph ``Gp`` from the pairing-filtered candidate
set, computes a traversal order per key, registers every product-graph node as
a vertex of the asynchronous engine, posts an initial activation to every
candidate pair and lets the engine drain.  The identified pairs are the
equivalence closure of the flags set by the vertex program.

``EMOptVC`` is the same driver with the two optimizations of Section 5.2
enabled: bounded messages (fan-out budget ``k``, default 4) and prioritized
propagation.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Sequence

from ..api.events import ProgressEvent, notify
from ..api.registry import OptionSpec, get_algorithm, register_algorithm
from ..core.equivalence import EquivalenceRelation, Pair
from ..core.graph import Graph
from ..core.key import KeySet
from ..runtime import create_executor, create_partitioner
from ..storage import GraphSnapshot
from ..vertexcentric.engine import VertexCentricEngine
from .candidates import CandidateSet, build_filtered_candidates
from .eval_vc import Activate, EvalVCProgram, PairState
from .product_graph import ProductGraph
from .result import EMResult, EMStatistics
from .traversal_order import traversal_orders

#: Default fan-out budget of EMOptVC (the paper evaluates k = 4).
DEFAULT_FANOUT = 4

#: Safety valve: the engine aborts if a run exceeds this many messages.
MAX_MESSAGES = 5_000_000


class VertexCentricEntityMatcher:
    """Base vertex-centric entity matcher (= ``EMVC``)."""

    algorithm_name = "EMVC"
    max_fanout: Optional[int] = None
    prioritize: bool = False

    def __init__(
        self,
        graph: Graph,
        keys: KeySet,
        processors: int = 4,
        *,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        partitioner: str = "hash",
        artifacts: Optional[object] = None,
        observer: Optional[Callable[[ProgressEvent], None]] = None,
        seed_pairs: Optional[Sequence[Pair]] = None,
        worklist: Optional[Sequence[Pair]] = None,
        blocking: str = "off",
    ) -> None:
        self.graph = graph
        self.keys = keys
        self.processors = processors
        #: executor kind ("serial" / "thread" / "process") or None for the
        #: classic single-process drain
        self.executor = executor
        #: real worker count of the executor pool (None: processors, capped)
        self.workers = workers
        #: vertex partitioning strategy for partitioned execution
        self.partitioner = partitioner
        #: session artifact cache (``repro.api.session.SessionArtifacts``) or None
        self.artifacts = artifacts
        self.observer = observer
        #: incremental re-matching: merges seeding ``live_eq`` (and flagging
        #: the corresponding product-graph vertices) before the engine drains
        self.seed_pairs = seed_pairs
        #: ... and the candidate pairs that receive an initial activation
        #: (None: every candidate pair)
        self.worklist = worklist
        #: candidate enumeration strategy ("off" / "auto" / "force")
        self.blocking = blocking

    def _notify(self, stage: str, **fields: object) -> None:
        notify(self.observer, ProgressEvent(algorithm=self.algorithm_name, stage=stage, **fields))

    def _snapshot(self) -> GraphSnapshot:
        """The compiled read view shared by the driver and every replica."""
        if self.artifacts is not None:
            return self.artifacts.snapshot()
        return GraphSnapshot.build(self.graph)

    def _build_candidates(self, snapshot: GraphSnapshot) -> CandidateSet:
        # the product graph only contains pairs that can be paired (Prop. 9);
        # neighbourhoods stay unreduced because the dependency map is built
        # from them and must over-approximate, never under-approximate.
        if self.artifacts is not None:
            return self.artifacts.candidates(
                filtered=True, reduce_neighborhoods=False, blocking=self.blocking
            )
        return build_filtered_candidates(
            self.graph,
            self.keys,
            reduce_neighborhoods=False,
            snapshot=snapshot,
            blocking=self.blocking,
        )

    def _build_product_graph(
        self, candidates: CandidateSet, snapshot: GraphSnapshot
    ) -> ProductGraph:
        if self.artifacts is not None:
            return self.artifacts.product_graph(
                filtered=True, reduce_neighborhoods=False, blocking=self.blocking
            )
        return ProductGraph(snapshot, self.keys, candidates)

    def _traversal_orders(self) -> Dict[str, object]:
        if self.artifacts is not None:
            return self.artifacts.traversal_orders()
        return traversal_orders(self.keys)

    def run(self) -> EMResult:
        """Execute the algorithm and return its result."""
        started = time.perf_counter()
        executor = None
        if self.executor is not None:
            executor = create_executor(
                self.executor, self.workers, processors=self.processors
            )
        try:
            result = self._run_with_executor(executor)
        finally:
            if executor is not None:
                executor.close()
        result.wall_seconds = time.perf_counter() - started
        return result

    def _run_with_executor(self, executor) -> EMResult:
        snapshot = self._snapshot()
        candidates = self._build_candidates(snapshot)
        self._notify("candidates", pending=candidates.size)
        product_graph = self._build_product_graph(candidates, snapshot)
        self._notify("product-graph", pending=product_graph.num_nodes)
        orders = self._traversal_orders()
        # the vertex program reads G through the snapshot, so partitioned
        # supersteps ship compact arrays (not graph dicts) to each replica
        program = EvalVCProgram(
            snapshot,
            self.keys,
            product_graph,
            orders,
            max_fanout=self.max_fanout,
            prioritize=self.prioritize,
            seed_pairs=self.seed_pairs,
        )
        partitioner = (
            create_partitioner(
                self.partitioner, executor.workers, key_fn=snapshot.placement_key
            )
            if executor is not None
            else None
        )
        engine = VertexCentricEngine(
            program,
            self.processors,
            max_messages=MAX_MESSAGES,
            executor=executor,
            partitioner=partitioner,
        )
        engine.cost_model.add_setup_work(product_graph.construction_work)

        candidate_set = set(candidates.pairs)
        for node in product_graph.nodes():
            n1, n2 = node
            is_candidate = node in candidate_set
            etype = None
            if is_candidate:
                etype = self.graph.entity_type(str(n1))
            # identity pairs and equal-value pairs are trivially identified;
            # seeded candidate pairs (incremental re-matching) start flagged
            trivially_equal = n1 == n2
            flag = trivially_equal or (
                is_candidate and program.live_eq.identified(str(n1), str(n2))
            )
            engine.add_vertex(
                node,
                PairState(flag=flag, is_candidate=is_candidate, etype=etype),
            )

        if self.worklist is None:
            activations = list(candidates.pairs)
        else:
            members = set(self.worklist)
            activations = [pair for pair in candidates.pairs if pair in members]
        for pair in activations:
            engine.post(pair, Activate(prerequisite=None))
        self._notify("engine", pending=len(activations))
        engine.run()

        eq = EquivalenceRelation(self.graph.entity_ids())
        for e1, e2 in program.live_eq.pairs():
            eq.merge(e1, e2)

        stats = EMStatistics(
            candidate_pairs=candidates.unfiltered_size,
            processed_pairs=len(activations),
            directly_identified=program.counters.confirmations,
            identified_pairs=len(eq.pairs()),
            checks=program.counters.eval_messages,
            messages_sent=engine.stats.messages_sent,
            messages_processed=engine.stats.messages_processed,
            work_units=engine.cost_model.total_work,
            product_graph_nodes=product_graph.num_nodes,
            product_graph_edges=product_graph.count_edges(),
            neighborhood_total=candidates.neighborhoods.total_size(),
            neighborhood_max=candidates.neighborhoods.max_size(),
        )
        breakdown = engine.cost_model.breakdown()
        breakdown.update(
            {
                "early_cancelled": float(program.counters.early_cancelled),
                "deferred_forks": float(program.counters.deferred_forks),
                "dep_notifications": float(program.counters.dep_notifications),
                "tc_flags": float(program.counters.tc_flags),
            }
        )
        self._notify("done", identified=stats.identified_pairs, pending=stats.messages_processed)
        return EMResult(
            algorithm=self.algorithm_name,
            processors=self.processors,
            eq=eq,
            simulated_seconds=engine.simulated_seconds(),
            stats=stats,
            cost_breakdown=breakdown,
        )


class OptimizedVertexCentricEntityMatcher(VertexCentricEntityMatcher):
    """``EMOptVC`` = ``EMVC`` + bounded messages + prioritized propagation."""

    algorithm_name = "EMOptVC"

    def __init__(
        self,
        graph: Graph,
        keys: KeySet,
        processors: int = 4,
        fanout: int = DEFAULT_FANOUT,
        *,
        prioritize: bool = True,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        partitioner: str = "hash",
        artifacts: Optional[object] = None,
        observer: Optional[Callable[[ProgressEvent], None]] = None,
        seed_pairs: Optional[Sequence[Pair]] = None,
        worklist: Optional[Sequence[Pair]] = None,
        blocking: str = "off",
    ) -> None:
        super().__init__(
            graph,
            keys,
            processors,
            executor=executor,
            workers=workers,
            partitioner=partitioner,
            artifacts=artifacts,
            observer=observer,
            seed_pairs=seed_pairs,
            worklist=worklist,
            blocking=blocking,
        )
        self.max_fanout = fanout
        self.prioritize = prioritize


#: The partitioning-strategy knob shared by the vertex-centric backends.
PARTITIONER_OPTION = OptionSpec(
    "partitioner",
    str,
    "hash",
    "vertex partitioning strategy for partitioned execution (hash/chunk/fragment)",
)


@register_algorithm(
    "EMVC",
    family="vertex-centric",
    options=(PARTITIONER_OPTION,),
    capabilities=("parallel", "asynchronous", "executors", "incremental", "blocking"),
    description="vertex-centric asynchronous algorithm over the product graph",
)
def _run_em_vc(
    graph: Graph,
    keys: KeySet,
    *,
    processors: int = 4,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    artifacts: Optional[object] = None,
    observer: Optional[Callable[[ProgressEvent], None]] = None,
    partitioner: str = "hash",
    seed_pairs: Optional[Sequence[Pair]] = None,
    worklist: Optional[Sequence[Pair]] = None,
    blocking: str = "off",
) -> EMResult:
    return VertexCentricEntityMatcher(
        graph,
        keys,
        processors,
        executor=executor,
        workers=workers,
        partitioner=partitioner,
        artifacts=artifacts,
        observer=observer,
        seed_pairs=seed_pairs,
        worklist=worklist,
        blocking=blocking,
    ).run()


@register_algorithm(
    "EMOptVC",
    family="vertex-centric",
    options=(
        OptionSpec("fanout", int, DEFAULT_FANOUT, "bounded-message fan-out budget k (Section 5.2)"),
        OptionSpec("prioritize", bool, True, "prioritized propagation of flag messages"),
        PARTITIONER_OPTION,
    ),
    capabilities=(
        "parallel",
        "asynchronous",
        "bounded-messages",
        "prioritized",
        "executors",
        "incremental",
        "blocking",
    ),
    description="EMVC + bounded messages and prioritized propagation",
)
def _run_em_vc_opt(
    graph: Graph,
    keys: KeySet,
    *,
    processors: int = 4,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    artifacts: Optional[object] = None,
    observer: Optional[Callable[[ProgressEvent], None]] = None,
    fanout: int = DEFAULT_FANOUT,
    prioritize: bool = True,
    partitioner: str = "hash",
    seed_pairs: Optional[Sequence[Pair]] = None,
    worklist: Optional[Sequence[Pair]] = None,
    blocking: str = "off",
) -> EMResult:
    return OptimizedVertexCentricEntityMatcher(
        graph,
        keys,
        processors,
        fanout=fanout,
        prioritize=prioritize,
        executor=executor,
        workers=workers,
        partitioner=partitioner,
        artifacts=artifacts,
        observer=observer,
        seed_pairs=seed_pairs,
        worklist=worklist,
        blocking=blocking,
    ).run()


def em_vc(graph: Graph, keys: KeySet, processors: int = 4) -> EMResult:
    """Run ``EMVC`` on *graph* with *keys* using *processors* simulated workers."""
    return get_algorithm("EMVC").run(graph, keys, processors=processors)


def em_vc_opt(
    graph: Graph, keys: KeySet, processors: int = 4, fanout: int = DEFAULT_FANOUT
) -> EMResult:
    """Run ``EMOptVC`` (bounded messages with budget *fanout*, prioritized propagation)."""
    return get_algorithm("EMOptVC").run(
        graph, keys, processors=processors, options={"fanout": fanout}
    )
