"""Blocking layer: sub-quadratic candidate generation via signature joins.

``candidate_pairs`` enumerates every same-type pair — O(n²) per type bucket,
the wall that caps graph size long before the chase does.  This module
replaces that enumeration with *signature-join* candidate generation:

1. For every key, compile a **blocking scheme**: one *signature path* per
   value variable / constant node of the pattern — the shortest pattern path
   from the designated variable ``x`` to that node, expressed as a sequence
   of ``(predicate, direction, type filter)`` steps.
2. For every entity of the key's target type, compute the **signature** of
   each path: the set of literals reachable from the entity by following the
   path's predicate steps through the graph (an inverted value index over
   the snapshot's CSR arrays serves the flat single-step case in one pass).
3. A pair becomes a candidate for a key iff its signatures *collide*
   (non-empty intersection) on **every** path of that key; the per-type
   candidate set is the union over the type's keys.

Soundness (no false negatives)
------------------------------

If a key ``Q(x)`` identifies ``(e1, e2)`` under *any* ``Eq`` during the
chase, the witnessing instantiation assigns each pattern node a pair of
graph nodes such that every pattern triple is present **in G on each side**
(:class:`~repro.core.eval_guided.GuidedPairEvaluator` checks
``has_triple`` per side; ``Eq`` only relaxes *entity identity across the two
sides*, never triple existence).  Value variables must coincide
(``n1 == n2``) and constants must equal ``d`` on both sides.  Hence for each
signature path ``x = n0 → … → nk`` ending in a value node, both entities
reach a **common literal** by following the same predicate steps — so their
path signatures intersect, on every path.  The condition is purely
structural (graph-only, independent of ``Eq``), so it is necessary at every
point of the chase, including recursive keys whose entity-variable
prerequisites only shrink the match set further.

A key is **certifiable** iff its pattern contains at least one value
variable or constant node; a pattern without any value position yields no
structural filter, so its necessary condition is trivially true.  A type
falls back to full quadratic enumeration when *any* of its keys is
uncertifiable (mode ``"auto"``); mode ``"force"`` raises
:class:`~repro.exceptions.ConfigError` instead.  ``"auto"`` and ``"force"``
produce identical pairs whenever ``"force"`` is accepted.

The emitted pairs are a subset of :func:`~repro.core.chase.candidate_pairs`
in the same order: per sorted target type, canonically ordered pairs sorted
within the type.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.equivalence import Pair
from ..core.graph import Graph
from ..core.key import Key, KeySet
from ..core.triples import Literal, is_entity_ref
from ..exceptions import ConfigError

#: The recognised values of the ``blocking`` knob.
BLOCKING_MODES: Tuple[str, ...] = ("off", "auto", "force")


def validate_blocking_mode(mode: object) -> str:
    """Validate a ``blocking`` mode string, raising :class:`ConfigError`."""
    if mode not in BLOCKING_MODES:
        raise ConfigError(
            f"blocking must be one of {'/'.join(BLOCKING_MODES)}, got {mode!r}"
        )
    return mode  # type: ignore[return-value]


@dataclass(frozen=True)
class SignatureStep:
    """One hop of a signature path.

    ``forward`` follows subject → object edges of *predicate*; backward
    follows object → subject.  ``etype`` filters the reached nodes: a type
    string keeps entities of that type, ``None`` keeps literals (value-kind
    pattern nodes carry no type).
    """

    predicate: str
    forward: bool
    etype: Optional[str]


@dataclass(frozen=True)
class SignaturePath:
    """The compiled path from ``x`` to one value position of a key pattern.

    ``constant`` is the literal a constant node must equal (``None`` for
    value variables); constant paths contribute a filter block — an entity
    participates only when it actually reaches that literal.
    """

    node_name: str
    steps: Tuple[SignatureStep, ...]
    constant: Optional[Literal] = None


@dataclass(frozen=True)
class KeyBlockingScheme:
    """The blocking scheme compiled for one key.

    ``certified`` is True when the soundness argument of the module docstring
    applies (the pattern has at least one value position); ``reason`` records
    why certification failed otherwise.
    """

    key_name: str
    target_type: str
    paths: Tuple[SignaturePath, ...]
    certified: bool
    reason: str = ""


def compile_blocking_scheme(key: Key) -> KeyBlockingScheme:
    """Compile the blocking scheme of *key* (see the module docstring)."""
    pattern = key.pattern
    value_nodes = sorted(
        (node for node in pattern.nodes() if node.is_value), key=lambda n: n.name
    )
    if not value_nodes:
        return KeyBlockingScheme(
            key_name=key.name,
            target_type=key.target_type,
            paths=(),
            certified=False,
            reason="pattern has no value variable or constant node",
        )

    # undirected pattern-node adjacency with sorted neighbours, so the BFS
    # tree (and hence the compiled steps) is independent of triple order
    adjacency: Dict[str, Set[str]] = {}
    for triple in pattern.triples:
        adjacency.setdefault(triple.subject.name, set()).add(triple.obj.name)
        adjacency.setdefault(triple.obj.name, set()).add(triple.subject.name)
    parent: Dict[str, str] = {}
    root = pattern.designated.name
    seen = {root}
    queue: deque[str] = deque([root])
    while queue:
        current = queue.popleft()
        for neighbour in sorted(adjacency.get(current, ())):
            if neighbour not in seen:
                seen.add(neighbour)
                parent[neighbour] = current
                queue.append(neighbour)

    paths: List[SignaturePath] = []
    for node in value_nodes:
        names = [node.name]
        while names[-1] != root:
            names.append(parent[names[-1]])
        names.reverse()  # x = n0, ..., nk = value node
        steps: List[SignatureStep] = []
        for a, b in zip(names, names[1:]):
            forward = sorted(
                t.predicate
                for t in pattern.triples
                if t.subject.name == a and t.obj.name == b
            )
            endpoint = pattern.node(b)
            if forward:
                steps.append(SignatureStep(forward[0], True, endpoint.etype))
            else:
                backward = sorted(
                    t.predicate
                    for t in pattern.triples
                    if t.subject.name == b and t.obj.name == a
                )
                steps.append(SignatureStep(backward[0], False, endpoint.etype))
        constant = Literal(node.value) if node.is_constant else None
        paths.append(SignaturePath(node.name, tuple(steps), constant))
    return KeyBlockingScheme(
        key_name=key.name,
        target_type=key.target_type,
        paths=tuple(paths),
        certified=True,
    )


def compile_blocking_schemes(keys: KeySet) -> Tuple[KeyBlockingScheme, ...]:
    """Compile the blocking schemes of every key of *keys*, in key order."""
    return tuple(compile_blocking_scheme(key) for key in keys)


@dataclass
class BlockingStats:
    """Observability record of one blocked candidate generation."""

    mode: str
    #: keyed types enumerated through signature blocks / via quadratic fallback.
    certified_types: int = 0
    fallback_types: int = 0
    #: what full enumeration would have produced: sum of C(|bucket|, 2).
    quadratic_pairs: int = 0
    #: pairs actually emitted.
    enumerated_pairs: int = 0
    #: anchor blocks (>= 2 members) whose pairs were enumerated.
    blocks_touched: int = 0
    index_seconds: float = 0.0
    collision_seconds: float = 0.0
    #: pairing-filter wall clock (set by ``build_filtered_candidates``).
    filter_seconds: float = 0.0

    @property
    def pairs_pruned(self) -> int:
        """Pairs the blocking layer avoided enumerating vs. the quadratic baseline."""
        return max(0, self.quadratic_pairs - self.enumerated_pairs)


#: entity -> non-empty token set; entities with empty signatures are absent.
_PathSignatures = Dict[str, FrozenSet[Literal]]


class BlockingIndex:
    """Per-key signature index over one graph version.

    Build with :meth:`build`; enumerate with :meth:`candidate_pairs`; carry
    across journal deltas with :meth:`rebased`, which recomputes signatures
    only for delta-affected entities (signature paths never leave a key's
    radius ball, so the session's ``stale | touched`` entity set covers every
    possible signature change).
    """

    __slots__ = (
        "_graph",
        "_snapshot",
        "_schemes",
        "_signatures",
        "_buckets",
        "version",
        "build_seconds",
    )

    def __init__(
        self,
        graph: Graph,
        snapshot: Optional[object],
        schemes: Tuple[KeyBlockingScheme, ...],
        signatures: Dict[int, Tuple[_PathSignatures, ...]],
        buckets: Dict[str, FrozenSet[str]],
        version: object,
        build_seconds: float,
    ) -> None:
        self._graph = graph
        self._snapshot = snapshot
        self._schemes = schemes
        self._signatures = signatures
        self._buckets = buckets
        self.version = version
        self.build_seconds = build_seconds

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        graph: Graph,
        keys: KeySet,
        *,
        snapshot: Optional[object] = None,
    ) -> "BlockingIndex":
        """Compile the schemes of *keys* and index every keyed entity.

        With a *snapshot*, signatures are computed in integer space over the
        CSR arrays (single-hop forward paths stream the snapshot's inverted
        value index in one pass); otherwise the object-space read surface of
        *graph* is used.
        """
        started = time.perf_counter()
        reader = snapshot if snapshot is not None else graph
        schemes = compile_blocking_schemes(keys)
        signatures: Dict[int, Tuple[_PathSignatures, ...]] = {}
        buckets: Dict[str, FrozenSet[str]] = {}
        for index, scheme in enumerate(schemes):
            if not scheme.certified:
                continue
            if scheme.target_type not in buckets:
                buckets[scheme.target_type] = frozenset(
                    reader.entities_of_type(scheme.target_type)
                )
            signatures[index] = tuple(
                _path_signatures(reader, snapshot, scheme.target_type, path)
                for path in scheme.paths
            )
        return cls(
            graph=graph,
            snapshot=snapshot,
            schemes=schemes,
            signatures=signatures,
            buckets=buckets,
            version=getattr(reader, "version", None),
            build_seconds=time.perf_counter() - started,
        )

    def rebased(
        self,
        graph: Graph,
        *,
        snapshot: Optional[object] = None,
        affected_entities: Iterable[str] = (),
    ) -> "BlockingIndex":
        """A new index over the current graph version, reusing signatures.

        Only *affected_entities* (and entities new since the previous
        version) are recomputed; everything else is copied.  The caller must
        pass a superset of the entities whose radius ball a delta touched —
        the session passes ``stale | touched``, which is exactly that set.
        """
        started = time.perf_counter()
        reader = snapshot if snapshot is not None else graph
        affected = set(affected_entities)
        signatures: Dict[int, Tuple[_PathSignatures, ...]] = {}
        buckets: Dict[str, FrozenSet[str]] = {}
        for index, scheme in enumerate(self._schemes):
            if not scheme.certified:
                continue
            etype = scheme.target_type
            if etype not in buckets:
                buckets[etype] = frozenset(reader.entities_of_type(etype))
            old_bucket = self._buckets.get(etype, frozenset())
            bucket = buckets[etype]
            old_per_path = self._signatures.get(index, ())
            per_path: List[_PathSignatures] = []
            for path_index, path in enumerate(scheme.paths):
                old = old_per_path[path_index] if path_index < len(old_per_path) else {}
                fresh: _PathSignatures = {}
                for entity in bucket:
                    if entity in affected or entity not in old_bucket:
                        tokens = _entity_signature(reader, snapshot, entity, path)
                        if tokens:
                            fresh[entity] = tokens
                    else:
                        tokens = old.get(entity)
                        if tokens:
                            fresh[entity] = tokens
                per_path.append(fresh)
            signatures[index] = tuple(per_path)
        return BlockingIndex(
            graph=graph,
            snapshot=snapshot,
            schemes=self._schemes,
            signatures=signatures,
            buckets=buckets,
            version=getattr(reader, "version", None),
            build_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def schemes(self) -> Tuple[KeyBlockingScheme, ...]:
        return self._schemes

    def uncertified(self) -> List[Tuple[str, str]]:
        """``(key name, reason)`` for every key the prover could not certify."""
        return [(s.key_name, s.reason) for s in self._schemes if not s.certified]

    def require_certified(self) -> None:
        """Raise :class:`ConfigError` when any key is uncertified (``force``)."""
        failures = self.uncertified()
        if failures:
            name, reason = failures[0]
            raise ConfigError(
                f"blocking='force' but key {name!r} cannot be certified for "
                f"blocking ({reason}); use blocking='auto' to fall back to "
                f"full enumeration for its target type"
            )

    # ------------------------------------------------------------------ #
    # enumeration
    # ------------------------------------------------------------------ #

    def candidate_pairs(self, mode: str = "auto") -> Tuple[List[Pair], BlockingStats]:
        """The blocked candidate set ``L`` and its stats.

        The result is a subset of the quadratic enumeration in the same
        order: per sorted target type, canonically ordered pairs sorted
        within each type.
        """
        validate_blocking_mode(mode)
        if mode == "off":
            raise ConfigError("BlockingIndex.candidate_pairs requires mode 'auto' or 'force'")
        if mode == "force":
            self.require_certified()
        started = time.perf_counter()
        stats = BlockingStats(mode=mode, index_seconds=self.build_seconds)
        reader = self._snapshot if self._snapshot is not None else self._graph
        pairs: List[Pair] = []
        target_types = sorted({s.target_type for s in self._schemes})
        for etype in target_types:
            bucket = reader.entities_of_type(etype)  # sorted entity ids
            count = len(bucket)
            stats.quadratic_pairs += count * (count - 1) // 2
            type_schemes = [
                (index, scheme)
                for index, scheme in enumerate(self._schemes)
                if scheme.target_type == etype
            ]
            if any(not scheme.certified for _, scheme in type_schemes):
                # one uncertified key makes its necessary condition trivially
                # true for the whole bucket: fall back to full enumeration
                stats.fallback_types += 1
                pairs.extend(itertools.combinations(bucket, 2))
                continue
            stats.certified_types += 1
            type_pairs: Set[Pair] = set()
            for index, scheme in type_schemes:
                per_path = self._signatures.get(index, ())
                if not per_path:
                    continue
                participants = [
                    entity
                    for entity in bucket
                    if all(entity in sigs for sigs in per_path)
                ]
                if len(participants) < 2:
                    continue
                anchor = _most_selective_path(per_path, participants)
                blocks: Dict[Literal, List[str]] = {}
                anchor_sigs = per_path[anchor]
                for entity in participants:  # sorted, so blocks stay sorted
                    for token in anchor_sigs[entity]:
                        blocks.setdefault(token, []).append(entity)
                others = [
                    sigs for i, sigs in enumerate(per_path) if i != anchor
                ]
                for members in blocks.values():
                    if len(members) < 2:
                        continue
                    stats.blocks_touched += 1
                    for e1, e2 in itertools.combinations(members, 2):
                        if (e1, e2) in type_pairs:
                            continue
                        if all(
                            not sigs[e1].isdisjoint(sigs[e2]) for sigs in others
                        ):
                            type_pairs.add((e1, e2))
            pairs.extend(sorted(type_pairs))
        stats.enumerated_pairs = len(pairs)
        stats.collision_seconds = time.perf_counter() - started
        return pairs, stats


def _most_selective_path(
    per_path: Sequence[_PathSignatures], participants: Sequence[str]
) -> int:
    """The index of the path whose blocks enumerate the fewest raw pairs."""
    best_index = 0
    best_cost: Optional[int] = None
    for index, sigs in enumerate(per_path):
        sizes: Dict[Literal, int] = {}
        for entity in participants:
            for token in sigs[entity]:
                sizes[token] = sizes.get(token, 0) + 1
        cost = sum(size * (size - 1) // 2 for size in sizes.values())
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_index = index
    return best_index


# ---------------------------------------------------------------------- #
# signature computation
# ---------------------------------------------------------------------- #


def _path_signatures(
    reader: object,
    snapshot: Optional[object],
    etype: str,
    path: SignaturePath,
) -> _PathSignatures:
    """Signatures of every *etype* entity along *path* (empty ones omitted)."""
    if snapshot is not None:
        fast = _vindex_signatures(snapshot, etype, path)
        if fast is not None:
            return fast
    result: _PathSignatures = {}
    for entity in reader.entities_of_type(etype):
        tokens = _entity_signature(reader, snapshot, entity, path)
        if tokens:
            result[entity] = tokens
    return result


def _vindex_signatures(
    snapshot: object, etype: str, path: SignaturePath
) -> Optional[_PathSignatures]:
    """One-pass signatures from the snapshot's inverted value index.

    Serves the flat-key shape (a single forward hop to a value position);
    returns ``None`` when the path has another shape or the snapshot carries
    no value index (hand-built or legacy instances).
    """
    if len(path.steps) != 1:
        return None
    step = path.steps[0]
    if not step.forward or step.etype is not None:
        return None
    postings = snapshot.value_postings(snapshot.pred_id(step.predicate))
    if postings is None:
        return None
    literals, subjects = postings
    lo, hi = snapshot.type_range(etype)
    node_at = snapshot.node_at
    found: Dict[int, Set[Literal]] = {}
    for i in range(len(subjects)):
        sid = subjects[i]
        if lo <= sid < hi:
            found.setdefault(sid, set()).add(node_at(literals[i]))
    result: _PathSignatures = {}
    for sid, values in found.items():
        tokens = frozenset(values)
        if path.constant is not None:
            tokens &= frozenset((path.constant,))
        if tokens:
            result[node_at(sid)] = tokens
    return result


def _entity_signature(
    reader: object,
    snapshot: Optional[object],
    entity: str,
    path: SignaturePath,
) -> FrozenSet[Literal]:
    """The signature of one entity: literals reachable along *path*."""
    if snapshot is not None:
        tokens = _entity_signature_int(snapshot, entity, path)
    else:
        tokens = _entity_signature_obj(reader, entity, path)
    if path.constant is not None:
        tokens &= frozenset((path.constant,))
    return tokens


def _entity_signature_int(
    snapshot: object, entity: str, path: SignaturePath
) -> FrozenSet[Literal]:
    root = snapshot.id_of(entity)
    if root is None:
        return frozenset()
    num_entities = snapshot.num_entities
    frontier: Set[int] = {root}
    for step in path.steps:
        pid = snapshot.pred_id(step.predicate)
        if pid < 0 or not frontier:
            return frozenset()
        reached: Set[int] = set()
        if step.forward:
            for node in frontier:
                reached.update(snapshot.out_ids(node, pid))
        else:
            for node in frontier:
                reached.update(snapshot.in_ids(node, pid))
        if step.etype is None:
            frontier = {i for i in reached if i >= num_entities}
        else:
            lo, hi = snapshot.type_range(step.etype)
            frontier = {i for i in reached if lo <= i < hi}
    node_at = snapshot.node_at
    return frozenset(node_at(i) for i in frontier)


def _entity_signature_obj(
    reader: object, entity: str, path: SignaturePath
) -> FrozenSet[Literal]:
    frontier: Set[object] = {entity}
    for step in path.steps:
        reached: Set[object] = set()
        if step.forward:
            for node in frontier:
                if is_entity_ref(node):
                    reached.update(reader.objects(node, step.predicate))
        else:
            for node in frontier:
                reached.update(reader.subjects(step.predicate, node))
        if step.etype is None:
            frontier = {n for n in reached if isinstance(n, Literal)}
        else:
            frontier = {
                n
                for n in reached
                if is_entity_ref(n)
                and reader.has_entity(n)
                and reader.entity_type(n) == step.etype
            }
    return frozenset(frontier)  # type: ignore[arg-type]


def blocked_candidate_pairs(
    graph: Graph,
    keys: KeySet,
    *,
    mode: str = "auto",
    snapshot: Optional[object] = None,
    index: Optional[BlockingIndex] = None,
) -> Tuple[List[Pair], BlockingStats, BlockingIndex]:
    """Convenience wrapper: build (or reuse) an index and enumerate.

    Returns ``(pairs, stats, index)`` so callers can cache the index.
    """
    blocking_index = (
        index
        if index is not None
        else BlockingIndex.build(graph, keys, snapshot=snapshot)
    )
    pairs, stats = blocking_index.candidate_pairs(mode)
    return pairs, stats, blocking_index
