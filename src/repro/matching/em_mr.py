"""``EMMR`` and ``EMVF2MR``: entity matching in (simulated) MapReduce
(Section 4.1, Fig. 4).

The driver builds the candidate set ``L`` and the d-neighbourhoods, caches
them Haloop-style, stores the global ``Eq`` (here a union–find, which
maintains the transitive closure the paper's reducer computes by joins) and
then iterates MapReduce rounds until ``Eq`` stops changing:

* **MapEM** — for each candidate pair, either confirm it from the previous
  round's ``Eq`` snapshot or run the per-pair isomorphism check restricted to
  the two d-neighbourhoods, and emit ``(entity, (e1, e2, flag))`` records;
* **ReduceEM** — group by entity, merge newly identified pairs into the
  global ``Eq`` (extending its transitive closure) and re-emit the still
  unidentified pairs for the next round.

``EMVF2MR`` is the same driver with the guided check replaced by full match
enumeration (no early termination); ``EMOptMR`` (see
:mod:`repro.matching.em_mr_opt`) adds the Section 4.2 optimizations.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple, Type

from ..api.events import ProgressEvent, notify
from ..api.registry import get_algorithm, register_algorithm
from ..core.equivalence import EquivalenceRelation, Pair, canonical_pair
from ..core.graph import Graph
from ..core.key import Key, KeySet
from ..core.neighborhood import NeighborhoodIndex
from ..mapreduce.runtime import MapReduceDriver, TaskContext
from ..runtime import create_executor
from ..storage import GraphSnapshot
from .candidates import CandidateSet, build_candidates
from .checkers import EnumerationChecker, GuidedChecker, PairChecker
from .result import EMResult, EMStatistics

#: mapper/reducer record: (e1, e2, identified?)
PairRecord = Tuple[str, str, bool]


class _MapEM:
    """The ``MapEM`` function of Fig. 4 for one round.

    The mapper is a *picklable task payload*: it carries only the small
    per-round state (the ``Eq`` snapshot and the incremental-checking set) and
    reads the heavy invariants — the graph and the d-neighbourhoods — from the
    Haloop-style worker cache, which the executor ships to each worker once
    per run rather than once per task.  Per-worker helpers (the checker) live
    in the task context's scratch space, and statistics flow back through
    ``context.count`` so the mapper object itself stays read-only.
    """

    def __init__(
        self,
        keys_by_type: Dict[str, List[Key]],
        eq_snapshot: EquivalenceRelation,
        checker_class: Type[PairChecker],
        pairs_to_check: Optional[Set[Pair]],
    ) -> None:
        self._keys_by_type = keys_by_type
        self._eq = eq_snapshot
        self._checker_class = checker_class
        self._pairs_to_check = pairs_to_check

    def _tools(self, context: TaskContext) -> Tuple[GraphSnapshot, NeighborhoodIndex, PairChecker]:
        tools = context.scratch.get("em_mr_tools")
        if tools is None:
            # the cached "snapshot" is the compiled read view of G: compact
            # arrays shipped once per worker, decoded lazily on first use
            snapshot = context.cached("snapshot")
            neighborhoods = context.cached("neighborhoods")
            tools = (snapshot, neighborhoods, self._checker_class(snapshot))
            context.scratch["em_mr_tools"] = tools
        return tools  # type: ignore[return-value]

    def map(self, key: Hashable, value: object, context: TaskContext) -> None:
        e1, e2 = key  # type: ignore[misc]
        already = bool(value) or self._eq.identified(e1, e2)
        if already:
            context.emit(e1, (e1, e2, True))
            context.emit(e2, (e1, e2, True))
            return
        if self._pairs_to_check is not None and (e1, e2) not in self._pairs_to_check:
            # incremental checking: nothing this pair depends on changed, so the
            # expensive isomorphism check is skipped this round.
            context.emit(e1, (e1, e2, False))
            return
        graph, neighborhoods, checker = self._tools(context)
        keys = self._keys_by_type.get(graph.entity_type(e1), [])
        nbhd1 = neighborhoods.nodes(e1)
        nbhd2 = neighborhoods.nodes(e2)
        identified, work = checker.check(keys, e1, e2, self._eq, nbhd1, nbhd2)
        context.count("checks")
        context.add_work(work)
        if identified:
            context.emit(e1, (e1, e2, True))
            context.emit(e2, (e1, e2, True))
        else:
            context.emit(e1, (e1, e2, False))


class _ReduceEM:
    """The ``ReduceEM`` function of Fig. 4 for one round.

    The global ``Eq`` is a union–find held by the driver; merging into it
    plays the role of the paper's reducer-side transitive-closure joins (the
    join work is still charged to the cost model via ``add_work``).  The
    reducer implements the runtime's replicate/absorb protocol: each reduce
    task runs against an independent copy of ``Eq`` and returns its merge log,
    which the driver replays in task order — the same schedule under every
    executor, so parallel runs stay bit-identical with serial ones.
    """

    def __init__(self, eq: EquivalenceRelation) -> None:
        self._eq = eq
        self.newly_identified: Set[Pair] = set()
        self._merge_log: List[Pair] = []

    def reduce(self, key: Hashable, values: List[object], context: TaskContext) -> None:
        unidentified: List[Pair] = []
        for record in values:
            e1, e2, flag = record  # type: ignore[misc]
            pair = canonical_pair(e1, e2)
            if flag:
                if self._eq.merge(e1, e2):
                    self.newly_identified.add(pair)
                    self._merge_log.append(pair)
                context.add_work(1)  # transitive-closure join work
            else:
                unidentified.append(pair)
        for pair in unidentified:
            if not self._eq.identified(*pair):
                context.emit(pair, False)

    # -- replicate/absorb protocol (see repro.mapreduce.runtime) --------- #

    def replicate(self) -> "_ReduceEM":
        """An independent copy to run one reduce task against."""
        return _ReduceEM(self._eq.copy())

    def collect(self) -> Tuple[List[Pair], Set[Pair]]:
        """The picklable state delta of one task: (merge log, new pairs)."""
        return (self._merge_log, self.newly_identified)

    def absorb(self, state: Tuple[List[Pair], Set[Pair]]) -> None:
        """Replay a task's merge log into the driver-side ``Eq``."""
        merges, newly = state
        for e1, e2 in merges:
            self._eq.merge(e1, e2)
        self.newly_identified |= newly


class MapReduceEntityMatcher:
    """Base MapReduce entity matcher (= ``EMMR``)."""

    algorithm_name = "EMMR"

    def __init__(
        self,
        graph: Graph,
        keys: KeySet,
        processors: int = 4,
        *,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        artifacts: Optional[object] = None,
        observer: Optional[Callable[[ProgressEvent], None]] = None,
        seed_pairs: Optional[Sequence[Pair]] = None,
        worklist: Optional[Sequence[Pair]] = None,
        blocking: str = "off",
    ) -> None:
        self.graph = graph
        self.keys = keys
        self.processors = processors
        #: executor kind ("serial" / "thread" / "process") or None for serial
        self.executor = executor
        #: real worker count of the executor pool (None: processors, capped)
        self.workers = workers
        #: session artifact cache (``repro.api.session.SessionArtifacts``) or None
        self.artifacts = artifacts
        self.observer = observer
        #: incremental re-matching: pairs merged into ``Eq`` before round 1
        #: (a previous run's surviving identifications) ...
        self.seed_pairs = seed_pairs
        #: ... and the candidate pairs to actually re-check (None: all)
        self.worklist = worklist
        #: candidate enumeration strategy ("off" / "auto" / "force")
        self.blocking = blocking

    def _notify(self, stage: str, **fields: object) -> None:
        notify(self.observer, ProgressEvent(algorithm=self.algorithm_name, stage=stage, **fields))

    # -- extension points overridden by EMVF2MR / EMOptMR ---------------- #

    def _snapshot(self) -> GraphSnapshot:
        """The compiled read view shared by the driver and every worker."""
        if self.artifacts is not None:
            return self.artifacts.snapshot()
        return GraphSnapshot.build(self.graph)

    def _build_candidates(self, snapshot: GraphSnapshot) -> CandidateSet:
        if self.artifacts is not None:
            return self.artifacts.candidates(
                filtered=False, reduce_neighborhoods=False, blocking=self.blocking
            )
        return build_candidates(
            self.graph, self.keys, snapshot=snapshot, blocking=self.blocking
        )

    def _checker_class(self) -> Type[PairChecker]:
        return GuidedChecker

    def _pairs_to_check(
        self,
        round_index: int,
        pending: Sequence[Pair],
        newly_identified: Set[Pair],
        candidates: CandidateSet,
    ) -> Optional[Set[Pair]]:
        """Which pending pairs must run the isomorphism check this round.

        ``None`` means "all of them" — the base algorithm re-checks every
        pending pair every round (the redundant computation that the
        incremental-checking optimization removes).
        """
        return None

    # -- main driver loop ------------------------------------------------ #

    def run(self) -> EMResult:
        """Execute the algorithm and return its result."""
        started = time.perf_counter()
        executor = create_executor(self.executor, self.workers, processors=self.processors)
        try:
            result = self._run_with_executor(executor)
        finally:
            executor.close()
        result.wall_seconds = time.perf_counter() - started
        return result

    def _run_with_executor(self, executor) -> EMResult:
        driver = MapReduceDriver(self.processors, executor=executor)
        snapshot = self._snapshot()
        driver.placement_key = snapshot.placement_key
        candidates = self._build_candidates(snapshot)
        checker_class = self._checker_class()
        keys_by_type = {
            etype: self.keys.keys_for_type(etype) for etype in self.keys.target_types()
        }

        # Driver-side preprocessing: candidate pairs + d-neighbourhood BFS,
        # cached on the workers (Haloop-style) so rounds do not re-ship them.
        # What ships is the compiled snapshot and the id-encoded neighbourhood
        # entries — compact arrays, pickled once per worker — instead of the
        # mutable graph's dict-of-dict indexes.  The snapshot is charged at
        # zero records: the graph already lives on HDFS in the paper's
        # setting, the cache entry only makes it reachable from executor
        # worker processes.
        neighborhood_total = candidates.neighborhoods.total_size()
        driver.charge_setup(candidates.unfiltered_size + neighborhood_total)
        driver.cache.put("neighborhoods", candidates.neighborhoods, records=neighborhood_total)
        driver.cache.put("keys", self.keys, records=self.keys.size)
        driver.cache.put("snapshot", snapshot, records=0)

        eq = EquivalenceRelation(self.graph.entity_ids())
        for e1, e2 in self.seed_pairs or ():
            eq.merge(e1, e2)
        seed_merges = eq.merge_count
        driver.hdfs.overwrite("eq", [])

        if self.worklist is None:
            worklist_pairs = list(candidates.pairs)
        else:
            members = set(self.worklist)
            worklist_pairs = [pair for pair in candidates.pairs if pair in members]

        stats = EMStatistics(
            candidate_pairs=candidates.unfiltered_size,
            processed_pairs=len(worklist_pairs),
            neighborhood_total=neighborhood_total,
            neighborhood_max=candidates.neighborhoods.max_size(),
        )

        self._notify("candidates", pending=len(worklist_pairs))
        pending: List[Tuple[Pair, bool]] = [(pair, False) for pair in worklist_pairs]
        newly_identified: Set[Pair] = set()
        rounds = 0
        while pending:
            rounds += 1
            eq_snapshot = eq.copy()
            to_check = self._pairs_to_check(
                rounds, [pair for pair, _ in pending], newly_identified, candidates
            )
            mapper = _MapEM(keys_by_type, eq_snapshot, checker_class, to_check)
            reducer = _ReduceEM(eq)
            job = driver.run_job(mapper, reducer, pending)
            driver.hdfs.overwrite("eq", sorted(eq.pairs()))
            stats.checks += job.counters.get("checks", 0)
            stats.shuffled_records += job.map_emitted
            newly_identified = set(reducer.newly_identified)
            # pairs that joined Eq purely through transitivity also count as
            # "newly identified" for dependency-based re-checking
            for pair, _ in pending:
                if pair not in newly_identified and not eq_snapshot.identified(*pair) and eq.identified(*pair):
                    newly_identified.add(pair)
            self._notify(
                "round",
                round=rounds,
                identified=len(eq.pairs()),
                pending=len(pending),
            )
            if not newly_identified:
                break
            pending = [
                (pair, False)
                for pair, _ in ((p, v) for p, v in (job.output))
                if isinstance(pair, tuple) and not eq.identified(*pair)
            ]

        stats.rounds = rounds
        stats.directly_identified = eq.merge_count - seed_merges
        stats.identified_pairs = len(eq.pairs())
        stats.work_units = driver.cost_model.total_work

        self._notify("done", round=rounds, identified=stats.identified_pairs)
        return EMResult(
            algorithm=self.algorithm_name,
            processors=self.processors,
            eq=eq,
            simulated_seconds=driver.simulated_seconds(),
            stats=stats,
            cost_breakdown=driver.cost_model.breakdown(),
        )


class VF2MapReduceEntityMatcher(MapReduceEntityMatcher):
    """``EMVF2MR``: the baseline that enumerates all matches per pair."""

    algorithm_name = "EMVF2MR"

    def _checker_class(self) -> Type[PairChecker]:
        return EnumerationChecker


@register_algorithm(
    "EMMR",
    family="mapreduce",
    capabilities=(
        "parallel", "rounds", "incremental-eq", "executors", "incremental", "blocking",
    ),
    description="MapReduce algorithm with the guided EvalMR check (Fig. 4)",
)
def _run_em_mr(
    graph: Graph,
    keys: KeySet,
    *,
    processors: int = 4,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    artifacts: Optional[object] = None,
    observer: Optional[Callable[[ProgressEvent], None]] = None,
    seed_pairs: Optional[Sequence[Pair]] = None,
    worklist: Optional[Sequence[Pair]] = None,
    blocking: str = "off",
) -> EMResult:
    return MapReduceEntityMatcher(
        graph,
        keys,
        processors,
        executor=executor,
        workers=workers,
        artifacts=artifacts,
        observer=observer,
        seed_pairs=seed_pairs,
        worklist=worklist,
        blocking=blocking,
    ).run()


@register_algorithm(
    "EMVF2MR",
    family="mapreduce",
    capabilities=("parallel", "rounds", "executors", "incremental", "blocking"),
    description="MapReduce baseline enumerating all matches (no early exit)",
)
def _run_em_vf2_mr(
    graph: Graph,
    keys: KeySet,
    *,
    processors: int = 4,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    artifacts: Optional[object] = None,
    observer: Optional[Callable[[ProgressEvent], None]] = None,
    seed_pairs: Optional[Sequence[Pair]] = None,
    worklist: Optional[Sequence[Pair]] = None,
    blocking: str = "off",
) -> EMResult:
    return VF2MapReduceEntityMatcher(
        graph,
        keys,
        processors,
        executor=executor,
        workers=workers,
        artifacts=artifacts,
        observer=observer,
        seed_pairs=seed_pairs,
        worklist=worklist,
        blocking=blocking,
    ).run()


def em_mr(graph: Graph, keys: KeySet, processors: int = 4) -> EMResult:
    """Run ``EMMR`` on *graph* with *keys* using *processors* simulated workers."""
    return get_algorithm("EMMR").run(graph, keys, processors=processors)


def em_vf2_mr(graph: Graph, keys: KeySet, processors: int = 4) -> EMResult:
    """Run the ``EMVF2MR`` baseline."""
    return get_algorithm("EMVF2MR").run(graph, keys, processors=processors)
