"""``EMMR`` and ``EMVF2MR``: entity matching in (simulated) MapReduce
(Section 4.1, Fig. 4).

The driver builds the candidate set ``L`` and the d-neighbourhoods, caches
them Haloop-style, stores the global ``Eq`` (here a union–find, which
maintains the transitive closure the paper's reducer computes by joins) and
then iterates MapReduce rounds until ``Eq`` stops changing:

* **MapEM** — for each candidate pair, either confirm it from the previous
  round's ``Eq`` snapshot or run the per-pair isomorphism check restricted to
  the two d-neighbourhoods, and emit ``(entity, (e1, e2, flag))`` records;
* **ReduceEM** — group by entity, merge newly identified pairs into the
  global ``Eq`` (extending its transitive closure) and re-emit the still
  unidentified pairs for the next round.

``EMVF2MR`` is the same driver with the guided check replaced by full match
enumeration (no early termination); ``EMOptMR`` (see
:mod:`repro.matching.em_mr_opt`) adds the Section 4.2 optimizations.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..api.events import ProgressEvent, notify
from ..api.registry import get_algorithm, register_algorithm
from ..core.equivalence import EquivalenceRelation, Pair, canonical_pair
from ..core.graph import Graph
from ..core.key import Key, KeySet
from ..mapreduce.runtime import MapReduceDriver, TaskContext
from .candidates import CandidateSet, build_candidates
from .checkers import EnumerationChecker, GuidedChecker, PairChecker
from .result import EMResult, EMStatistics

#: mapper/reducer record: (e1, e2, identified?)
PairRecord = Tuple[str, str, bool]


class _MapEM:
    """The ``MapEM`` function of Fig. 4 for one round."""

    def __init__(
        self,
        graph: Graph,
        keys_by_type: Dict[str, List[Key]],
        candidates: CandidateSet,
        eq_snapshot: EquivalenceRelation,
        checker: PairChecker,
        pairs_to_check: Optional[Set[Pair]],
    ) -> None:
        self._graph = graph
        self._keys_by_type = keys_by_type
        self._candidates = candidates
        self._eq = eq_snapshot
        self._checker = checker
        self._pairs_to_check = pairs_to_check
        self.checks = 0

    def map(self, key: Hashable, value: object, context: TaskContext) -> None:
        e1, e2 = key  # type: ignore[misc]
        already = bool(value) or self._eq.identified(e1, e2)
        if already:
            context.emit(e1, (e1, e2, True))
            context.emit(e2, (e1, e2, True))
            return
        if self._pairs_to_check is not None and (e1, e2) not in self._pairs_to_check:
            # incremental checking: nothing this pair depends on changed, so the
            # expensive isomorphism check is skipped this round.
            context.emit(e1, (e1, e2, False))
            return
        keys = self._keys_by_type.get(self._graph.entity_type(e1), [])
        nbhd1 = self._candidates.neighborhoods.nodes(e1)
        nbhd2 = self._candidates.neighborhoods.nodes(e2)
        identified, work = self._checker.check(keys, e1, e2, self._eq, nbhd1, nbhd2)
        self.checks += 1
        context.add_work(work)
        if identified:
            context.emit(e1, (e1, e2, True))
            context.emit(e2, (e1, e2, True))
        else:
            context.emit(e1, (e1, e2, False))


class _ReduceEM:
    """The ``ReduceEM`` function of Fig. 4 for one round.

    The global ``Eq`` is a union–find shared with the driver; merging into it
    plays the role of the paper's reducer-side transitive-closure joins (the
    join work is still charged to the cost model via ``add_work``).
    """

    def __init__(self, eq: EquivalenceRelation) -> None:
        self._eq = eq
        self.newly_identified: Set[Pair] = set()

    def reduce(self, key: Hashable, values: List[object], context: TaskContext) -> None:
        unidentified: List[Pair] = []
        for record in values:
            e1, e2, flag = record  # type: ignore[misc]
            pair = canonical_pair(e1, e2)
            if flag:
                if self._eq.merge(e1, e2):
                    self.newly_identified.add(pair)
                context.add_work(1)  # transitive-closure join work
            else:
                unidentified.append(pair)
        for pair in unidentified:
            if not self._eq.identified(*pair):
                context.emit(pair, False)


class MapReduceEntityMatcher:
    """Base MapReduce entity matcher (= ``EMMR``)."""

    algorithm_name = "EMMR"

    def __init__(
        self,
        graph: Graph,
        keys: KeySet,
        processors: int = 4,
        *,
        artifacts: Optional[object] = None,
        observer: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> None:
        self.graph = graph
        self.keys = keys
        self.processors = processors
        #: session artifact cache (``repro.api.session.SessionArtifacts``) or None
        self.artifacts = artifacts
        self.observer = observer

    def _notify(self, stage: str, **fields: object) -> None:
        notify(self.observer, ProgressEvent(algorithm=self.algorithm_name, stage=stage, **fields))

    # -- extension points overridden by EMVF2MR / EMOptMR ---------------- #

    def _build_candidates(self) -> CandidateSet:
        if self.artifacts is not None:
            return self.artifacts.candidates(filtered=False, reduce_neighborhoods=False)
        return build_candidates(self.graph, self.keys)

    def _make_checker(self) -> PairChecker:
        return GuidedChecker(self.graph)

    def _pairs_to_check(
        self,
        round_index: int,
        pending: Sequence[Pair],
        newly_identified: Set[Pair],
        candidates: CandidateSet,
    ) -> Optional[Set[Pair]]:
        """Which pending pairs must run the isomorphism check this round.

        ``None`` means "all of them" — the base algorithm re-checks every
        pending pair every round (the redundant computation that the
        incremental-checking optimization removes).
        """
        return None

    # -- main driver loop ------------------------------------------------ #

    def run(self) -> EMResult:
        """Execute the algorithm and return its result."""
        driver = MapReduceDriver(self.processors)
        candidates = self._build_candidates()
        checker = self._make_checker()
        keys_by_type = {
            etype: self.keys.keys_for_type(etype) for etype in self.keys.target_types()
        }

        # Driver-side preprocessing: candidate pairs + d-neighbourhood BFS,
        # cached on the workers (Haloop-style) so rounds do not re-ship them.
        neighborhood_total = candidates.neighborhoods.total_size()
        driver.charge_setup(candidates.unfiltered_size + neighborhood_total)
        driver.cache.put("neighborhoods", candidates.neighborhoods, records=neighborhood_total)
        driver.cache.put("keys", self.keys, records=self.keys.size)

        eq = EquivalenceRelation(self.graph.entity_ids())
        driver.hdfs.overwrite("eq", [])

        stats = EMStatistics(
            candidate_pairs=candidates.unfiltered_size,
            processed_pairs=candidates.size,
            neighborhood_total=neighborhood_total,
            neighborhood_max=candidates.neighborhoods.max_size(),
        )

        self._notify("candidates", pending=candidates.size)
        pending: List[Tuple[Pair, bool]] = [(pair, False) for pair in candidates.pairs]
        newly_identified: Set[Pair] = set()
        rounds = 0
        while pending:
            rounds += 1
            eq_snapshot = eq.copy()
            to_check = self._pairs_to_check(
                rounds, [pair for pair, _ in pending], newly_identified, candidates
            )
            mapper = _MapEM(
                self.graph, keys_by_type, candidates, eq_snapshot, checker, to_check
            )
            reducer = _ReduceEM(eq)
            job = driver.run_job(mapper, reducer, pending)
            driver.hdfs.overwrite("eq", sorted(eq.pairs()))
            stats.checks += mapper.checks
            stats.shuffled_records += job.map_emitted
            newly_identified = set(reducer.newly_identified)
            # pairs that joined Eq purely through transitivity also count as
            # "newly identified" for dependency-based re-checking
            for pair, _ in pending:
                if pair not in newly_identified and not eq_snapshot.identified(*pair) and eq.identified(*pair):
                    newly_identified.add(pair)
            self._notify(
                "round",
                round=rounds,
                identified=len(eq.pairs()),
                pending=len(pending),
            )
            if not newly_identified:
                break
            pending = [
                (pair, False)
                for pair, _ in ((p, v) for p, v in (job.output))
                if isinstance(pair, tuple) and not eq.identified(*pair)
            ]

        stats.rounds = rounds
        stats.directly_identified = eq.merge_count
        stats.identified_pairs = len(eq.pairs())
        stats.work_units = driver.cost_model.total_work

        self._notify("done", round=rounds, identified=stats.identified_pairs)
        return EMResult(
            algorithm=self.algorithm_name,
            processors=self.processors,
            eq=eq,
            simulated_seconds=driver.simulated_seconds(),
            stats=stats,
            cost_breakdown=driver.cost_model.breakdown(),
        )


class VF2MapReduceEntityMatcher(MapReduceEntityMatcher):
    """``EMVF2MR``: the baseline that enumerates all matches per pair."""

    algorithm_name = "EMVF2MR"

    def _make_checker(self) -> PairChecker:
        return EnumerationChecker(self.graph)


@register_algorithm(
    "EMMR",
    family="mapreduce",
    capabilities=("parallel", "rounds", "incremental-eq"),
    description="MapReduce algorithm with the guided EvalMR check (Fig. 4)",
)
def _run_em_mr(
    graph: Graph,
    keys: KeySet,
    *,
    processors: int = 4,
    artifacts: Optional[object] = None,
    observer: Optional[Callable[[ProgressEvent], None]] = None,
) -> EMResult:
    return MapReduceEntityMatcher(
        graph, keys, processors, artifacts=artifacts, observer=observer
    ).run()


@register_algorithm(
    "EMVF2MR",
    family="mapreduce",
    capabilities=("parallel", "rounds"),
    description="MapReduce baseline enumerating all matches (no early exit)",
)
def _run_em_vf2_mr(
    graph: Graph,
    keys: KeySet,
    *,
    processors: int = 4,
    artifacts: Optional[object] = None,
    observer: Optional[Callable[[ProgressEvent], None]] = None,
) -> EMResult:
    return VF2MapReduceEntityMatcher(
        graph, keys, processors, artifacts=artifacts, observer=observer
    ).run()


def em_mr(graph: Graph, keys: KeySet, processors: int = 4) -> EMResult:
    """Run ``EMMR`` on *graph* with *keys* using *processors* simulated workers."""
    return get_algorithm("EMMR").run(graph, keys, processors=processors)


def em_vf2_mr(graph: Graph, keys: KeySet, processors: int = 4) -> EMResult:
    """Run the ``EMVF2MR`` baseline."""
    return get_algorithm("EMVF2MR").run(graph, keys, processors=processors)
