"""Entity matching with keys: the paper's application (Sections 3–5).

The high-level entry points are the :class:`~repro.api.session.MatchSession`
facade and :func:`match_entities`, both of which dispatch through the
algorithm registry (:mod:`repro.api.registry`).  The built-in backends:

=============  ==============================================================
``chase``      sequential reference (Section 3)
``EMMR``       MapReduce algorithm with the guided ``EvalMR`` check (Fig. 4)
``EMVF2MR``    MapReduce baseline enumerating all matches (no early exit)
``EMOptMR``    ``EMMR`` + pairing filter, reduced neighbourhoods, incremental
               checking (Section 4.2)
``EMVC``       vertex-centric asynchronous algorithm over the product graph
``EMOptVC``    ``EMVC`` + bounded messages and prioritized propagation
=============  ==============================================================

Each backend registers itself with
:func:`~repro.api.registry.register_algorithm`; ``ALGORITHMS`` is the live
view of the registered names.  Backend-specific knobs (e.g. ``EMOptVC``'s
``fanout``) are forwarded as keyword options and validated per backend.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..api.events import ProgressEvent, notify
from ..api.registry import ALGORITHMS, get_algorithm, register_algorithm
from ..core.chase import chase
from ..core.graph import Graph
from ..core.key import KeySet
from ..exceptions import MatchingError
from .blocking import (
    BLOCKING_MODES,
    BlockingIndex,
    BlockingStats,
    blocked_candidate_pairs,
    compile_blocking_schemes,
)
from .candidates import CandidateSet, build_candidates, build_filtered_candidates, dependency_map
from .em_mr import (
    MapReduceEntityMatcher,
    VF2MapReduceEntityMatcher,
    em_mr,
    em_vf2_mr,
)
from .em_mr_opt import OptimizedMapReduceEntityMatcher, em_mr_opt
from .em_vc import (
    DEFAULT_FANOUT,
    OptimizedVertexCentricEntityMatcher,
    VertexCentricEntityMatcher,
    em_vc,
    em_vc_opt,
)
from .eval_vc import EvalVCProgram, PairState
from .incremental import (
    DeltaPlan,
    DependencyArtifact,
    DependencyWorklist,
    IncrementalState,
    plan_delta,
)
from .product_graph import ProductGraph
from .result import EMResult, EMStatistics
from .traversal_order import TraversalStep, traversal_order, traversal_orders, tour_is_valid


def chase_as_result(
    graph: Graph,
    keys: KeySet,
    snapshot: Optional[object] = None,
    index: Optional[object] = None,
    seed_pairs: Optional[object] = None,
    worklist: Optional[object] = None,
    blocking: str = "off",
) -> EMResult:
    """Run the sequential chase and wrap it in an :class:`EMResult`.

    ``seed_pairs`` / ``worklist`` are the incremental re-matching hooks: the
    seed is merged into ``Eq`` before any chase step and the worklist (when
    given) replaces the full candidate enumeration as the pending pair list.
    ``blocking`` selects blocked candidate enumeration (sound, so the chase
    fixpoint is unchanged).
    """
    outcome = chase(
        graph,
        keys,
        snapshot=snapshot,
        index=index,
        seed=seed_pairs,
        pair_order=worklist,
        blocking=blocking,
    )
    stats = EMStatistics(
        candidate_pairs=outcome.candidates,
        processed_pairs=outcome.candidates,
        directly_identified=len(outcome.steps),
        identified_pairs=len(outcome.pairs()),
        rounds=outcome.rounds,
        checks=outcome.checks,
        work_units=outcome.eval_stats.work,
    )
    return EMResult(
        algorithm="chase",
        processors=1,
        eq=outcome.eq,
        simulated_seconds=0.0,
        stats=stats,
    )


@register_algorithm(
    "chase",
    family="sequential",
    capabilities=("reference", "incremental", "blocking"),
    description="sequential chase, the reference implementation (Section 3)",
)
def _run_chase(
    graph: Graph,
    keys: KeySet,
    *,
    processors: int = 1,
    artifacts: Optional[object] = None,
    observer: Optional[Callable[[ProgressEvent], None]] = None,
    seed_pairs: Optional[object] = None,
    worklist: Optional[object] = None,
    blocking: str = "off",
) -> EMResult:
    snapshot = artifacts.snapshot() if artifacts is not None else None
    index = artifacts.neighborhood_index() if artifacts is not None else None
    result = chase_as_result(
        graph,
        keys,
        snapshot=snapshot,
        index=index,
        seed_pairs=seed_pairs,
        worklist=worklist,
        blocking=blocking,
    )
    # the sequential chase has no rounds to report, but it honours the
    # events contract every backend shares: a final "done" notification
    notify(
        observer,
        ProgressEvent(
            algorithm="chase",
            stage="done",
            identified=result.stats.identified_pairs,
            pending=0,
        ),
    )
    return result


def match_entities(
    graph: Graph,
    keys: KeySet,
    algorithm: str = "EMOptVC",
    processors: int = 4,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    blocking: str = "off",
    **options: object,
) -> EMResult:
    """Compute ``chase(G, Σ)`` with the requested algorithm.

    A thin compatibility wrapper over the algorithm registry: the name is
    resolved case-insensitively and any extra keyword arguments are forwarded
    to the backend as options (validated against its
    :class:`~repro.api.registry.AlgorithmSpec`).  ``executor`` / ``workers``
    select the real execution runtime (``"serial"`` / ``"thread"`` /
    ``"process"``) for backends that support it.  Raises
    :class:`~repro.exceptions.MatchingError` for unknown algorithm names and
    :class:`~repro.exceptions.ConfigError` for options the backend does not
    accept.  For repeated runs on the same graph, prefer
    :class:`repro.MatchSession`, which caches the shared indexes.
    """
    spec = get_algorithm(algorithm)
    return spec.run(
        graph,
        keys,
        processors=processors,
        options=options,
        executor=executor,
        workers=workers,
        blocking=blocking,
    )


__all__ = [
    "ALGORITHMS",
    "BLOCKING_MODES",
    "BlockingIndex",
    "BlockingStats",
    "CandidateSet",
    "DEFAULT_FANOUT",
    "DeltaPlan",
    "DependencyArtifact",
    "DependencyWorklist",
    "EMResult",
    "EMStatistics",
    "EvalVCProgram",
    "IncrementalState",
    "MapReduceEntityMatcher",
    "OptimizedMapReduceEntityMatcher",
    "OptimizedVertexCentricEntityMatcher",
    "PairState",
    "ProductGraph",
    "TraversalStep",
    "VF2MapReduceEntityMatcher",
    "VertexCentricEntityMatcher",
    "blocked_candidate_pairs",
    "build_candidates",
    "build_filtered_candidates",
    "chase_as_result",
    "compile_blocking_schemes",
    "dependency_map",
    "em_mr",
    "em_mr_opt",
    "em_vc",
    "em_vc_opt",
    "em_vf2_mr",
    "match_entities",
    "plan_delta",
    "tour_is_valid",
    "traversal_order",
    "traversal_orders",
]
