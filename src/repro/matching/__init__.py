"""Entity matching with keys: the paper's application (Sections 3–5).

The high-level entry point is :func:`match_entities`, which dispatches to the
sequential chase or to one of the parallel algorithms:

=============  ==============================================================
``chase``      sequential reference (Section 3)
``EMMR``       MapReduce algorithm with the guided ``EvalMR`` check (Fig. 4)
``EMVF2MR``    MapReduce baseline enumerating all matches (no early exit)
``EMOptMR``    ``EMMR`` + pairing filter, reduced neighbourhoods, incremental
               checking (Section 4.2)
``EMVC``       vertex-centric asynchronous algorithm over the product graph
``EMOptVC``    ``EMVC`` + bounded messages and prioritized propagation
=============  ==============================================================
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.chase import chase
from ..core.graph import Graph
from ..core.key import KeySet
from ..exceptions import MatchingError
from .candidates import CandidateSet, build_candidates, build_filtered_candidates, dependency_map
from .em_mr import (
    MapReduceEntityMatcher,
    VF2MapReduceEntityMatcher,
    em_mr,
    em_vf2_mr,
)
from .em_mr_opt import OptimizedMapReduceEntityMatcher, em_mr_opt
from .em_vc import (
    DEFAULT_FANOUT,
    OptimizedVertexCentricEntityMatcher,
    VertexCentricEntityMatcher,
    em_vc,
    em_vc_opt,
)
from .eval_vc import EvalVCProgram, PairState
from .product_graph import ProductGraph
from .result import EMResult, EMStatistics
from .traversal_order import TraversalStep, traversal_order, traversal_orders, tour_is_valid


def chase_as_result(graph: Graph, keys: KeySet) -> EMResult:
    """Run the sequential chase and wrap it in an :class:`EMResult`."""
    outcome = chase(graph, keys)
    stats = EMStatistics(
        candidate_pairs=outcome.candidates,
        processed_pairs=outcome.candidates,
        directly_identified=len(outcome.steps),
        identified_pairs=len(outcome.pairs()),
        rounds=outcome.rounds,
        checks=outcome.checks,
        work_units=outcome.eval_stats.work,
    )
    return EMResult(
        algorithm="chase",
        processors=1,
        eq=outcome.eq,
        simulated_seconds=0.0,
        stats=stats,
    )


#: Algorithm registry used by :func:`match_entities` and the CLI.
ALGORITHMS = ("chase", "EMMR", "EMVF2MR", "EMOptMR", "EMVC", "EMOptVC")


def match_entities(
    graph: Graph,
    keys: KeySet,
    algorithm: str = "EMOptVC",
    processors: int = 4,
) -> EMResult:
    """Compute ``chase(G, Σ)`` with the requested algorithm.

    Raises :class:`~repro.exceptions.MatchingError` for unknown algorithm
    names; names are case-insensitive.
    """
    canonical = {name.lower(): name for name in ALGORITHMS}
    chosen = canonical.get(algorithm.lower())
    if chosen is None:
        raise MatchingError(
            f"unknown algorithm {algorithm!r}; expected one of {', '.join(ALGORITHMS)}"
        )
    if chosen == "chase":
        return chase_as_result(graph, keys)
    if chosen == "EMMR":
        return em_mr(graph, keys, processors)
    if chosen == "EMVF2MR":
        return em_vf2_mr(graph, keys, processors)
    if chosen == "EMOptMR":
        return em_mr_opt(graph, keys, processors)
    if chosen == "EMVC":
        return em_vc(graph, keys, processors)
    return em_vc_opt(graph, keys, processors)


__all__ = [
    "ALGORITHMS",
    "CandidateSet",
    "DEFAULT_FANOUT",
    "EMResult",
    "EMStatistics",
    "EvalVCProgram",
    "MapReduceEntityMatcher",
    "OptimizedMapReduceEntityMatcher",
    "OptimizedVertexCentricEntityMatcher",
    "PairState",
    "ProductGraph",
    "TraversalStep",
    "VF2MapReduceEntityMatcher",
    "VertexCentricEntityMatcher",
    "build_candidates",
    "build_filtered_candidates",
    "chase_as_result",
    "dependency_map",
    "em_mr",
    "em_mr_opt",
    "em_vc",
    "em_vc_opt",
    "em_vf2_mr",
    "match_entities",
    "tour_is_valid",
    "traversal_order",
    "traversal_orders",
]
