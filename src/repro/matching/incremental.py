"""Incremental entity matching on journal deltas: the shared worklist layer.

The fixpoint ``chase(G, Σ)`` is *local*: whether a candidate pair ``(e1, e2)``
is directly identifiable depends only on the pair's d-neighbourhoods and on
the identification status of the pairs located inside them (the dependency
relation of Section 4.2 that ``EMOptMR`` already exploits *within* a run for
round-2 incremental checking).  This module lifts that machinery *across*
runs: given the graph's mutation journal (:meth:`Graph.touched_since`), it
computes which candidate pairs a delta could possibly have affected, closes
that set under the dependency map, and splits the previous result into

* a **seed** — the equivalence classes no affected pair touches, which are
  provably still part of the new fixpoint and are merged into ``Eq`` before
  any check runs, and
* a **worklist** — the affected pairs plus the members of every dropped
  class, which are re-chased from scratch.

Soundness sketch (the invariant the differential mutation-fuzz suite checks
empirically): a pair outside the affected closure has (a) untouched
d-neighbourhoods in both the old and the new graph, and (b) only
prerequisites outside the closure — so its direct-derivability is unchanged
by the delta.  Classes built exclusively from such pairs survive verbatim;
every other previously identified pair is re-derived or dropped.  Notably the
*new*-graph neighbourhood test is subsumed by the old one: the first touched
node on any new path from an untouched entity is reached through edges that
already existed before the delta (a new edge would have touched its
endpoints), so the old neighbourhood already intersected the touched set.

All six backends consume the same plan through their ``seed_pairs`` /
``worklist`` entry points; :class:`~repro.api.session.MatchSession` owns the
orchestration (fallback to a full run when the journal window expired or no
previous result exists).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.equivalence import EquivalenceRelation, Pair
from ..core.key import Key, KeySet
from ..core.neighborhood import NeighborhoodIndex
from ..core.pairing import pairing_relation, pairing_support_nodes
from ..core.triples import GraphNode, is_entity_ref
from .candidates import (
    CandidateSet,
    apply_support_restrictions,
    build_candidates,
    candidate_pairs_by_type,
    depends_on_types_by_target,
    pair_prerequisites,
)


class DependencyWorklist:
    """Prerequisite → dependents lookup over a dependency map.

    This is the worklist machinery ``EMOptMR`` uses for its round-2
    incremental checking (re-check a pending pair only when a pair it depends
    on was newly identified), shared here so the cross-run delta planner can
    close affected sets under the same edges.
    """

    def __init__(self, dependents: Mapping[Pair, Set[Pair]]) -> None:
        self._dependents = dependents

    def dependents_of(self, pair: Pair) -> Set[Pair]:
        return self._dependents.get(pair, set())

    def affected_by(self, newly_identified: Iterable[Pair]) -> Set[Pair]:
        """Pairs that must be re-checked after *newly_identified* flipped."""
        to_check: Set[Pair] = set()
        for pair in newly_identified:
            to_check |= self._dependents.get(pair, set())
        return to_check

    def close(self, pairs: Iterable[Pair]) -> Set[Pair]:
        """The transitive closure of *pairs* under the dependents edges."""
        closed: Set[Pair] = set(pairs)
        frontier: List[Pair] = list(closed)
        while frontier:
            pair = frontier.pop()
            for dependent in self._dependents.get(pair, ()):
                if dependent not in closed:
                    closed.add(dependent)
                    frontier.append(dependent)
        return closed


class IncrementalState:
    """What a finished run leaves behind to seed the next delta run.

    ``candidates`` (the unfiltered candidate set ``L`` at ``version``) is
    enumerated lazily from the run's immutable snapshot, so recording the
    state after every run costs only an ``Eq`` copy — sessions that never
    go incremental never pay the ``O(|L|)`` enumeration.
    """

    __slots__ = ("version", "eq", "result", "config", "_snapshot", "_keys", "_candidates")

    def __init__(
        self,
        version: int,
        eq: EquivalenceRelation,
        result: Optional[object],
        config: Optional[object],
        snapshot,
        keys: KeySet,
        candidates: Optional[FrozenSet[Pair]] = None,
    ) -> None:
        #: :attr:`Graph.version` the result corresponds to.
        self.version = version
        #: the computed fixpoint (an independent copy, never mutated).
        self.eq = eq
        #: the previous run's result, returned as-is when a delta touches
        #: nothing and the requested config matches (``EMResult``).
        self.result = result
        #: the ``MatchConfig`` that produced ``result``.
        self.config = config
        self._snapshot = snapshot
        self._keys = keys
        self._candidates = candidates

    @property
    def candidates(self) -> FrozenSet[Pair]:
        """The unfiltered candidate set ``L`` at :attr:`version`."""
        if self._candidates is None:
            from ..core.chase import candidate_pairs  # lazy: avoid import cycle

            self._candidates = frozenset(candidate_pairs(self._snapshot, self._keys))
        return self._candidates


@dataclass(frozen=True)
class DeltaPlan:
    """The affected-pair computation for one incremental run."""

    #: pairs to re-chase, in deterministic candidate order.
    worklist: Tuple[Pair, ...]
    #: merges seeding ``Eq`` (spanning edges of every surviving class).
    seed: Tuple[Pair, ...]
    #: previous equivalence classes dropped for re-derivation.
    dropped_classes: int
    #: |L| of the new graph (the invariant denominators).
    candidate_count: int

    @property
    def pairs_rechecked(self) -> int:
        return len(self.worklist)

    @property
    def pairs_skipped(self) -> int:
        return self.candidate_count - len(self.worklist)

    @property
    def result_reusable(self) -> bool:
        """Nothing to re-chase and no class dropped: the old result stands."""
        return not self.worklist and self.dropped_classes == 0


def plan_delta(
    *,
    candidate_pairs: Sequence[Pair],
    dependents: Mapping[Pair, Set[Pair]],
    touched: Set[GraphNode],
    touched_entities: Set[str],
    old_affected_entities: Set[str],
    state: IncrementalState,
    old_pair_supports: Optional[Mapping[Pair, Tuple[Set[GraphNode], Set[GraphNode]]]] = None,
    extra_identified: Sequence[Pair] = (),
    extra_dependents: Optional[Mapping[Pair, Set[Pair]]] = None,
) -> DeltaPlan:
    """Compute the seed/worklist split for a journal delta.

    Parameters
    ----------
    candidate_pairs:
        The candidate set of the *new* graph, in the deterministic order the
        backends iterate it.  Classically this is the unfiltered (quadratic)
        set; a blocked session plans over the pairing-filtered blocked set
        instead — sound because a pair outside it provably cannot fire, so
        skipping it equals checking-and-failing it.
    dependents:
        The dependency map over *candidate_pairs* (prerequisite → dependents),
        built on the new graph with full (unreduced) neighbourhoods.
    touched / touched_entities:
        The journal's touched node set since ``state.version`` and its
        entity-node subset.
    old_affected_entities:
        Entities whose *old* cached d-neighbourhood contained a touched node
        (computed from the pre-refresh session index).  By the locality
        argument in the module docstring this also covers every entity whose
        *new* neighbourhood gained a touched node.
    state:
        The previous run's :class:`IncrementalState`.
    old_pair_supports:
        The pairing-support nodes recorded at ``state.version`` (per pair, a
        ``(side1, side2)`` node-set tuple).  When given, a *previously
        identified* pair with an untouched support set is **not** marked
        stale even when its wider d-neighbourhood was touched: its old chase
        witness lives inside the pairing support (Prop. 9 — any
        identification witness is contained in the maximal pairing), so an
        untouched support means the witness survived verbatim, and a
        prerequisite that stopped holding reaches the pair through the
        dependency closure instead.  Unidentified pairs always get the full
        d-neighbourhood test — a fresh witness can appear anywhere in the
        ball.
    extra_identified:
        Previously identified pairs that are *absent* from the new candidate
        universe (their signatures stopped colliding, their pairing broke, or
        an entity was retyped away).  They can no longer fire, so they never
        enter the worklist — but they are force-marked affected so their
        classes drop and the closure re-checks their dependents.
    extra_dependents:
        Dependency edges (prerequisite → dependents) for *extra_identified*
        pairs, which the *dependents* map (keyed on the new universe) cannot
        contain.
    """
    affected: Set[Pair] = set()
    supports = old_pair_supports or {}
    use_supports = old_pair_supports is not None
    eq = state.eq
    for pair in candidate_pairs:
        e1, e2 = pair
        if pair not in state.candidates or e1 in touched or e2 in touched:
            affected.add(pair)
            continue
        if use_supports and eq.identified(e1, e2):
            support = supports.get(pair)
            if support is not None:
                if touched & support[0] or touched & support[1]:
                    affected.add(pair)
                continue
        if e1 in old_affected_entities or e2 in old_affected_entities:
            affected.add(pair)
    affected.update(extra_identified)
    if extra_dependents:
        merged: Dict[Pair, Set[Pair]] = dict(dependents)
        for prerequisite, dependent_set in extra_dependents.items():
            merged[prerequisite] = merged.get(prerequisite, set()) | dependent_set
        dependents = merged
    affected = DependencyWorklist(dependents).close(affected)

    # every entity the delta implicates: members of affected pairs plus every
    # touched entity (covers candidate pairs that *vanished*, e.g. a retype)
    implicated: Set[str] = {entity for pair in affected for entity in pair}
    implicated |= touched_entities

    seed: List[Pair] = []
    dropped_pairs: Set[Pair] = set()
    dropped_classes = 0
    for cls in state.eq.nontrivial_classes():
        members = sorted(cls)
        if implicated.intersection(cls):
            dropped_classes += 1
            dropped_pairs.update(itertools.combinations(members, 2))
        else:
            anchor = members[0]
            seed.extend((anchor, other) for other in members[1:])

    worklist = tuple(
        pair for pair in candidate_pairs if pair in affected or pair in dropped_pairs
    )
    return DeltaPlan(
        worklist=worklist,
        seed=tuple(seed),
        dropped_classes=dropped_classes,
        candidate_count=len(candidate_pairs),
    )


def extra_dependency_edges(
    graph,
    keys: KeySet,
    candidates: CandidateSet,
    extra_pairs: Sequence[Pair],
) -> Dict[Pair, Set[Pair]]:
    """Dependency edges from *extra_pairs* into the candidate universe.

    *extra_pairs* are previously identified pairs that fell out of the new
    candidate universe, so the session's cached dependency map has no row for
    them; this probes every candidate whose keys recurse into an extra pair's
    type and returns the prerequisite → dependents edges the delta closure
    needs.  Cost is proportional to the candidates of the implicated types
    (zero when *extra_pairs* is empty), never to the full universe.
    """
    edges: Dict[Pair, Set[Pair]] = {}
    # extras with a removed or retyped entity need no probing: that entity
    # was journal-touched, and it is a witness node of every dependent (a
    # prerequisite's entities are matched by the dependent's key pattern),
    # so the support-level staleness test already marks those dependents
    probeable = [
        pair
        for pair in extra_pairs
        if graph.has_entity(pair[0]) and graph.has_entity(pair[1])
        and graph.entity_type(pair[0]) == graph.entity_type(pair[1])
    ]
    if not probeable:
        return edges
    depends_on_types = depends_on_types_by_target(keys)
    extras_by_type = candidate_pairs_by_type(graph, probeable)
    extra_types = set(extras_by_type)
    for dependent in candidates.pairs:
        wanted = depends_on_types.get(graph.entity_type(dependent[0]), set())
        if not wanted & extra_types:
            continue
        for prerequisite in pair_prerequisites(
            dependent, wanted & extra_types, extras_by_type, candidates.neighborhoods
        ):
            edges.setdefault(prerequisite, set()).add(dependent)
    return edges


# --------------------------------------------------------------------------- #
# artifact rebasing: candidates and product-graph entries under a delta
# --------------------------------------------------------------------------- #


def rebase_filtered_candidates(
    old: CandidateSet,
    graph,
    keys: KeySet,
    *,
    snapshot,
    index: NeighborhoodIndex,
    affected_entities: Set[str],
    reduce_neighborhoods: bool,
    blocking: str = "off",
    blocking_index=None,
) -> CandidateSet:
    """Rebuild a pairing-filtered :class:`CandidateSet` after a journal delta,
    re-running the pairing fixpoint only for pairs the delta could have
    affected.

    A pair's pairing outcome (and its support nodes) depends only on its two
    d-neighbourhoods, so pairs whose entities are outside *affected_entities*
    keep the cached verdict from *old* (``pair_supports`` / ``rejected_pairs``).
    The result is bit-identical to :func:`build_filtered_candidates` on the
    new graph — the equivalence the mutation-fuzz suite enforces.  With
    *blocking*, pass the session's already-rebased *blocking_index* so the
    enumeration stays O(delta) instead of re-deriving every signature.
    """
    reader = snapshot if snapshot is not None else graph
    base = build_candidates(
        graph,
        keys,
        index=index,
        snapshot=snapshot,
        blocking=blocking,
        blocking_index=blocking_index,
    )
    neighborhoods = base.neighborhoods
    if reduce_neighborhoods:
        neighborhoods = index.clone()
    keys_by_type: Dict[str, List[Key]] = {
        etype: keys.keys_for_type(etype) for etype in keys.target_types()
    }
    old_supports = old.pair_supports or {}
    old_rejected = old.rejected_pairs or set()

    surviving: List[Pair] = []
    supports: Dict[Pair, Tuple[Set[GraphNode], Set[GraphNode]]] = {}
    rejected: Set[Pair] = set()
    recomputed_entities: Set[str] = set()
    for pair in base.pairs:
        e1, e2 = pair
        fresh = (
            e1 in affected_entities
            or e2 in affected_entities
            or (pair not in old_supports and pair not in old_rejected)
        )
        if not fresh:
            if pair in old_rejected:
                rejected.add(pair)
            else:
                supports[pair] = old_supports[pair]
                surviving.append(pair)
            continue
        recomputed_entities.update(pair)
        side1: Set[GraphNode] = set()
        side2: Set[GraphNode] = set()
        paired = False
        nbhd1 = neighborhoods.nodes(e1)
        nbhd2 = neighborhoods.nodes(e2)
        for key in keys_by_type.get(reader.entity_type(e1), ()):
            relation = pairing_relation(reader, key, e1, e2, nbhd1, nbhd2)
            if relation is None:
                continue
            paired = True
            support1, support2 = pairing_support_nodes(relation)
            side1 |= support1
            side2 |= support2
        if paired:
            surviving.append(pair)
            supports[pair] = (side1, side2)
        else:
            rejected.add(pair)

    drift: Optional[Set[str]] = None
    if reduce_neighborhoods:
        apply_support_restrictions(neighborhoods, supports)
        # pairing is a joint simulation: an unaffected entity's restriction
        # can still change when a pair it shares with an affected partner
        # had its support recomputed (or vanished); detect it so consumers
        # of restricted neighbourhoods widen their affected sets
        new_pair_set = {pair for pair in base.pairs}
        for pair in old_supports:
            if pair not in new_pair_set:
                recomputed_entities.update(pair)
        drift = {
            entity
            for entity in recomputed_entities
            if entity not in affected_entities
            and neighborhoods.nodes(entity) != old.neighborhoods.nodes(entity)
        }

    return CandidateSet(
        pairs=surviving,
        neighborhoods=neighborhoods,
        unfiltered_size=base.unfiltered_size,
        unreduced_neighborhood_total=base.unreduced_neighborhood_total,
        pair_supports=supports,
        rejected_pairs=rejected,
        restriction_drift=drift,
        blocking=base.blocking,
    )


class DependencyArtifact:
    """Both directions of a dependency map, rebased copy-on-write.

    ``forward`` is the consumer-facing prerequisite → dependents mapping
    (exactly :func:`~repro.matching.candidates.dependency_map`); ``rows`` is
    its inverse (dependent → prerequisites), kept so :meth:`rebased` can
    patch only delta-affected rows instead of re-deriving every edge.  Set
    objects are shared between generations and privatized on first write, so
    a rebase costs work proportional to the delta, not to ``|L|``.
    """

    __slots__ = ("forward", "rows")

    def __init__(
        self, forward: Dict[Pair, Set[Pair]], rows: Dict[Pair, Set[Pair]]
    ) -> None:
        self.forward = forward
        self.rows = rows

    @classmethod
    def build(cls, graph, keys: KeySet, candidates: CandidateSet) -> "DependencyArtifact":
        from .candidates import dependency_map  # local: avoid confusing reexport

        forward = dependency_map(graph, keys, candidates)
        rows: Dict[Pair, Set[Pair]] = {pair: set() for pair in forward}
        for prerequisite, dependents in forward.items():
            for dependent in dependents:
                rows[dependent].add(prerequisite)
        return cls(forward, rows)

    def rebased(
        self,
        graph,
        keys: KeySet,
        candidates: CandidateSet,
        affected_entities: Set[str],
    ) -> "DependencyArtifact":
        """This artifact migrated onto the new graph version after a delta.

        Rows are recomputed only for dependents with an entity in
        *affected_entities* (which covers every pair new since the old
        build); removed pairs are unlinked edge by edge; pairs new as
        *prerequisites* are probed against the unaffected dependents whose
        keys recurse into their type.  ``forward`` is bit-identical (as a
        mapping of sets) to a from-scratch build on the new graph.
        """
        depends_on_types = depends_on_types_by_target(keys)
        new_pairs = candidates.pairs
        new_set = set(new_pairs)
        old_forward, old_rows = self.forward, self.rows
        forward: Dict[Pair, Set[Pair]] = dict(old_forward)
        rows: Dict[Pair, Set[Pair]] = dict(old_rows)
        owned_forward: Set[Pair] = set()
        owned_rows: Set[Pair] = set()

        def own_forward(pair: Pair) -> Set[Pair]:
            if pair not in owned_forward:
                forward[pair] = set(forward.get(pair, ()))
                owned_forward.add(pair)
            return forward[pair]

        def own_row(pair: Pair) -> Set[Pair]:
            if pair not in owned_rows:
                rows[pair] = set(rows.get(pair, ()))
                owned_rows.add(pair)
            return rows[pair]

        # 1) unlink pairs that stopped being candidates
        removed = [pair for pair in old_forward if pair not in new_set]
        for pair in removed:
            for prerequisite in old_rows.get(pair, ()):
                if prerequisite in new_set:
                    own_forward(prerequisite).discard(pair)
            for dependent in old_forward.get(pair, ()):
                if dependent in new_set:
                    own_row(dependent).discard(pair)
            forward.pop(pair, None)
            rows.pop(pair, None)
            owned_forward.discard(pair)
            owned_rows.discard(pair)

        # 2) recompute the rows of affected dependents (covers new pairs too)
        affected_dependents = [
            pair
            for pair in new_pairs
            if pair[0] in affected_entities or pair[1] in affected_entities
        ]
        fresh = [pair for pair in new_pairs if pair not in old_forward]
        candidate_index = (
            candidate_pairs_by_type(graph, list(new_pairs))
            if affected_dependents
            else {}
        )
        for dependent in affected_dependents:
            wanted = depends_on_types.get(graph.entity_type(dependent[0]), set())
            new_row = pair_prerequisites(
                dependent, wanted, candidate_index, candidates.neighborhoods
            )
            old_row = rows.get(dependent, set())
            for prerequisite in old_row - new_row:
                own_forward(prerequisite).discard(dependent)
            for prerequisite in new_row - old_row:
                own_forward(prerequisite).add(dependent)
            rows[dependent] = new_row
            owned_rows.add(dependent)

        # 3) probe fresh pairs as prerequisites of *unaffected* dependents
        if fresh:
            fresh_by_type = candidate_pairs_by_type(graph, fresh)
            fresh_types = set(fresh_by_type)
            recomputed = set(affected_dependents)
            for dependent in new_pairs:
                if dependent in recomputed:
                    continue
                wanted = depends_on_types.get(graph.entity_type(dependent[0]), set())
                if not wanted & fresh_types:
                    continue
                added = pair_prerequisites(
                    dependent, wanted, fresh_by_type, candidates.neighborhoods
                )
                if added:
                    own_row(dependent).update(added)
                    for prerequisite in added:
                        own_forward(prerequisite).add(dependent)

        # every candidate pair is a forward/rows key, exactly like build()
        for pair in fresh:
            forward.setdefault(pair, set())
            rows.setdefault(pair, set())
        return DependencyArtifact(forward, rows)


def touched_entity_nodes(graph, touched: Set[GraphNode]) -> Set[str]:
    """The touched nodes that are (still) entities of *graph*."""
    return {
        node for node in touched if is_entity_ref(node) and graph.has_entity(node)
    }
