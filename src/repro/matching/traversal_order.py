"""Traversal orders ``P_Q``: the guided tours of key patterns (Section 5.1).

``EMVC`` propagates each evaluation message along a fixed tour of the key's
pattern that starts and ends at the designated variable ``x`` and covers every
pattern triple.  Finding a shortest such tour is the (NP-complete) Chinese
Postman problem, so — like the paper — we use a greedy construction: a DFS
from ``x`` that traverses every edge once downwards and once upwards, giving a
tour of exactly ``2·|Q|`` steps (the bound quoted in Lemma 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..core.key import Key, KeySet
from ..core.pattern import GraphPattern, PatternTriple


@dataclass(frozen=True)
class TraversalStep:
    """One step of a tour.

    ``forward`` is True when the cursor moves from the triple's subject to its
    object, False when it moves from the object back to the subject.
    """

    triple: PatternTriple
    forward: bool

    @property
    def source_name(self) -> str:
        """The pattern node the cursor is at before the step."""
        return self.triple.subject.name if self.forward else self.triple.obj.name

    @property
    def target_name(self) -> str:
        """The pattern node the cursor is at after the step."""
        return self.triple.obj.name if self.forward else self.triple.subject.name


def traversal_order(pattern: GraphPattern) -> List[TraversalStep]:
    """A tour of *pattern* starting and ending at ``x``, covering all triples.

    The tour is a DFS double-traversal: each pattern triple contributes one
    step away from ``x``'s DFS tree position and one step back, so the length
    is ``2·|Q|`` and the final cursor position is ``x`` again.
    """
    steps: List[TraversalStep] = []
    visited: Set[str] = set()
    covered: Set[Tuple[str, str, str]] = set()

    def edge_key(triple: PatternTriple) -> Tuple[str, str, str]:
        return (triple.subject.name, triple.predicate, triple.obj.name)

    def dfs(node_name: str) -> None:
        visited.add(node_name)
        adjacent = sorted(
            pattern.adjacent_triples(node_name),
            key=lambda t: (t.predicate, t.subject.name, t.obj.name),
        )
        for triple in adjacent:
            key = edge_key(triple)
            if key in covered:
                continue
            covered.add(key)
            forward = triple.subject.name == node_name
            other = triple.obj.name if forward else triple.subject.name
            steps.append(TraversalStep(triple, forward))
            if other not in visited:
                dfs(other)
            steps.append(TraversalStep(triple, not forward))

    dfs(pattern.designated.name)
    return steps


def traversal_orders(keys: KeySet) -> Dict[str, List[TraversalStep]]:
    """Tours for every key of *keys*, indexed by key name."""
    return {key.name: traversal_order(key.pattern) for key in keys}


def tour_is_valid(pattern: GraphPattern, steps: List[TraversalStep]) -> bool:
    """Check the defining properties of a tour (used by tests).

    The tour must start and end at the designated variable, consecutive steps
    must share their cursor position, and every pattern triple must be covered
    at least once.
    """
    if not steps:
        return len(pattern.triples) == 0
    if steps[0].source_name != pattern.designated.name:
        return False
    if steps[-1].target_name != pattern.designated.name:
        return False
    for previous, current in zip(steps, steps[1:]):
        if previous.target_name != current.source_name:
            return False
    covered = {
        (s.triple.subject.name, s.triple.predicate, s.triple.obj.name) for s in steps
    }
    required = {(t.subject.name, t.predicate, t.obj.name) for t in pattern.triples}
    return required <= covered
