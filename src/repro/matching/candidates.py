"""Construction and filtering of the candidate set ``L``.

``L`` contains every pair of same-type entities on which at least one key is
defined; the optimized algorithms shrink it with the pairing relation of
Proposition 9 (a cheap necessary condition) before any isomorphism check, and
shrink the d-neighbourhoods to pairing-supported nodes at the same time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.chase import candidate_pairs
from ..core.equivalence import Pair
from ..core.graph import Graph
from ..core.key import Key, KeySet
from ..core.neighborhood import NeighborhoodIndex
from ..core.pairing import pairing_relation, pairing_support_nodes
from ..core.triples import GraphNode
from ..storage import GraphSnapshot, SnapshotNeighborhoodIndex
from .blocking import BlockingIndex, BlockingStats, blocked_candidate_pairs


@dataclass
class CandidateSet:
    """The candidate pairs to check, with the supporting neighbourhood index."""

    pairs: List[Pair]
    neighborhoods: NeighborhoodIndex
    #: |L| before the pairing filter (for the optimization-effectiveness stats).
    unfiltered_size: int = 0
    #: total neighbourhood size before reduction (nodes).
    unreduced_neighborhood_total: int = 0
    #: pairing provenance of *filtered* sets: surviving pair -> the two
    #: pairing-support node sets (``None`` on unfiltered sets).  Incremental
    #: rebasing (``repro.matching.incremental``) reuses these to skip the
    #: pairing fixpoint for pairs a journal delta cannot have affected.
    pair_supports: Optional[Dict[Pair, Tuple[Set[GraphNode], Set[GraphNode]]]] = None
    #: pairs the pairing filter rejected (``None`` on unfiltered sets).
    rejected_pairs: Optional[Set[Pair]] = None
    #: entities whose *reduced* neighbourhood changed in a rebase although
    #: they were not delta-affected themselves: pairing supports are a joint
    #: simulation, so a mutation entirely on the partner's side of a pair
    #: can grow/shrink this side's support union.  Consumers keyed on
    #: restricted neighbourhoods (the reduce-flavour dependency map) must
    #: treat these entities as affected too.  ``None`` on built (non-rebased)
    #: or unreduced sets.
    restriction_drift: Optional[Set[str]] = None
    #: observability of the blocked enumeration (``None`` when the pairs came
    #: from the classic quadratic path).
    blocking: Optional[BlockingStats] = None

    @property
    def size(self) -> int:
        return len(self.pairs)

    def reduction_ratio(self) -> float:
        """Fraction of candidate pairs removed by the pairing filter."""
        if self.unfiltered_size == 0:
            return 0.0
        return 1.0 - (len(self.pairs) / self.unfiltered_size)

    def neighborhood_reduction_factor(self) -> float:
        """How many times smaller the reduced neighbourhoods are."""
        reduced = self.neighborhoods.total_size()
        if reduced == 0:
            return 1.0
        return self.unreduced_neighborhood_total / reduced


def build_candidates(
    graph: Graph,
    keys: KeySet,
    *,
    index: Optional[NeighborhoodIndex] = None,
    snapshot: Optional[GraphSnapshot] = None,
    blocking: str = "off",
    blocking_index: Optional[BlockingIndex] = None,
) -> CandidateSet:
    """The unfiltered candidate set ``L`` with full d-neighbourhoods.

    Pass a prebuilt *index* (e.g. a session cache) to reuse neighbourhood BFS
    results across runs; it is extended in place with any missing entities.
    With a *snapshot*, candidate enumeration reads the compiled type buckets
    and a fresh index extracts neighbourhoods over the CSR arrays.

    *blocking* selects the enumeration strategy: ``"off"`` is the classic
    quadratic scan, ``"auto"`` enumerates through signature blocks with a
    per-type quadratic fallback for uncertified keys, ``"force"`` refuses to
    fall back (see :mod:`repro.matching.blocking`).  A prebuilt
    *blocking_index* (session cache) skips the signature build.
    """
    reader = snapshot if snapshot is not None else graph
    stats: Optional[BlockingStats] = None
    if blocking != "off":
        pairs, stats, _ = blocked_candidate_pairs(
            graph, keys, mode=blocking, snapshot=snapshot, index=blocking_index
        )
    else:
        pairs = candidate_pairs(reader, keys)
    if index is not None:
        neighborhoods = index
    elif snapshot is not None:
        neighborhoods = SnapshotNeighborhoodIndex(snapshot, keys)
    else:
        neighborhoods = NeighborhoodIndex(graph, keys)
    involved = {e for pair in pairs for e in pair}
    neighborhoods.precompute(involved)
    total = neighborhoods.total_size()
    return CandidateSet(
        pairs=pairs,
        neighborhoods=neighborhoods,
        unfiltered_size=len(pairs),
        unreduced_neighborhood_total=total,
        blocking=stats,
    )


def build_filtered_candidates(
    graph: Graph,
    keys: KeySet,
    reduce_neighborhoods: bool = True,
    *,
    index: Optional[NeighborhoodIndex] = None,
    snapshot: Optional[GraphSnapshot] = None,
    blocking: str = "off",
    blocking_index: Optional[BlockingIndex] = None,
) -> CandidateSet:
    """The candidate set after the pairing filter of Section 4.2.

    Pairs that cannot be paired by any key are dropped (Proposition 9(a));
    when *reduce_neighborhoods* is set, the d-neighbourhoods of surviving
    pairs are shrunk to the union of pairing-supported nodes.  A shared
    *index* is never reduced in place — the reduction happens on a clone, so
    the caller's cache stays valid for unreduced consumers.  A *snapshot*
    routes every read (type lookups, the pairing fixpoint) through the
    compiled layer.
    """
    reader = snapshot if snapshot is not None else graph
    base = build_candidates(
        graph,
        keys,
        index=index,
        snapshot=snapshot,
        blocking=blocking,
        blocking_index=blocking_index,
    )
    neighborhoods = base.neighborhoods
    filter_started = time.perf_counter()
    if reduce_neighborhoods and index is not None:
        neighborhoods = index.clone()
    keys_by_type: Dict[str, List[Key]] = {
        etype: keys.keys_for_type(etype) for etype in keys.target_types()
    }

    surviving: List[Pair] = []
    supports: Dict[Pair, Tuple[Set[GraphNode], Set[GraphNode]]] = {}
    rejected: Set[Pair] = set()
    for e1, e2 in base.pairs:
        etype = reader.entity_type(e1)
        nbhd1 = neighborhoods.nodes(e1)
        nbhd2 = neighborhoods.nodes(e2)
        side1: Set[GraphNode] = set()
        side2: Set[GraphNode] = set()
        paired = False
        for key in keys_by_type.get(etype, ()):
            relation = pairing_relation(reader, key, e1, e2, nbhd1, nbhd2)
            if relation is None:
                continue
            paired = True
            support1, support2 = pairing_support_nodes(relation)
            side1 |= support1
            side2 |= support2
        if not paired:
            rejected.add((e1, e2))
            continue
        surviving.append((e1, e2))
        supports[(e1, e2)] = (side1, side2)

    if reduce_neighborhoods:
        apply_support_restrictions(neighborhoods, supports)

    if base.blocking is not None:
        base.blocking.filter_seconds += time.perf_counter() - filter_started
    return CandidateSet(
        pairs=surviving,
        neighborhoods=neighborhoods,
        unfiltered_size=base.unfiltered_size,
        unreduced_neighborhood_total=base.unreduced_neighborhood_total,
        pair_supports=supports,
        rejected_pairs=rejected,
        blocking=base.blocking,
    )


def apply_support_restrictions(
    neighborhoods: NeighborhoodIndex,
    supports: Dict[Pair, Tuple[Set[GraphNode], Set[GraphNode]]],
) -> None:
    """Shrink *neighborhoods* to the pairing-supported nodes of *supports*.

    Each entity keeps the union of the support nodes over every surviving
    pair it participates in (plus itself) — the Section 4.2 reduction,
    factored out so the incremental rebase can re-apply it from cached
    supports without re-running the pairing fixpoint.
    """
    kept_nodes: Dict[str, Set[GraphNode]] = {}
    for (e1, e2), (side1, side2) in supports.items():
        kept_nodes.setdefault(e1, set()).update(side1 | {e1})
        kept_nodes.setdefault(e2, set()).update(side2 | {e2})
    for entity, allowed in kept_nodes.items():
        neighborhoods.restrict(entity, allowed)


def depends_on_types_by_target(keys: KeySet) -> Dict[str, Set[str]]:
    """Per keyed type, the entity-variable types its keys recurse into."""
    depends_on_types: Dict[str, Set[str]] = {}
    for etype in keys.target_types():
        types: Set[str] = set()
        for key in keys.keys_for_type(etype):
            types |= key.depends_on_types()
        depends_on_types[etype] = types
    return depends_on_types


def candidate_pairs_by_type(graph: Graph, pairs: List[Pair]) -> Dict[str, List[Pair]]:
    """Candidate pairs bucketed by entity type, preserving pair order."""
    candidate_index: Dict[str, List[Pair]] = {}
    for pair in pairs:
        etype = graph.entity_type(pair[0])
        candidate_index.setdefault(etype, []).append(pair)
    return candidate_index


def pair_prerequisites(
    dependent: Pair,
    wanted_types: Set[str],
    candidate_index: Dict[str, List[Pair]],
    neighborhoods: NeighborhoodIndex,
) -> Set[Pair]:
    """The candidate pairs *dependent* depends on (its ``dep`` in-edges)."""
    if not wanted_types:
        return set()
    e1, e2 = dependent
    nbhd = neighborhoods.nodes(e1) | neighborhoods.nodes(e2)
    prerequisites: Set[Pair] = set()
    for wanted in wanted_types:
        for prerequisite in candidate_index.get(wanted, ()):
            if prerequisite == dependent:
                continue
            p1, p2 = prerequisite
            if p1 in nbhd or p2 in nbhd:
                prerequisites.add(prerequisite)
    return prerequisites


def dependency_map(
    graph: Graph,
    keys: KeySet,
    candidates: CandidateSet,
) -> Dict[Pair, Set[Pair]]:
    """For each candidate pair, the candidate pairs that *depend on* it.

    ``(e1, e2)`` depends on ``(e'1, e'2)`` when the latter lies in the
    d-neighbourhoods of the former and has the type of an entity variable of a
    recursive key defined on ``(e1, e2)`` (Section 4.2).  The result maps each
    prerequisite pair to its dependents, which is the direction the
    notifications flow in (``dep`` edges of the product graph).
    """
    depends_on_types = depends_on_types_by_target(keys)
    candidate_index = candidate_pairs_by_type(graph, candidates.pairs)

    by_pair: Dict[Pair, Set[Pair]] = {pair: set() for pair in candidates.pairs}
    for dependent in candidates.pairs:
        wanted_types = depends_on_types.get(graph.entity_type(dependent[0]), set())
        for prerequisite in pair_prerequisites(
            dependent, wanted_types, candidate_index, candidates.neighborhoods
        ):
            by_pair.setdefault(prerequisite, set()).add(dependent)
    return by_pair
