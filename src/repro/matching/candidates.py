"""Construction and filtering of the candidate set ``L``.

``L`` contains every pair of same-type entities on which at least one key is
defined; the optimized algorithms shrink it with the pairing relation of
Proposition 9 (a cheap necessary condition) before any isomorphism check, and
shrink the d-neighbourhoods to pairing-supported nodes at the same time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.chase import candidate_pairs
from ..core.equivalence import Pair
from ..core.graph import Graph
from ..core.key import Key, KeySet
from ..core.neighborhood import NeighborhoodIndex
from ..core.pairing import pairing_relation, pairing_support_nodes
from ..core.triples import GraphNode
from ..storage import GraphSnapshot, SnapshotNeighborhoodIndex


@dataclass
class CandidateSet:
    """The candidate pairs to check, with the supporting neighbourhood index."""

    pairs: List[Pair]
    neighborhoods: NeighborhoodIndex
    #: |L| before the pairing filter (for the optimization-effectiveness stats).
    unfiltered_size: int = 0
    #: total neighbourhood size before reduction (nodes).
    unreduced_neighborhood_total: int = 0

    @property
    def size(self) -> int:
        return len(self.pairs)

    def reduction_ratio(self) -> float:
        """Fraction of candidate pairs removed by the pairing filter."""
        if self.unfiltered_size == 0:
            return 0.0
        return 1.0 - (len(self.pairs) / self.unfiltered_size)

    def neighborhood_reduction_factor(self) -> float:
        """How many times smaller the reduced neighbourhoods are."""
        reduced = self.neighborhoods.total_size()
        if reduced == 0:
            return 1.0
        return self.unreduced_neighborhood_total / reduced


def build_candidates(
    graph: Graph,
    keys: KeySet,
    *,
    index: Optional[NeighborhoodIndex] = None,
    snapshot: Optional[GraphSnapshot] = None,
) -> CandidateSet:
    """The unfiltered candidate set ``L`` with full d-neighbourhoods.

    Pass a prebuilt *index* (e.g. a session cache) to reuse neighbourhood BFS
    results across runs; it is extended in place with any missing entities.
    With a *snapshot*, candidate enumeration reads the compiled type buckets
    and a fresh index extracts neighbourhoods over the CSR arrays.
    """
    reader = snapshot if snapshot is not None else graph
    pairs = candidate_pairs(reader, keys)
    if index is not None:
        neighborhoods = index
    elif snapshot is not None:
        neighborhoods = SnapshotNeighborhoodIndex(snapshot, keys)
    else:
        neighborhoods = NeighborhoodIndex(graph, keys)
    involved = {e for pair in pairs for e in pair}
    neighborhoods.precompute(involved)
    total = neighborhoods.total_size()
    return CandidateSet(
        pairs=pairs,
        neighborhoods=neighborhoods,
        unfiltered_size=len(pairs),
        unreduced_neighborhood_total=total,
    )


def build_filtered_candidates(
    graph: Graph,
    keys: KeySet,
    reduce_neighborhoods: bool = True,
    *,
    index: Optional[NeighborhoodIndex] = None,
    snapshot: Optional[GraphSnapshot] = None,
) -> CandidateSet:
    """The candidate set after the pairing filter of Section 4.2.

    Pairs that cannot be paired by any key are dropped (Proposition 9(a));
    when *reduce_neighborhoods* is set, the d-neighbourhoods of surviving
    pairs are shrunk to the union of pairing-supported nodes.  A shared
    *index* is never reduced in place — the reduction happens on a clone, so
    the caller's cache stays valid for unreduced consumers.  A *snapshot*
    routes every read (type lookups, the pairing fixpoint) through the
    compiled layer.
    """
    reader = snapshot if snapshot is not None else graph
    base = build_candidates(graph, keys, index=index, snapshot=snapshot)
    neighborhoods = base.neighborhoods
    if reduce_neighborhoods and index is not None:
        neighborhoods = index.clone()
    keys_by_type: Dict[str, List[Key]] = {
        etype: keys.keys_for_type(etype) for etype in keys.target_types()
    }

    surviving: List[Pair] = []
    kept_nodes: Dict[str, Set[GraphNode]] = {}
    for e1, e2 in base.pairs:
        etype = reader.entity_type(e1)
        nbhd1 = neighborhoods.nodes(e1)
        nbhd2 = neighborhoods.nodes(e2)
        side1: Set[GraphNode] = set()
        side2: Set[GraphNode] = set()
        paired = False
        for key in keys_by_type.get(etype, ()):
            relation = pairing_relation(reader, key, e1, e2, nbhd1, nbhd2)
            if relation is None:
                continue
            paired = True
            support1, support2 = pairing_support_nodes(relation)
            side1 |= support1
            side2 |= support2
        if not paired:
            continue
        surviving.append((e1, e2))
        if reduce_neighborhoods:
            kept_nodes.setdefault(e1, set()).update(side1 | {e1})
            kept_nodes.setdefault(e2, set()).update(side2 | {e2})

    if reduce_neighborhoods:
        for entity, allowed in kept_nodes.items():
            neighborhoods.restrict(entity, allowed)

    return CandidateSet(
        pairs=surviving,
        neighborhoods=neighborhoods,
        unfiltered_size=base.unfiltered_size,
        unreduced_neighborhood_total=base.unreduced_neighborhood_total,
    )


def dependency_map(
    graph: Graph,
    keys: KeySet,
    candidates: CandidateSet,
) -> Dict[Pair, Set[Pair]]:
    """For each candidate pair, the candidate pairs that *depend on* it.

    ``(e1, e2)`` depends on ``(e'1, e'2)`` when the latter lies in the
    d-neighbourhoods of the former and has the type of an entity variable of a
    recursive key defined on ``(e1, e2)`` (Section 4.2).  The result maps each
    prerequisite pair to its dependents, which is the direction the
    notifications flow in (``dep`` edges of the product graph).
    """
    depends_on_types: Dict[str, Set[str]] = {}
    for etype in keys.target_types():
        types: Set[str] = set()
        for key in keys.keys_for_type(etype):
            types |= key.depends_on_types()
        depends_on_types[etype] = types

    by_pair: Dict[Pair, Set[Pair]] = {pair: set() for pair in candidates.pairs}
    candidate_index: Dict[str, List[Pair]] = {}
    for pair in candidates.pairs:
        etype = graph.entity_type(pair[0])
        candidate_index.setdefault(etype, []).append(pair)

    for dependent in candidates.pairs:
        e1, e2 = dependent
        wanted_types = depends_on_types.get(graph.entity_type(e1), set())
        if not wanted_types:
            continue
        nbhd = candidates.neighborhoods.nodes(e1) | candidates.neighborhoods.nodes(e2)
        for wanted in wanted_types:
            for prerequisite in candidate_index.get(wanted, ()):
                if prerequisite == dependent:
                    continue
                p1, p2 = prerequisite
                if p1 in nbhd or p2 in nbhd:
                    by_pair.setdefault(prerequisite, set()).add(dependent)
    return by_pair
