"""``EMOptMR``: the MapReduce algorithm with the Section 4.2 optimizations.

Three optimizations on top of :class:`~repro.matching.em_mr.MapReduceEntityMatcher`:

1. **Reducing L** — candidate pairs that cannot be *paired* by any key
   (Proposition 9) are dropped before any isomorphism check.
2. **Reducing (G^d_1, G^d_2)** — the d-neighbourhoods of surviving pairs are
   shrunk to the nodes appearing in the maximum pairing relations (can be
   switched off with the ``reduce_neighborhoods`` option, e.g. for ablations).
3. **Entity dependency + incremental checking** — after the first round, a
   pending pair re-runs its (expensive) isomorphism check only when a pair it
   depends on was newly identified in the previous round; otherwise the mapper
   forwards it unchanged.  This removes the redundant per-round re-checking of
   the base algorithm while preserving the fixpoint.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Set

from ..api.events import ProgressEvent
from ..api.registry import OptionSpec, get_algorithm, register_algorithm
from ..core.equivalence import Pair
from ..core.graph import Graph
from ..core.key import KeySet
from .candidates import CandidateSet, build_filtered_candidates, dependency_map
from .em_mr import MapReduceEntityMatcher
from .incremental import DependencyWorklist
from .result import EMResult


class OptimizedMapReduceEntityMatcher(MapReduceEntityMatcher):
    """``EMOptMR`` = ``EMMR`` + pairing filter + reduced neighbourhoods +
    dependency-driven incremental checking."""

    algorithm_name = "EMOptMR"

    def __init__(
        self,
        graph: Graph,
        keys: KeySet,
        processors: int = 4,
        *,
        reduce_neighborhoods: bool = True,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        artifacts: Optional[object] = None,
        observer: Optional[Callable[[ProgressEvent], None]] = None,
        seed_pairs: Optional[Sequence[Pair]] = None,
        worklist: Optional[Sequence[Pair]] = None,
        blocking: str = "off",
    ) -> None:
        super().__init__(
            graph,
            keys,
            processors,
            executor=executor,
            workers=workers,
            artifacts=artifacts,
            observer=observer,
            seed_pairs=seed_pairs,
            worklist=worklist,
            blocking=blocking,
        )
        self.reduce_neighborhoods = reduce_neighborhoods
        self._dependents: Optional[DependencyWorklist] = None

    def _build_candidates(self, snapshot) -> CandidateSet:
        if self.artifacts is not None:
            candidates = self.artifacts.candidates(
                filtered=True,
                reduce_neighborhoods=self.reduce_neighborhoods,
                blocking=self.blocking,
            )
            dependents = self.artifacts.dependency_map(
                filtered=True,
                reduce_neighborhoods=self.reduce_neighborhoods,
                blocking=self.blocking,
            )
            self._dependents = DependencyWorklist(dependents)
            return candidates
        candidates = build_filtered_candidates(
            self.graph,
            self.keys,
            reduce_neighborhoods=self.reduce_neighborhoods,
            snapshot=snapshot,
            blocking=self.blocking,
        )
        self._dependents = DependencyWorklist(dependency_map(snapshot, self.keys, candidates))
        return candidates

    def _pairs_to_check(
        self,
        round_index: int,
        pending: Sequence[Pair],
        newly_identified: Set[Pair],
        candidates: CandidateSet,
    ) -> Optional[Set[Pair]]:
        if round_index <= 1:
            return None  # first round: every surviving candidate is checked once
        if not newly_identified or self._dependents is None:
            return set()  # nothing changed: no pair can newly succeed
        return self._dependents.affected_by(newly_identified)


@register_algorithm(
    "EMOptMR",
    family="mapreduce",
    options=(
        OptionSpec(
            "reduce_neighborhoods",
            bool,
            True,
            "shrink d-neighbourhoods to pairing-supported nodes (Section 4.2)",
        ),
    ),
    capabilities=(
        "parallel",
        "rounds",
        "pairing-filter",
        "incremental-check",
        "executors",
        "incremental",
        "blocking",
    ),
    description="EMMR + pairing filter, reduced neighbourhoods, incremental checking",
)
def _run_em_mr_opt(
    graph: Graph,
    keys: KeySet,
    *,
    processors: int = 4,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    artifacts: Optional[object] = None,
    observer: Optional[Callable[[ProgressEvent], None]] = None,
    reduce_neighborhoods: bool = True,
    seed_pairs: Optional[Sequence[Pair]] = None,
    worklist: Optional[Sequence[Pair]] = None,
    blocking: str = "off",
) -> EMResult:
    return OptimizedMapReduceEntityMatcher(
        graph,
        keys,
        processors,
        reduce_neighborhoods=reduce_neighborhoods,
        executor=executor,
        workers=workers,
        artifacts=artifacts,
        observer=observer,
        seed_pairs=seed_pairs,
        worklist=worklist,
        blocking=blocking,
    ).run()


def em_mr_opt(graph: Graph, keys: KeySet, processors: int = 4) -> EMResult:
    """Run ``EMOptMR`` on *graph* with *keys* using *processors* simulated workers."""
    return get_algorithm("EMOptMR").run(graph, keys, processors=processors)
