"""``EMOptMR``: the MapReduce algorithm with the Section 4.2 optimizations.

Three optimizations on top of :class:`~repro.matching.em_mr.MapReduceEntityMatcher`:

1. **Reducing L** — candidate pairs that cannot be *paired* by any key
   (Proposition 9) are dropped before any isomorphism check.
2. **Reducing (G^d_1, G^d_2)** — the d-neighbourhoods of surviving pairs are
   shrunk to the nodes appearing in the maximum pairing relations.
3. **Entity dependency + incremental checking** — after the first round, a
   pending pair re-runs its (expensive) isomorphism check only when a pair it
   depends on was newly identified in the previous round; otherwise the mapper
   forwards it unchanged.  This removes the redundant per-round re-checking of
   the base algorithm while preserving the fixpoint.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from ..core.equivalence import Pair
from ..core.graph import Graph
from ..core.key import KeySet
from .candidates import CandidateSet, build_filtered_candidates, dependency_map
from .em_mr import MapReduceEntityMatcher
from .result import EMResult


class OptimizedMapReduceEntityMatcher(MapReduceEntityMatcher):
    """``EMOptMR`` = ``EMMR`` + pairing filter + reduced neighbourhoods +
    dependency-driven incremental checking."""

    algorithm_name = "EMOptMR"

    def __init__(self, graph: Graph, keys: KeySet, processors: int = 4) -> None:
        super().__init__(graph, keys, processors)
        self._dependents: Optional[Dict[Pair, Set[Pair]]] = None

    def _build_candidates(self) -> CandidateSet:
        candidates = build_filtered_candidates(self.graph, self.keys, reduce_neighborhoods=True)
        self._dependents = dependency_map(self.graph, self.keys, candidates)
        return candidates

    def _pairs_to_check(
        self,
        round_index: int,
        pending: Sequence[Pair],
        newly_identified: Set[Pair],
        candidates: CandidateSet,
    ) -> Optional[Set[Pair]]:
        if round_index <= 1:
            return None  # first round: every surviving candidate is checked once
        if not newly_identified or self._dependents is None:
            return set()  # nothing changed: no pair can newly succeed
        to_check: Set[Pair] = set()
        for identified_pair in newly_identified:
            to_check |= self._dependents.get(identified_pair, set())
        return to_check


def em_mr_opt(graph: Graph, keys: KeySet, processors: int = 4) -> EMResult:
    """Run ``EMOptMR`` on *graph* with *keys* using *processors* simulated workers."""
    return OptimizedMapReduceEntityMatcher(graph, keys, processors).run()
