"""Per-pair checkers used by the MapReduce algorithms.

``EMMR`` and ``EMOptMR`` use the guided, early-terminating ``EvalMR`` search;
the ``EMVF2MR`` baseline enumerates all matches with a VF2-style enumerator
and tests coincidence afterwards.  Both expose the same interface so the
MapReduce driver is agnostic: ``check(keys, e1, e2, eq, nbhd1, nbhd2)`` returns
``(identified, work_units)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Set, Tuple

from ..core.equivalence import EquivalenceRelation
from ..core.eval_guided import GuidedPairEvaluator
from ..core.graph import Graph
from ..core.key import Key
from ..core.matching import identify_pair_by_enumeration
from ..core.triples import GraphNode


class PairChecker(Protocol):
    """The contract of a per-pair checker."""

    def check(
        self,
        keys: List[Key],
        e1: str,
        e2: str,
        eq: EquivalenceRelation,
        neighborhood1: Optional[Set[GraphNode]],
        neighborhood2: Optional[Set[GraphNode]],
    ) -> Tuple[bool, int]:  # pragma: no cover - protocol
        ...


class GuidedChecker:
    """``EvalMR``: guided search with early termination (Section 4.1)."""

    name = "guided"

    def __init__(self, graph: Graph) -> None:
        self._evaluator = GuidedPairEvaluator(graph)

    @property
    def evaluator(self) -> GuidedPairEvaluator:
        return self._evaluator

    def check(
        self,
        keys: List[Key],
        e1: str,
        e2: str,
        eq: EquivalenceRelation,
        neighborhood1: Optional[Set[GraphNode]],
        neighborhood2: Optional[Set[GraphNode]],
    ) -> Tuple[bool, int]:
        before = self._evaluator.stats.work
        identified = (
            self._evaluator.identify_with_any(
                keys, e1, e2, eq, neighborhood1, neighborhood2
            )
            is not None
        )
        return identified, max(1, self._evaluator.stats.work - before)


class EnumerationChecker:
    """The ``EMVF2MR`` baseline: enumerate all matches, then test coincidence.

    No early termination and no sharing between the two enumerations — the
    behaviour the paper attributes to plugging VF2 into the mapper directly.
    """

    name = "vf2"

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self.total_matches = 0

    def check(
        self,
        keys: List[Key],
        e1: str,
        e2: str,
        eq: EquivalenceRelation,
        neighborhood1: Optional[Set[GraphNode]],
        neighborhood2: Optional[Set[GraphNode]],
    ) -> Tuple[bool, int]:
        counter: Dict[str, int] = {}
        identified = False
        for key in keys:
            if identify_pair_by_enumeration(
                self._graph,
                key,
                e1,
                e2,
                eq=eq,
                restrict1=neighborhood1,
                restrict2=neighborhood2,
                work_counter=counter,
            ):
                identified = True
                break
        self.total_matches += counter.get("matches", 0)
        work = (
            counter.get("candidates", 0)
            + counter.get("matches", 0)
            + counter.get("coincidence_checks", 0)
        )
        return identified, max(1, work)
