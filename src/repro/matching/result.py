"""Results and statistics shared by all entity-matching algorithms.

Every algorithm — the sequential chase, the MapReduce family and the
vertex-centric family — returns an :class:`EMResult`, so callers (and the
cross-algorithm consistency tests) can treat them interchangeably, while the
benchmarks read the per-algorithm statistics (rounds, messages, candidate
counts, simulated seconds) that reproduce the paper's tables and figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set

from ..core.equivalence import EquivalenceRelation, Pair


@dataclass
class EMStatistics:
    """Counters describing one entity-matching run."""

    #: |L| before any filtering: all same-type pairs with a key defined on them.
    candidate_pairs: int = 0
    #: |L| actually processed (after the pairing filter for optimized variants).
    processed_pairs: int = 0
    #: number of pairs directly identified by a key (not only by transitivity).
    directly_identified: int = 0
    #: number of identified pairs in the final result (including transitivity).
    identified_pairs: int = 0
    #: MapReduce rounds (0 for vertex-centric runs).
    rounds: int = 0
    #: per-pair isomorphism checks performed.
    checks: int = 0
    #: abstract work units charged to the cost model.
    work_units: int = 0
    #: messages sent (vertex-centric runs only).
    messages_sent: int = 0
    #: messages processed (vertex-centric runs only).
    messages_processed: int = 0
    #: records moved in MapReduce shuffles.
    shuffled_records: int = 0
    #: product-graph nodes / edges (vertex-centric runs only).
    product_graph_nodes: int = 0
    product_graph_edges: int = 0
    #: total / maximum d-neighbourhood sizes (in nodes).
    neighborhood_total: int = 0
    neighborhood_max: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)

    @classmethod
    def from_dict(cls, payload: Mapping[str, int]) -> "EMStatistics":
        """Rebuild statistics from :meth:`as_dict` output.

        Unknown keys are ignored (a newer writer may know more counters than
        this reader); missing keys keep their zero defaults.
        """
        known = {field_name for field_name in cls().__dict__}
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass
class EMResult:
    """The outcome of an entity-matching run: ``chase(G, Σ)`` plus accounting."""

    algorithm: str
    processors: int
    eq: EquivalenceRelation
    simulated_seconds: float = 0.0
    #: measured wall-clock seconds of the run on the real machine (0.0 when
    #: the backend does not measure); orthogonal to ``simulated_seconds``,
    #: which models a cluster of ``processors`` simulated workers.
    wall_seconds: float = 0.0
    stats: EMStatistics = field(default_factory=EMStatistics)
    cost_breakdown: Dict[str, float] = field(default_factory=dict)

    def pairs(self) -> Set[Pair]:
        """All identified (non-trivial) pairs."""
        return self.eq.pairs()

    def identified(self, e1: str, e2: str) -> bool:
        """``(G, Σ) |= (e1, e2)``?"""
        return self.eq.identified(e1, e2)

    @property
    def num_identified(self) -> int:
        return len(self.pairs())

    def to_dict(self) -> Dict[str, object]:
        """A stable, JSON-serializable wire form of this result.

        The equivalence relation travels as its sorted non-trivial classes
        (singletons carry no information for consumers), so the encoding is
        deterministic for a given result: two bit-identical runs produce
        byte-identical JSON.  Round-trips through :meth:`from_dict` preserve
        ``pairs()``, every statistic, both clocks and the cost breakdown —
        this is the payload the ``repro serve`` result endpoint returns.
        """
        classes: List[List[str]] = sorted(
            sorted(cls) for cls in self.eq.nontrivial_classes()
        )
        return {
            "algorithm": self.algorithm,
            "processors": self.processors,
            "identified_pairs": self.num_identified,
            "classes": classes,
            "simulated_seconds": self.simulated_seconds,
            "wall_seconds": self.wall_seconds,
            "stats": self.stats.as_dict(),
            "cost_breakdown": dict(self.cost_breakdown),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "EMResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. service JSON)."""
        eq = EquivalenceRelation()
        for members in payload.get("classes", ()):  # type: ignore[union-attr]
            anchor = None
            for member in members:
                if anchor is None:
                    anchor = member
                    eq.add(member)
                else:
                    eq.merge(anchor, member)
        return cls(
            algorithm=str(payload["algorithm"]),
            processors=int(payload["processors"]),  # type: ignore[arg-type]
            eq=eq,
            simulated_seconds=float(payload.get("simulated_seconds", 0.0)),  # type: ignore[arg-type]
            wall_seconds=float(payload.get("wall_seconds", 0.0)),  # type: ignore[arg-type]
            stats=EMStatistics.from_dict(payload.get("stats", {})),  # type: ignore[arg-type]
            cost_breakdown=dict(payload.get("cost_breakdown", {})),  # type: ignore[arg-type]
        )

    def summary(self) -> Dict[str, object]:
        """A flat summary used by reports and the CLI."""
        summary: Dict[str, object] = {
            "algorithm": self.algorithm,
            "processors": self.processors,
            "identified_pairs": self.num_identified,
            "simulated_seconds": round(self.simulated_seconds, 3),
            "wall_seconds": round(self.wall_seconds, 4),
        }
        summary.update(self.stats.as_dict())
        return summary

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EMResult({self.algorithm!r}, p={self.processors}, "
            f"identified={self.num_identified}, "
            f"simulated_seconds={self.simulated_seconds:.2f})"
        )
