"""``EvalVC``: the vertex program of the vertex-centric algorithms (Fig. 5).

Each candidate pair evaluates its keys by sending messages along the key's
traversal order ``P_Q`` through the product graph.  A message carries the
partial instantiation vector ``m`` (pattern-node name → product-graph node);
the vertex hosting the current cursor position extends ``m`` by forking copies
to feasible neighbour pairs, verifies already-instantiated edges when the tour
revisits them, and — when the tour returns to the origin fully instantiated —
sets the origin's flag, which triggers dependency notifications and
transitive-closure propagation.

Differences from the paper, noted for reviewers:

* feasibility of a fork target is checked before sending (at the sender)
  instead of after receiving; this only moves where the work is charged and
  reduces pointless messages for both variants equally;
* bounded messages (``max_fanout``) are implemented by deferring the targets
  beyond the budget into a single low-priority continuation message processed
  only if the evaluation is still unresolved — a form of distributed
  backtracking that preserves completeness while capping in-flight copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.equivalence import EquivalenceRelation, Pair
from ..core.key import Key, KeySet
from ..core.graph import Graph
from ..core.pattern import NodeKind, PatternNode
from ..core.triples import GraphNode, Literal, is_entity_ref
from ..vertexcentric.engine import VertexContext
from .product_graph import ProductGraph, ProductNode
from .traversal_order import TraversalStep


@dataclass
class PairState:
    """Mutable per-vertex state of the product graph."""

    flag: bool = False
    is_candidate: bool = False
    etype: Optional[str] = None


@dataclass(frozen=True)
class Activate:
    """Start (or restart) key evaluation at a candidate pair.

    ``prerequisite`` is the newly identified pair that caused the restart, or
    ``None`` for the initial activation injected by the driver.
    """

    prerequisite: Optional[Pair] = None


@dataclass(frozen=True)
class EvalMessage:
    """A key-evaluation message travelling along a traversal order."""

    origin: Pair
    key_name: str
    step_index: int
    assignment: Tuple[Tuple[str, ProductNode], ...]

    def assignment_dict(self) -> Dict[str, ProductNode]:
        return dict(self.assignment)

    def extended(self, name: str, node: ProductNode, step_index: int) -> "EvalMessage":
        items = dict(self.assignment)
        items[name] = node
        return EvalMessage(
            origin=self.origin,
            key_name=self.key_name,
            step_index=step_index,
            assignment=tuple(sorted(items.items())),
        )

    def advanced(self, step_index: int) -> "EvalMessage":
        return replace(self, step_index=step_index)


@dataclass(frozen=True)
class DeferredFork:
    """A continuation holding fork targets beyond the message budget."""

    message: EvalMessage
    far_name: str
    targets: Tuple[ProductNode, ...]


@dataclass
class EvalVCCounters:
    """Counters of the vertex program (used by reports and benchmarks)."""

    activations: int = 0
    eval_messages: int = 0
    deferred_forks: int = 0
    early_cancelled: int = 0
    dead_branches: int = 0
    confirmations: int = 0
    tc_flags: int = 0
    dep_notifications: int = 0


class EvalVCProgram:
    """The vertex program executed at every product-graph node."""

    def __init__(
        self,
        graph: Graph,
        keys: KeySet,
        product_graph: ProductGraph,
        orders: Dict[str, List[TraversalStep]],
        max_fanout: Optional[int] = None,
        prioritize: bool = False,
        seed_pairs: Optional[Sequence[Pair]] = None,
    ) -> None:
        if max_fanout is not None and max_fanout < 1:
            raise ValueError(f"max_fanout must be >= 1 or None, got {max_fanout}")
        self._graph = graph
        self._keys = keys
        self._product_graph = product_graph
        self._orders = orders
        self._max_fanout = max_fanout
        self._prioritize = prioritize
        self._keys_by_type: Dict[str, List[Key]] = {
            etype: keys.keys_for_type(etype) for etype in keys.target_types()
        }
        self._pattern_node_counts = {key.name: len(list(key.pattern.nodes())) for key in keys}
        self.live_eq = EquivalenceRelation(graph.entity_ids())
        #: incremental re-matching: a previous run's surviving merges, applied
        #: to ``live_eq`` up front and prepended to the canonical merge
        #: history so partitioned replicas reconstruct the same seeded state
        self._seed_merges: Tuple[Pair, ...] = tuple(seed_pairs or ())
        for e1, e2 in self._seed_merges:
            self.live_eq.merge(e1, e2)
        self.counters = EvalVCCounters()
        # Replica-mode bookkeeping (partitioned execution only, see
        # repro.vertexcentric.parallel): which vertices this replica believes
        # are flagged, the monotone deltas recorded since the last sync, and
        # how much of the canonical (epoch, flag list, merge list) history
        # this replica has already applied.  All stay None/0 in the classic
        # single-process drain.
        self._replica_flagged: Optional[Set[ProductNode]] = None
        self._flag_sink: Optional[List[ProductNode]] = None
        self._merge_sink: Optional[List[Pair]] = None
        self._replica_epoch: Optional[int] = None
        self._replica_flag_count = 0
        self._replica_merge_count = 0

    # ------------------------------------------------------------------ #
    # replica protocol (partitioned execution)
    # ------------------------------------------------------------------ #
    #
    # Under partitioned execution every worker holds a full replica of the
    # mutable run state: the per-vertex flags and the live equivalence
    # relation.  Both are *monotone* (flags only rise, Eq only merges), so a
    # replica can always be reset to the driver's canonical state and the
    # deltas it produced can always be merged back — the CRDT-style property
    # the superstep loop relies on.

    def replica_canonical(
        self, vertices: Dict[ProductNode, object]
    ) -> Tuple[tuple, tuple, int]:
        """The initial canonical state: flagged vertices, seed merges, epoch 0."""
        flagged = tuple(
            vertex for vertex, state in vertices.items() if getattr(state, "flag", False)
        )
        self._replica_flagged = set(flagged)
        self._replica_epoch = 0
        self._replica_flag_count = len(flagged)
        self._replica_merge_count = len(self._seed_merges)
        return (flagged, self._seed_merges, 0)

    def replica_sync(
        self, vertices: Dict[ProductNode, object], canonical: Tuple[tuple, tuple, int]
    ) -> None:
        """Reset this replica to exactly the canonical (flags, merges) state.

        The canonical flag and merge lists are append-only and every task
        delta is merged into them at the superstep barrier, so once the epoch
        has advanced past the replica's last sync, the replica's state is a
        *subset* of canonical and only the list tails need applying.  Within
        one epoch (a shared-address-space site running several tasks of the
        same superstep) the replica may hold sibling-task deltas that are not
        canonical yet, so it is rebuilt from scratch instead.
        """
        flagged, merges, epoch = canonical
        incremental = (
            self._replica_epoch is not None
            and epoch > self._replica_epoch
            and self._replica_flagged is not None
        )
        if incremental:
            for vertex in flagged[self._replica_flag_count :]:
                if vertex not in self._replica_flagged:  # type: ignore[operator]
                    vertices[vertex].flag = True  # type: ignore[attr-defined]
                    self._replica_flagged.add(vertex)  # type: ignore[union-attr]
            for e1, e2 in merges[self._replica_merge_count :]:
                self.live_eq.merge(e1, e2)
        else:
            flagged_set = set(flagged)
            if self._replica_flagged is None:
                # first sync in this worker process: learn the replica's flags
                self._replica_flagged = {
                    vertex
                    for vertex, state in vertices.items()
                    if getattr(state, "flag", False)
                }
            for vertex in self._replica_flagged - flagged_set:
                vertices[vertex].flag = False  # type: ignore[attr-defined]
            for vertex in flagged_set - self._replica_flagged:
                vertices[vertex].flag = True  # type: ignore[attr-defined]
            self._replica_flagged = flagged_set
            eq = EquivalenceRelation(self._graph.entity_ids())
            for e1, e2 in merges:
                eq.merge(e1, e2)
            self.live_eq = eq
        self._replica_epoch = epoch
        self._replica_flag_count = len(flagged)
        self._replica_merge_count = len(merges)
        self.counters = EvalVCCounters()
        self._flag_sink = []
        self._merge_sink = []

    def replica_delta(self) -> Tuple[tuple, tuple, EvalVCCounters]:
        """The monotone deltas recorded since the last sync, plus counters."""
        if self._flag_sink is None or self._merge_sink is None:
            raise RuntimeError("replica_delta() requires a preceding replica_sync()")
        flags, merges = tuple(self._flag_sink), tuple(self._merge_sink)
        self._flag_sink = None
        self._merge_sink = None
        return flags, merges, self.counters

    def replica_finalize(
        self,
        vertices: Dict[ProductNode, object],
        canonical: Tuple[tuple, tuple, int],
        counter_totals: Dict[str, int],
    ) -> None:
        """Land the driver-side program on the canonical final state."""
        self.replica_sync(vertices, canonical)
        self._flag_sink = None
        self._merge_sink = None
        self._replica_flagged = None
        self._replica_epoch = None
        for name, value in counter_totals.items():
            setattr(self.counters, name, value)

    def _record_flag(self, vertex: ProductNode) -> None:
        if self._flag_sink is not None:
            self._flag_sink.append(vertex)
            self._replica_flagged.add(vertex)  # type: ignore[union-attr]

    def _record_merge(self, pair: Pair) -> None:
        if self._merge_sink is not None:
            self._merge_sink.append(pair)

    # ------------------------------------------------------------------ #
    # message dispatch
    # ------------------------------------------------------------------ #

    def on_message(
        self, vertex_id: ProductNode, state: object, payload: object, context: VertexContext
    ) -> None:
        assert isinstance(state, PairState)
        if isinstance(payload, Activate):
            self._handle_activate(vertex_id, state, payload, context)
        elif isinstance(payload, EvalMessage):
            self._handle_eval(vertex_id, state, payload, context)
        elif isinstance(payload, DeferredFork):
            self._handle_deferred(vertex_id, state, payload, context)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message payload: {type(payload).__name__}")

    # ------------------------------------------------------------------ #
    # activation: start the evaluation of keys at a candidate pair
    # ------------------------------------------------------------------ #

    def _handle_activate(
        self, vertex_id: ProductNode, state: PairState, payload: Activate, context: VertexContext
    ) -> None:
        self.counters.activations += 1
        if state.flag or not state.is_candidate:
            return
        etype = state.etype or self._graph.entity_type(str(vertex_id[0]))
        keys = self._keys_by_type.get(etype, [])
        if payload.prerequisite is not None:
            # a dependency was discharged: only recursively defined keys can
            # newly succeed, value-based keys were fully evaluated already
            keys = [key for key in keys if key.is_recursive]
        for key in keys:
            x_name = key.pattern.designated.name
            initial = EvalMessage(
                origin=(str(vertex_id[0]), str(vertex_id[1])),
                key_name=key.name,
                step_index=0,
                assignment=((x_name, vertex_id),),
            )
            context.send(vertex_id, initial)

    # ------------------------------------------------------------------ #
    # the guided tour
    # ------------------------------------------------------------------ #

    def _handle_eval(
        self, vertex_id: ProductNode, state: PairState, message: EvalMessage, context: VertexContext
    ) -> None:
        self.counters.eval_messages += 1
        origin_state = context.state(message.origin)
        assert isinstance(origin_state, PairState)
        if origin_state.flag:
            self.counters.early_cancelled += 1
            return
        order = self._orders[message.key_name]
        assignment = message.assignment_dict()

        if message.step_index >= len(order):
            fully_instantiated = (
                len(assignment) == self._pattern_node_counts[message.key_name]
            )
            if vertex_id == message.origin and fully_instantiated:
                self._confirm(message.origin, context)
            return

        step = order[message.step_index]
        near = assignment.get(step.source_name)
        if near != vertex_id:  # pragma: no cover - defensive routing check
            self.counters.dead_branches += 1
            return
        far_name = step.target_name
        far_assigned = assignment.get(far_name)
        if far_assigned is not None:
            context.add_work(1)
            if self._edge_exists(step, near, far_assigned):
                context.send(far_assigned, message.advanced(message.step_index + 1))
            else:
                self.counters.dead_branches += 1
            return

        # far end not instantiated yet: fork over feasible product neighbours
        if step.forward:
            targets = self._product_graph.forward_neighbors(vertex_id, step.triple.predicate)
        else:
            targets = self._product_graph.backward_neighbors(vertex_id, step.triple.predicate)
        context.add_work(max(1, len(targets)))
        pattern = self._keys.by_name(message.key_name).pattern
        far_node = pattern.node(far_name)
        feasible = [t for t in targets if self._feasible(far_node, t, assignment)]
        if not feasible:
            self.counters.dead_branches += 1
            return
        if self._prioritize:
            feasible.sort(key=self._priority_key)
        self._fork(vertex_id, message, far_name, feasible, context)

    def _handle_deferred(
        self, vertex_id: ProductNode, state: PairState, payload: DeferredFork, context: VertexContext
    ) -> None:
        self.counters.deferred_forks += 1
        origin_state = context.state(payload.message.origin)
        assert isinstance(origin_state, PairState)
        if origin_state.flag:
            self.counters.early_cancelled += 1
            return
        self._fork(vertex_id, payload.message, payload.far_name, list(payload.targets), context)

    def _fork(
        self,
        vertex_id: ProductNode,
        message: EvalMessage,
        far_name: str,
        targets: List[ProductNode],
        context: VertexContext,
    ) -> None:
        budget = self._max_fanout if self._max_fanout is not None else len(targets)
        now, later = targets[:budget], targets[budget:]
        for target in now:
            context.send(
                target, message.extended(far_name, target, message.step_index + 1)
            )
        if later:
            context.send(
                vertex_id,
                DeferredFork(message=message, far_name=far_name, targets=tuple(later)),
                priority=5,
            )

    # ------------------------------------------------------------------ #
    # feasibility, edge verification and prioritization
    # ------------------------------------------------------------------ #

    def _feasible(
        self, far_node: PatternNode, target: ProductNode, assignment: Dict[str, ProductNode]
    ) -> bool:
        t1, t2 = target
        used1 = {pair[0] for pair in assignment.values()}
        used2 = {pair[1] for pair in assignment.values()}
        if t1 in used1 or t2 in used2:
            return False
        kind = far_node.kind
        if kind is NodeKind.CONSTANT:
            return (
                isinstance(t1, Literal)
                and isinstance(t2, Literal)
                and t1.value == far_node.value
                and t2.value == far_node.value
            )
        if kind is NodeKind.VALUE_VAR:
            return isinstance(t1, Literal) and isinstance(t2, Literal) and t1 == t2
        if not (is_entity_ref(t1) and is_entity_ref(t2)):
            return False
        if (
            self._graph.entity_type(t1) != far_node.etype
            or self._graph.entity_type(t2) != far_node.etype
        ):
            return False
        if kind is NodeKind.ENTITY_VAR:
            return self.live_eq.identified(t1, t2)
        return True  # WILDCARD

    def _edge_exists(
        self, step: TraversalStep, near: ProductNode, far: ProductNode
    ) -> bool:
        predicate = step.triple.predicate
        if step.forward:
            subjects, objects = near, far
        else:
            subjects, objects = far, near
        s1, s2 = subjects
        o1, o2 = objects
        return (
            is_entity_ref(s1)
            and is_entity_ref(s2)
            and self._graph.has_triple(s1, predicate, o1)
            and self._graph.has_triple(s2, predicate, o2)
        )

    def _priority_key(self, target: ProductNode) -> Tuple[int, int, str]:
        """Prioritized propagation: identity pairs first, then well-connected pairs."""
        t1, t2 = target
        identity = 0 if t1 == t2 else 1
        degree = self._graph.degree(t1) + self._graph.degree(t2)
        return (identity, -degree, repr(target))

    # ------------------------------------------------------------------ #
    # confirmation: flag, transitive closure and dependency notifications
    # ------------------------------------------------------------------ #

    def _confirm(self, origin: Pair, context: VertexContext) -> None:
        origin_state = context.state(origin)
        assert isinstance(origin_state, PairState)
        if origin_state.flag:
            return
        origin_state.flag = True
        self._record_flag(origin)
        if self.live_eq.merge(origin[0], origin[1]):
            self._record_merge(origin)
        self.counters.confirmations += 1
        newly_flagged: List[Pair] = [origin]

        # transitive closure: other candidate pairs implied by the merged class
        for entity in self.live_eq.class_of(origin[0]):
            for pair in self._product_graph.candidate_pairs_touching(entity):
                if not context.has_vertex(pair):
                    continue
                pair_state = context.state(pair)
                assert isinstance(pair_state, PairState)
                if not pair_state.flag and self.live_eq.identified(pair[0], pair[1]):
                    pair_state.flag = True
                    self._record_flag(pair)
                    newly_flagged.append(pair)
                    self.counters.tc_flags += 1
                    context.add_work(1)

        # dependency notifications: restart dependents of every newly flagged pair
        for flagged in newly_flagged:
            for dependent in self._product_graph.dependents_of(flagged):
                if not context.has_vertex(dependent):
                    continue
                dependent_state = context.state(dependent)
                assert isinstance(dependent_state, PairState)
                if not dependent_state.flag:
                    self.counters.dep_notifications += 1
                    context.send(dependent, Activate(prerequisite=flagged))
