"""The product graph ``Gp`` used by the vertex-centric algorithms (Section 5.1).

Nodes of ``Gp`` are *pairs* of graph nodes that can appear together in some
pairing relation of a candidate pair (Proposition 9) — entity pairs, equal
value pairs and identity pairs — plus the candidate pairs themselves.  Edges
mirror the topology of ``G`` (there is a ``p``-edge from ``(s1, s2)`` to
``(o1, o2)`` when both component edges exist in ``G``), and two extra edge
kinds encode the dependency (``dep``) and transitive-closure (``tc``)
relationships used to drive incremental re-evaluation.

The experiments report ``|Gp| ≈ 2.7·|G|`` on average, far smaller than the
naive ``|G|²``; :meth:`ProductGraph.count_edges` reproduces that statistic.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.equivalence import Pair
from ..core.graph import Graph
from ..core.key import KeySet
from ..core.pairing import pairing_relation
from ..core.triples import GraphNode, is_entity_ref
from .candidates import CandidateSet, dependency_map

#: A product-graph node: an ordered pair of graph nodes.
ProductNode = Tuple[GraphNode, GraphNode]


class ProductGraph:
    """``Gp``: pair nodes, pair adjacency, ``dep`` edges and ``tc`` indexes."""

    def __init__(
        self,
        graph: Graph,
        keys: KeySet,
        candidates: CandidateSet,
        dependents: Optional[Dict[Pair, Set[Pair]]] = None,
    ) -> None:
        self._graph = graph
        self._keys = keys
        self._candidates = candidates
        #: optional precomputed dependency map (e.g. the session cache's);
        #: must equal ``dependency_map(graph, keys, candidates)``
        self._prebuilt_dependents = dependents
        self._nodes: Set[ProductNode] = set()
        self._candidate_nodes: List[Pair] = list(candidates.pairs)
        self._dependents: Dict[Pair, Set[Pair]] = {}
        self._pairs_by_entity: Dict[str, Set[Pair]] = defaultdict(set)
        #: per-candidate-pair contributed nodes (the pair itself plus its
        #: pairing-relation nodes); :meth:`rebased` reuses the entries of
        #: pairs a journal delta cannot have affected.
        self._nodes_by_pair: Dict[Pair, Set[ProductNode]] = {}
        #: work units spent building the product graph (charged as setup cost)
        self.construction_work = 0
        self._build()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def _pair_nodes(self, pair: Pair) -> Set[ProductNode]:
        """The product nodes contributed by one candidate pair (Prop. 9)."""
        e1, e2 = pair
        neighborhoods = self._candidates.neighborhoods
        nbhd1 = neighborhoods.nodes(e1)
        nbhd2 = neighborhoods.nodes(e2)
        contributed: Set[ProductNode] = {pair}
        for key in self._keys.keys_for_type(self._graph.entity_type(e1)):
            relation = pairing_relation(self._graph, key, e1, e2, nbhd1, nbhd2)
            self.construction_work += key.size * max(1, len(nbhd1))
            if relation is None:
                continue
            for pairs in relation.values():
                contributed.update(pairs)
        return contributed

    def _register_pair(self, pair: Pair, contributed: Set[ProductNode]) -> None:
        self._nodes_by_pair[pair] = contributed
        self._nodes |= contributed
        self._pairs_by_entity[pair[0]].add(pair)
        self._pairs_by_entity[pair[1]].add(pair)

    def _build(self) -> None:
        for pair in self._candidates.pairs:
            self._register_pair(pair, self._pair_nodes(pair))
        self._dependents = (
            self._prebuilt_dependents
            if self._prebuilt_dependents is not None
            else dependency_map(self._graph, self._keys, self._candidates)
        )
        self._prebuilt_dependents = None
        self.construction_work += len(self._nodes)

    def rebased(
        self,
        graph: Graph,
        candidates: CandidateSet,
        affected_entities: Set[str],
        dependents: Optional[Dict[Pair, Set[Pair]]] = None,
        keys=None,
    ) -> "ProductGraph":
        """This product graph rebuilt over *graph* after a journal delta.

        Pairing relations are recomputed only for candidate pairs with an
        entity in *affected_entities* (or pairs new since the old build);
        every other pair's contributed nodes are carried over unchanged —
        sound because a pairing relation only reads the pair's two
        d-neighbourhoods.  The ``dep`` edges are recomputed from the new
        candidates.  The result is bit-identical to ``ProductGraph(graph,
        keys, candidates)``.  Pass *keys* when the key set changed since the
        old build (a session ``rekeyed`` delta): affected pairs then
        recompute their relations under the new keys.
        """
        twin = object.__new__(ProductGraph)
        twin._graph = graph
        twin._keys = self._keys if keys is None else keys
        twin._candidates = candidates
        twin._nodes = set()
        twin._candidate_nodes = list(candidates.pairs)
        twin._dependents = {}
        twin._pairs_by_entity = defaultdict(set)
        twin._nodes_by_pair = {}
        twin._prebuilt_dependents = None
        twin.construction_work = 0
        for pair in candidates.pairs:
            cached = self._nodes_by_pair.get(pair)
            if cached is not None and not affected_entities.intersection(pair):
                twin._register_pair(pair, cached)
            else:
                twin._register_pair(pair, twin._pair_nodes(pair))
        twin._dependents = (
            dependents
            if dependents is not None
            else dependency_map(graph, twin._keys, candidates)
        )
        twin.construction_work += len(twin._nodes)
        return twin

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterable[ProductNode]:
        return iter(self._nodes)

    def candidate_nodes(self) -> List[Pair]:
        """The candidate entity pairs (the vertices on which keys are evaluated)."""
        return list(self._candidate_nodes)

    def has_node(self, node: ProductNode) -> bool:
        return node in self._nodes

    def dependents_of(self, pair: Pair) -> Set[Pair]:
        """Candidate pairs that depend on *pair* (``dep`` edges out of it)."""
        return self._dependents.get(pair, set())

    def candidate_pairs_touching(self, entity: str) -> Set[Pair]:
        """Candidate pairs having *entity* as a component (``tc`` edge index)."""
        return self._pairs_by_entity.get(entity, set())

    # ------------------------------------------------------------------ #
    # adjacency (computed from G on demand; Gp edges are implicit)
    # ------------------------------------------------------------------ #

    def forward_neighbors(self, node: ProductNode, predicate: str) -> List[ProductNode]:
        """Targets ``(o1, o2) ∈ Gp`` with ``(s1, p, o1)`` and ``(s2, p, o2)`` in ``G``."""
        s1, s2 = node
        if not (is_entity_ref(s1) and is_entity_ref(s2)):
            return []
        objs1 = self._graph.objects(s1, predicate)
        objs2 = self._graph.objects(s2, predicate)
        found = [
            (o1, o2)
            for o1 in objs1
            for o2 in objs2
            if (o1, o2) in self._nodes
        ]
        found.sort(key=repr)
        return found

    def backward_neighbors(self, node: ProductNode, predicate: str) -> List[ProductNode]:
        """Sources ``(s1, s2) ∈ Gp`` with ``(s1, p, o1)`` and ``(s2, p, o2)`` in ``G``."""
        o1, o2 = node
        subs1 = self._graph.subjects(predicate, o1)
        subs2 = self._graph.subjects(predicate, o2)
        found = [
            (s1, s2)
            for s1 in subs1
            for s2 in subs2
            if (s1, s2) in self._nodes
        ]
        found.sort(key=repr)
        return found

    def count_edges(self) -> int:
        """The number of topology edges of ``Gp`` (used by the |Gp| ≈ 2.7·|G| stat)."""
        predicates = self._graph.predicates()
        count = 0
        for node in self._nodes:
            for predicate in predicates:
                count += len(self.forward_neighbors(node, predicate))
        return count

    def size(self) -> int:
        """``|Gp|`` measured in edges plus dep edges (mirrors ``|G|`` in triples)."""
        dep_edges = sum(len(deps) for deps in self._dependents.values())
        return self.count_edges() + dep_edges

    def stats(self) -> Dict[str, int]:
        return {
            "nodes": self.num_nodes,
            "candidate_nodes": len(self._candidate_nodes),
            "dep_edges": sum(len(deps) for deps in self._dependents.values()),
            "construction_work": self.construction_work,
        }
