"""Shared fixtures: the paper's examples and small generated workloads."""

from __future__ import annotations

import pytest

from repro.datasets.business import (
    EXPECTED_ADDRESS_PAIRS,
    EXPECTED_IDENTIFIED_PAIRS as BUSINESS_PAIRS,
    address_dataset,
    business_dataset,
)
from repro.datasets.knowledge import fusion_example_graph, knowledge_dataset
from repro.datasets.music import EXPECTED_IDENTIFIED_PAIRS as MUSIC_PAIRS, music_dataset
from repro.datasets.social import social_dataset
from repro.datasets.synthetic import synthetic_dataset


@pytest.fixture
def music():
    """The music example (G1, Σ1) with its expected identified pairs."""
    graph, keys = music_dataset()
    return graph, keys, set(MUSIC_PAIRS)


@pytest.fixture
def business():
    """The business example (G2, Σ2) with its expected identified pairs."""
    graph, keys = business_dataset()
    return graph, keys, set(BUSINESS_PAIRS)


@pytest.fixture
def address():
    """The UK address example (key Q6) with its expected identified pairs."""
    graph, keys = address_dataset()
    return graph, keys, set(EXPECTED_ADDRESS_PAIRS)


@pytest.fixture
def small_synthetic():
    """A small synthetic dataset with a 2-level dependency chain."""
    return synthetic_dataset(
        num_keys=6, chain_length=2, radius=2, entities_per_type=5, seed=13
    )


@pytest.fixture
def deep_synthetic():
    """A synthetic dataset with a 3-level dependency chain and radius 3."""
    return synthetic_dataset(
        num_keys=6, chain_length=3, radius=3, entities_per_type=4, seed=17
    )


@pytest.fixture
def small_social():
    """A small Google+-like dataset."""
    return social_dataset(scale=0.5, chain_length=2, radius=2, seed=19)


@pytest.fixture
def small_knowledge():
    """A small DBpedia-like dataset."""
    return knowledge_dataset(scale=0.5, chain_length=2, radius=2, seed=29)


@pytest.fixture
def fusion_example():
    """The hand-built Fig. 7 knowledge-fusion scenario."""
    graph, keys, expected = fusion_example_graph()
    return graph, keys, set(expected)
