"""Tests of the simulated vertex-centric asynchronous engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import pytest

from repro.exceptions import VertexCentricError
from repro.vertexcentric import VertexCentricEngine


@dataclass
class CounterState:
    value: int = 0
    log: List[object] = field(default_factory=list)


class PropagateProgram:
    """A vertex program that propagates a token along explicit 'next' links."""

    def __init__(self, links):
        self._links = links

    def on_message(self, vertex_id, state, payload, context):
        state.value += payload
        state.log.append(payload)
        context.add_work(2)
        nxt = self._links.get(vertex_id)
        if nxt is not None:
            context.send(nxt, payload + 1)


class TestEngine:
    def test_chain_propagation(self):
        links = {"a": "b", "b": "c"}
        engine = VertexCentricEngine(PropagateProgram(links), processors=2)
        for vertex in ("a", "b", "c"):
            engine.add_vertex(vertex, CounterState())
        engine.post("a", 1)
        engine.run()
        assert engine.vertex_state("a").value == 1
        assert engine.vertex_state("b").value == 2
        assert engine.vertex_state("c").value == 3
        assert engine.stats.messages_processed == 3
        assert engine.simulated_seconds() > 0

    def test_messages_to_unknown_vertices_are_dropped(self):
        engine = VertexCentricEngine(PropagateProgram({"a": "ghost"}), processors=1)
        engine.add_vertex("a", CounterState())
        engine.post("a", 1)
        engine.run()
        assert engine.stats.messages_dropped == 1

    def test_duplicate_vertex_rejected(self):
        engine = VertexCentricEngine(PropagateProgram({}), processors=1)
        engine.add_vertex("a", CounterState())
        with pytest.raises(VertexCentricError):
            engine.add_vertex("a", CounterState())

    def test_unknown_state_lookup_rejected(self):
        engine = VertexCentricEngine(PropagateProgram({}), processors=1)
        with pytest.raises(VertexCentricError):
            engine.vertex_state("nope")

    def test_invalid_processor_count(self):
        with pytest.raises(VertexCentricError):
            VertexCentricEngine(PropagateProgram({}), processors=0)

    def test_message_budget_guard(self):
        class LoopProgram:
            def on_message(self, vertex_id, state, payload, context):
                context.send(vertex_id, payload)

        engine = VertexCentricEngine(LoopProgram(), processors=1, max_messages=50)
        engine.add_vertex("a", CounterState())
        engine.post("a", 0)
        with pytest.raises(VertexCentricError):
            engine.run()

    def test_work_attribution_and_cost_model(self):
        links = {"a": "b"}
        engine = VertexCentricEngine(PropagateProgram(links), processors=3)
        engine.add_vertex("a", CounterState())
        engine.add_vertex("b", CounterState())
        engine.post("a", 1)
        engine.run()
        model = engine.cost_model
        # each handled message charges 1 (delivery) + 2 (program) work units
        assert sum(model.worker_work) == 6
        assert model.messages_sent == 2
        breakdown = model.breakdown()
        assert breakdown["total_seconds"] == pytest.approx(model.simulated_seconds())

    def test_reading_other_vertex_state(self):
        class PeekProgram:
            def on_message(self, vertex_id, state, payload, context):
                other = context.state(payload)
                state.value = other.value + 10

        engine = VertexCentricEngine(PeekProgram(), processors=1)
        engine.add_vertex("a", CounterState(value=5))
        engine.add_vertex("b", CounterState())
        engine.post("b", "a")
        engine.run()
        assert engine.vertex_state("b").value == 15
