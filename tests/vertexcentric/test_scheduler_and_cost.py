"""Tests of the asynchronous scheduler and the vertex-centric cost model."""

from __future__ import annotations

import pytest

from repro.exceptions import VertexCentricError
from repro.vertexcentric import AsyncScheduler, Message, VertexCentricCostModel


class TestAsyncScheduler:
    def test_processes_all_messages(self):
        scheduler = AsyncScheduler(3, worker_for=lambda v: hash(v))
        seen = []
        for index in range(10):
            scheduler.enqueue(Message.create(f"v{index}", index))
        processed = scheduler.run(lambda message: seen.append(message.payload))
        assert processed == 10
        assert sorted(seen) == list(range(10))
        assert scheduler.stats.enqueued == 10
        assert scheduler.stats.processed == 10

    def test_handlers_can_enqueue_more(self):
        scheduler = AsyncScheduler(2, worker_for=lambda v: hash(v))
        seen = []

        def handler(message):
            seen.append(message.payload)
            if message.payload < 3:
                scheduler.enqueue(Message.create("v", message.payload + 1))

        scheduler.enqueue(Message.create("v", 0))
        scheduler.run(handler)
        assert seen == [0, 1, 2, 3]

    def test_priority_order_within_a_worker(self):
        scheduler = AsyncScheduler(1, worker_for=lambda v: 0)
        seen = []
        scheduler.enqueue(Message.create("v", "low priority", priority=5))
        scheduler.enqueue(Message.create("v", "high priority", priority=0))
        scheduler.run(lambda message: seen.append(message.payload))
        assert seen == ["high priority", "low priority"]

    def test_message_budget(self):
        scheduler = AsyncScheduler(1, worker_for=lambda v: 0)

        def handler(message):
            scheduler.enqueue(Message.create("v", None))

        scheduler.enqueue(Message.create("v", None))
        with pytest.raises(VertexCentricError):
            scheduler.run(handler, max_messages=10)

    def test_invalid_worker_count(self):
        with pytest.raises(VertexCentricError):
            AsyncScheduler(0, worker_for=lambda v: 0)


class TestVertexCentricCostModel:
    def test_work_goes_to_hosting_worker(self):
        model = VertexCentricCostModel(processors=4)
        model.add_work("vertex", 7)
        assert sum(model.worker_work) == 7
        assert model.worker_work[model.worker_for("vertex")] == 7

    def test_simulated_seconds_decrease_with_processors(self):
        def build(processors: int) -> VertexCentricCostModel:
            model = VertexCentricCostModel(processors=processors)
            for index in range(1000):
                model.add_work(f"v{index}", 50)
            model.record_message_sent(5000)
            return model

        assert build(20).simulated_seconds() < build(4).simulated_seconds()

    def test_no_round_overhead(self):
        """Vertex-centric runs pay only a small fixed engine overhead."""
        model = VertexCentricCostModel(processors=4)
        assert model.simulated_seconds() < 1.0

    def test_breakdown_and_setup_work(self):
        model = VertexCentricCostModel(processors=2)
        model.add_setup_work(1000)
        breakdown = model.breakdown()
        assert breakdown["total_seconds"] == pytest.approx(model.simulated_seconds())
        assert model.total_work == 1000

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            VertexCentricCostModel(processors=0)
