"""Tests of the simulated HDFS store and the MapReduce cost model."""

from __future__ import annotations

import pytest

from repro.exceptions import MapReduceError
from repro.mapreduce import InMemoryHDFS, MapReduceCostModel, RoundCost, spread_evenly
from repro.mapreduce.cost_model import ROUND_OVERHEAD_SECONDS


class TestInMemoryHDFS:
    def test_create_append_read(self):
        hdfs = InMemoryHDFS()
        hdfs.create("eq")
        assert hdfs.exists("eq")
        assert hdfs.append("eq", [1, 2, 3]) == 3
        assert hdfs.read("eq") == [1, 2, 3]
        assert hdfs.stats.records_written == 3
        assert hdfs.stats.records_read == 3

    def test_create_twice_fails(self):
        hdfs = InMemoryHDFS()
        hdfs.create("eq")
        with pytest.raises(MapReduceError):
            hdfs.create("eq")

    def test_read_missing_fails_but_read_if_exists_does_not(self):
        hdfs = InMemoryHDFS()
        with pytest.raises(MapReduceError):
            hdfs.read("missing")
        assert hdfs.read_if_exists("missing") == []

    def test_overwrite_and_delete(self):
        hdfs = InMemoryHDFS()
        hdfs.append("eq", [1])
        assert hdfs.overwrite("eq", [9, 9]) == 2
        assert hdfs.size("eq") == 2
        hdfs.delete("eq")
        assert not hdfs.exists("eq")
        assert "eq" not in hdfs

    def test_size_is_not_charged_as_io(self):
        hdfs = InMemoryHDFS()
        hdfs.append("eq", [1, 2])
        read_before = hdfs.stats.records_read
        hdfs.size("eq")
        assert hdfs.stats.records_read == read_before


class TestCostModel:
    def test_round_seconds_include_overhead_and_makespan(self):
        cost = RoundCost(round_index=0, map_work_per_worker=[100, 400], reduce_work_per_worker=[10])
        seconds = cost.simulated_seconds(processors=4)
        assert seconds > ROUND_OVERHEAD_SECONDS
        # the straggler (400 units) dominates the map phase regardless of p
        assert cost.simulated_seconds(4) == pytest.approx(cost.simulated_seconds(8), rel=0.2)

    def test_more_processors_reduce_shuffle_time(self):
        cost = RoundCost(round_index=0, shuffled_records=100_000)
        assert cost.simulated_seconds(20) < cost.simulated_seconds(4)

    def test_model_accumulates_rounds(self):
        model = MapReduceCostModel(processors=4)
        first = model.new_round()
        first.map_work_per_worker = [10, 10]
        second = model.new_round()
        second.reduce_work_per_worker = [5]
        model.add_setup_work(100)
        assert model.num_rounds == 2
        assert model.total_work == 125
        breakdown = model.breakdown()
        assert breakdown["rounds"] == 2
        assert breakdown["total_seconds"] == pytest.approx(model.simulated_seconds())

    def test_parallel_scalability_shape(self):
        """More processors → proportionally less simulated time (same work)."""

        def build(processors: int) -> MapReduceCostModel:
            model = MapReduceCostModel(processors=processors)
            per_worker = 120_000 // processors
            cost = model.new_round()
            cost.map_work_per_worker = [per_worker] * processors
            cost.shuffled_records = 50_000
            return model

        slow = build(4).simulated_seconds()
        fast = build(20).simulated_seconds()
        assert fast < slow
        # speedup is sublinear because of the fixed round overhead, but real
        speedup = slow / fast
        assert 1.5 < speedup <= 5.0


class TestSpreadEvenly:
    def test_balances_loads(self):
        loads = spread_evenly([10, 10, 10, 10], processors=2)
        assert sorted(loads) == [20, 20]

    def test_handles_more_workers_than_items(self):
        loads = spread_evenly([5], processors=4)
        assert sorted(loads) == [0, 0, 0, 5]
