"""Tests of the simulated MapReduce runtime (word count & friends)."""

from __future__ import annotations

import pytest

from repro.exceptions import MapReduceError
from repro.mapreduce import (
    FunctionMapper,
    FunctionReducer,
    MapReduceDriver,
    MapReduceJob,
    MapReduceCostModel,
    WorkerCache,
)


def word_count_mapper(key, value, context):
    for word in str(value).split():
        context.emit(word, 1)


def word_count_reducer(key, values, context):
    context.emit(key, sum(values))


class TestMapReduceJob:
    def test_word_count(self):
        job = MapReduceJob(
            FunctionMapper(word_count_mapper), FunctionReducer(word_count_reducer), num_workers=3
        )
        documents = [(0, "keys for graphs"), (1, "graphs have keys"), (2, "keys keys keys")]
        result = job.run(documents)
        counts = dict(result.output)
        assert counts == {"keys": 5, "for": 1, "graphs": 2, "have": 1}

    def test_results_independent_of_worker_count(self):
        documents = [(i, f"w{i % 3} shared") for i in range(20)]
        outputs = []
        for workers in (1, 2, 7):
            job = MapReduceJob(
                FunctionMapper(word_count_mapper),
                FunctionReducer(word_count_reducer),
                num_workers=workers,
            )
            outputs.append(sorted(job.run(documents).output))
        assert outputs[0] == outputs[1] == outputs[2]

    def test_round_cost_populated(self):
        model = MapReduceCostModel(processors=4)
        job = MapReduceJob(
            FunctionMapper(word_count_mapper),
            FunctionReducer(word_count_reducer),
            num_workers=4,
            cost_model=model,
        )
        job.run([(0, "a b c"), (1, "a")])
        assert model.num_rounds == 1
        cost = model.rounds[0]
        assert sum(cost.map_work_per_worker) >= 2
        assert cost.shuffled_records == 4
        assert model.simulated_seconds() > 0

    def test_invalid_worker_count(self):
        with pytest.raises(MapReduceError):
            MapReduceJob(FunctionMapper(word_count_mapper), FunctionReducer(word_count_reducer), 0)

    def test_explicit_work_units_reach_cost_model(self):
        model = MapReduceCostModel(processors=2)

        def heavy_mapper(key, value, context):
            context.add_work(10)
            context.emit(key, value)

        job = MapReduceJob(
            FunctionMapper(heavy_mapper),
            FunctionReducer(word_count_reducer),
            num_workers=2,
            cost_model=model,
        )
        job.run([(0, 1), (1, 1)])
        assert model.total_work >= 20

    def test_negative_work_rejected(self):
        def bad_mapper(key, value, context):
            context.add_work(-1)

        job = MapReduceJob(FunctionMapper(bad_mapper), FunctionReducer(word_count_reducer), 1)
        with pytest.raises(MapReduceError):
            job.run([(0, "x")])

    def test_grouped_output(self):
        job = MapReduceJob(
            FunctionMapper(word_count_mapper), FunctionReducer(word_count_reducer), num_workers=2
        )
        grouped = job.run([(0, "a a b")]).grouped()
        assert grouped == {"a": [2], "b": [1]}


class TestDriver:
    def test_driver_runs_jobs_and_tracks_hdfs(self):
        driver = MapReduceDriver(num_workers=3)
        driver.hdfs.overwrite("state", ["seed"])
        result = driver.run_job(
            FunctionMapper(word_count_mapper), FunctionReducer(word_count_reducer), [(0, "x y")]
        )
        assert dict(result.output) == {"x": 1, "y": 1}
        assert result.round_cost.hdfs_records >= 1
        assert driver.simulated_seconds() > 0

    def test_charge_setup_increases_time(self):
        fast = MapReduceDriver(num_workers=4)
        slow = MapReduceDriver(num_workers=4)
        slow.charge_setup(1_000_000)
        assert slow.simulated_seconds() > fast.simulated_seconds()

    def test_invalid_worker_count(self):
        with pytest.raises(MapReduceError):
            MapReduceDriver(0)

    def test_mapper_can_read_worker_cache(self):
        driver = MapReduceDriver(num_workers=2)
        driver.cache.put("factor", 3)

        def scaling_mapper(key, value, context):
            context.emit(key, value * context.cached("factor"))

        def identity_reducer(key, values, context):
            for value in values:
                context.emit(key, value)

        result = driver.run_job(
            FunctionMapper(scaling_mapper), FunctionReducer(identity_reducer), [(0, 2), (1, 5)]
        )
        assert sorted(result.output) == [(0, 6), (1, 15)]


class TestWorkerCache:
    def test_put_get_and_stats(self):
        cache = WorkerCache(num_workers=4)
        cache.put("keys", {"a": 1}, records=10)
        assert cache.get("keys") == {"a": 1}
        assert "keys" in cache and len(cache) == 1
        assert cache.stats.distributed_records == 40
        assert cache.stats.hits == 1
        assert cache.get_optional("missing", default="x") == "x"

    def test_missing_entry_raises(self):
        cache = WorkerCache(num_workers=1)
        with pytest.raises(MapReduceError):
            cache.get("missing")
