"""Unit tests for keys and key sets."""

from __future__ import annotations

import pytest

from repro.core.key import Key, KeySet
from repro.core.pattern import GraphPattern, PatternTriple, designated, entity_var, value_var
from repro.datasets.business import business_keys
from repro.datasets.music import key_q1, key_q2, key_q3, music_keys
from repro.exceptions import InvalidKeyError


class TestKey:
    def test_target_type_and_size(self):
        q1 = key_q1()
        assert q1.target_type == "album"
        assert q1.size == 2
        assert q1.radius == 1

    def test_recursive_vs_value_based(self):
        assert key_q1().is_recursive
        assert key_q2().is_value_based
        assert key_q3().is_recursive

    def test_depends_on_types(self):
        assert key_q1().depends_on_types() == {"artist"}
        assert key_q2().depends_on_types() == set()
        assert key_q3().depends_on_types() == {"album"}

    def test_is_defined_on(self):
        assert key_q1().is_defined_on("album")
        assert not key_q1().is_defined_on("artist")

    def test_from_triples_and_equality(self):
        x = designated("x", "album")
        triples = [PatternTriple(x, "name_of", value_var("name"))]
        key_a = Key.from_triples(triples, name="A")
        key_b = Key.from_triples(triples, name="B")
        assert key_a == key_b  # equality is structural (same pattern)
        assert key_a.describe().startswith("pattern")


class TestKeySet:
    def test_cardinality_and_size(self):
        keys = music_keys()
        assert keys.cardinality == 3
        assert len(keys) == 3
        assert keys.size == sum(k.size for k in keys)

    def test_keys_for_type(self):
        keys = music_keys()
        assert {k.name for k in keys.keys_for_type("album")} == {"Q1", "Q2"}
        assert {k.name for k in keys.keys_for_type("artist")} == {"Q3"}
        assert keys.keys_for_type("street") == []

    def test_target_types_and_partitions(self):
        keys = music_keys()
        assert keys.target_types() == {"album", "artist"}
        assert {k.name for k in keys.value_based_keys()} == {"Q2"}
        assert {k.name for k in keys.recursive_keys()} == {"Q1", "Q3"}

    def test_by_name(self):
        keys = music_keys()
        assert keys.by_name("Q2").is_value_based
        with pytest.raises(InvalidKeyError):
            keys.by_name("missing")

    def test_duplicates_ignored_and_bad_add_rejected(self):
        keys = KeySet([key_q1(), key_q1()])
        assert keys.cardinality == 1
        with pytest.raises(InvalidKeyError):
            keys.add("not a key")  # type: ignore[arg-type]

    def test_max_radius(self):
        keys = music_keys()
        assert keys.max_radius() == 1
        assert keys.max_radius_for_type("album") == 1
        assert keys.max_radius_for_type("street") == 0

    def test_dependency_graph_mutual_recursion(self):
        keys = music_keys()
        graph = keys.type_dependency_graph()
        assert graph["album"] == {"artist"}
        assert graph["artist"] == {"album"}
        assert keys.has_recursive_cycle()
        assert keys.dependency_chain_length() == 2

    def test_dependency_chain_business(self):
        keys = business_keys()
        # Q4/Q5 reference companies from company keys: a self-loop, chain 1
        assert keys.dependency_chain_length() in (1, 2)

    def test_empty_keyset(self):
        keys = KeySet()
        assert keys.cardinality == 0
        assert keys.dependency_chain_length() == 0
        assert keys.max_radius() == 0
        assert not keys.has_recursive_cycle()

    def test_stats(self):
        stats = music_keys().stats()
        assert stats["keys"] == 3
        assert stats["recursive"] == 2
        assert stats["max_radius"] == 1
