"""Unit tests for the union–find equivalence relation (Eq)."""

from __future__ import annotations

import pytest

from repro.core.equivalence import EquivalenceRelation, canonical_pair


class TestCanonicalPair:
    def test_orders_lexicographically(self):
        assert canonical_pair("b", "a") == ("a", "b")
        assert canonical_pair("a", "b") == ("a", "b")


class TestEquivalenceRelation:
    def test_starts_as_identity(self):
        eq = EquivalenceRelation(["a", "b"])
        assert eq.identified("a", "a")
        assert not eq.identified("a", "b")
        assert eq.pairs() == set()

    def test_merge_and_query(self):
        eq = EquivalenceRelation()
        assert eq.merge("a", "b")
        assert eq.identified("a", "b")
        assert eq.identified("b", "a")
        assert not eq.merge("a", "b")  # already merged
        assert eq.merge_count == 1

    def test_transitivity(self):
        eq = EquivalenceRelation()
        eq.merge("a", "b")
        eq.merge("b", "c")
        assert eq.identified("a", "c")
        assert eq.pairs() == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_unknown_members_are_singletons(self):
        eq = EquivalenceRelation(["a"])
        assert not eq.identified("a", "never_seen")
        assert eq.identified("never_seen", "never_seen")

    def test_contains_protocol(self):
        eq = EquivalenceRelation()
        eq.merge("a", "b")
        assert ("a", "b") in eq
        assert ("a", "c") not in eq
        assert "not a pair" not in eq

    def test_classes(self):
        eq = EquivalenceRelation(["a", "b", "c", "d"])
        eq.merge("a", "b")
        classes = {frozenset(c) for c in eq.classes()}
        assert frozenset({"a", "b"}) in classes
        assert frozenset({"c"}) in classes
        nontrivial = eq.nontrivial_classes()
        assert len(nontrivial) == 1
        assert eq.class_of("a") == {"a", "b"}

    def test_copy_is_independent(self):
        eq = EquivalenceRelation()
        eq.merge("a", "b")
        clone = eq.copy()
        clone.merge("c", "d")
        assert not eq.identified("c", "d")
        assert clone.identified("a", "b")

    def test_equality_compares_pairs(self):
        left = EquivalenceRelation()
        right = EquivalenceRelation()
        left.merge("a", "b")
        right.merge("b", "a")
        assert left == right
        right.merge("c", "d")
        assert left != right
