"""Tests of the declarative semantics: matches, coincidence, satisfaction."""

from __future__ import annotations

import pytest

from repro.core.equivalence import EquivalenceRelation
from repro.core.matching import (
    coincides,
    find_matches,
    has_match,
    identify_pair_by_enumeration,
    match_triples,
    satisfies,
    violations,
)
from repro.datasets.business import business_graph, key_q4
from repro.datasets.music import key_q1, key_q2, key_q3, music_graph
from repro.exceptions import UnknownEntityError


class TestFindMatches:
    def test_example4_match_of_q4_at_com4(self):
        """Example 4 of the paper: Q4 matches G2 at com4."""
        graph = business_graph()
        matches = find_matches(graph, key_q4().pattern, "com4")
        assert matches, "Q4 must match at com4"
        valuation = matches[0]
        assert valuation["x"] == "com4"
        # the same-named parent must be com1 and the other parent com3
        assert valuation["p"] == "com1"
        assert valuation["other_parent"] == "com3"

    def test_no_match_for_wrong_type(self):
        graph = music_graph()
        assert find_matches(graph, key_q3().pattern, "alb1") == []

    def test_unknown_entity_raises(self):
        graph = music_graph()
        with pytest.raises(UnknownEntityError):
            find_matches(graph, key_q1().pattern, "nope")

    def test_restrict_excludes_matches(self):
        graph = music_graph()
        assert find_matches(graph, key_q2().pattern, "alb1", restrict={"alb1"}) == []

    def test_limit_stops_enumeration(self):
        graph = music_graph()
        matches = find_matches(graph, key_q2().pattern, "alb1", limit=1)
        assert len(matches) == 1

    def test_has_match(self):
        graph = music_graph()
        assert has_match(graph, key_q2().pattern, "alb1")

    def test_work_counter_accumulates(self):
        graph = music_graph()
        counter: dict = {}
        find_matches(graph, key_q2().pattern, "alb1", work_counter=counter)
        assert counter.get("matches", 0) >= 1
        assert counter.get("candidates", 0) >= 1

    def test_match_triples_image(self):
        graph = music_graph()
        pattern = key_q2().pattern
        valuation = find_matches(graph, pattern, "alb1")[0]
        image = match_triples(pattern, valuation)
        assert len(image) == pattern.size
        assert all(triple in graph for triple in image)


class TestCoincidence:
    def test_value_variables_must_agree(self):
        graph = music_graph()
        pattern = key_q2().pattern
        v1 = find_matches(graph, pattern, "alb1")[0]
        v2 = find_matches(graph, pattern, "alb2")[0]
        v3 = find_matches(graph, pattern, "alb3")[0]
        assert coincides(pattern, v1, v2)
        assert not coincides(pattern, v1, v3)  # different release year

    def test_entity_variables_need_eq(self):
        graph = music_graph()
        pattern = key_q3().pattern
        v1 = find_matches(graph, pattern, "art1")[0]
        v2 = find_matches(graph, pattern, "art2")[0]
        assert not coincides(pattern, v1, v2)  # albums not identified yet
        eq = EquivalenceRelation()
        eq.merge("alb1", "alb2")
        assert coincides(pattern, v1, v2, eq=eq)


class TestSatisfaction:
    def test_g1_violates_q2(self):
        """Example 5: either alb1 or alb2 is a duplicate w.r.t. Q2."""
        graph = music_graph()
        assert not satisfies(graph, key_q2())
        assert ("alb1", "alb2") in violations(graph, key_q2())

    def test_g2_violates_q4(self):
        graph = business_graph()
        assert not satisfies(graph, key_q4())
        assert ("com4", "com5") in violations(graph, key_q4())

    def test_satisfied_after_removing_duplicate(self):
        graph = music_graph()
        clean = graph.induced_subgraph(
            set(graph.neighbors("alb1")) | {"alb1", "alb3", "art1", "art3"}
            | set(graph.neighbors("alb3"))
        )
        assert satisfies(clean, key_q2())

    def test_violation_limit(self):
        graph = music_graph()
        assert len(violations(graph, key_q2(), limit=1)) == 1


class TestEnumerationChecker:
    def test_identify_pair_by_enumeration_matches_guided_semantics(self):
        graph = music_graph()
        eq = EquivalenceRelation()
        assert identify_pair_by_enumeration(graph, key_q2(), "alb1", "alb2", eq=eq)
        assert not identify_pair_by_enumeration(graph, key_q3(), "art1", "art2", eq=eq)
        eq.merge("alb1", "alb2")
        assert identify_pair_by_enumeration(graph, key_q3(), "art1", "art2", eq=eq)
