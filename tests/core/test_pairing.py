"""Tests of the pairing relation (Proposition 9) and neighbourhood reduction."""

from __future__ import annotations

import itertools

import pytest

from repro.core.chase import chase
from repro.core.equivalence import EquivalenceRelation
from repro.core.neighborhood import NeighborhoodIndex
from repro.core.pairing import (
    can_pair,
    can_pair_with_any,
    pairing_relation,
    pairing_support_nodes,
    reduced_neighborhoods,
)
from repro.datasets.music import key_q1, key_q2, key_q3, music_dataset
from repro.datasets.synthetic import synthetic_dataset


@pytest.fixture
def music_env():
    graph, keys = music_dataset()
    index = NeighborhoodIndex(graph, keys)
    return graph, keys, index


class TestPairingRelation:
    def test_identifiable_pair_is_paired(self, music_env):
        graph, keys, index = music_env
        relation = pairing_relation(
            graph, key_q2(), "alb1", "alb2", index.nodes("alb1"), index.nodes("alb2")
        )
        assert relation is not None
        assert ("alb1", "alb2") in relation["x"]

    def test_pairing_is_necessary_condition(self, music_env):
        """Prop. 9(a): pairs that cannot be paired are never identified."""
        graph, keys, index = music_env
        result = chase(graph, keys)
        for etype in keys.target_types():
            for e1, e2 in itertools.combinations(graph.entities_of_type(etype), 2):
                paired = can_pair_with_any(
                    graph,
                    keys.keys_for_type(etype),
                    e1,
                    e2,
                    index.nodes(e1),
                    index.nodes(e2),
                )
                if result.identified(e1, e2):
                    assert paired, f"identified pair ({e1}, {e2}) must be pairable"

    def test_unpairable_pair(self, music_env):
        graph, keys, index = music_env
        # alb1 and alb3 have different release years but both have *some* year,
        # so Q2 can still pair them; a pair across missing structure cannot:
        graph.add_entity("alb_orphan", "album")
        index2 = NeighborhoodIndex(graph, keys)
        assert not can_pair(
            graph, key_q2(), "alb1", "alb_orphan",
            index2.nodes("alb1"), index2.nodes("alb_orphan"),
        )

    def test_support_nodes_cover_designated(self, music_env):
        graph, keys, index = music_env
        relation = pairing_relation(
            graph, key_q2(), "alb1", "alb2", index.nodes("alb1"), index.nodes("alb2")
        )
        side1, side2 = pairing_support_nodes(relation)
        assert "alb1" in side1 and "alb2" in side2


class TestReducedNeighborhoods:
    def test_reduction_preserves_identifiability(self, music_env):
        graph, keys, index = music_env
        evaluatorless_eq = EquivalenceRelation()
        reduced = reduced_neighborhoods(
            graph,
            keys.keys_for_type("album"),
            "alb1",
            "alb2",
            index.nodes("alb1"),
            index.nodes("alb2"),
        )
        assert reduced is not None
        reduced1, reduced2 = reduced
        assert reduced1 <= index.nodes("alb1")
        assert reduced2 <= index.nodes("alb2")
        from repro.core.eval_guided import GuidedPairEvaluator

        evaluator = GuidedPairEvaluator(graph)
        assert evaluator.identify(key_q2(), "alb1", "alb2", evaluatorless_eq, reduced1, reduced2)

    def test_reduction_returns_none_when_unpairable(self, music_env):
        graph, keys, index = music_env
        graph.add_entity("alb_orphan", "album")
        index2 = NeighborhoodIndex(graph, keys)
        assert (
            reduced_neighborhoods(
                graph,
                keys.keys_for_type("album"),
                "alb1",
                "alb_orphan",
                index2.nodes("alb1"),
                index2.nodes("alb_orphan"),
            )
            is None
        )

    def test_reduction_shrinks_on_synthetic_data(self):
        dataset = synthetic_dataset(num_keys=4, chain_length=2, radius=2, entities_per_type=5)
        graph, keys = dataset.graph, dataset.keys
        index = NeighborhoodIndex(graph, keys)
        etype = next(iter(keys.target_types()))
        entities = graph.entities_of_type(etype)
        e1, e2 = entities[0], entities[1]
        nbhd1, nbhd2 = index.nodes(e1), index.nodes(e2)
        reduced = reduced_neighborhoods(
            graph, keys.keys_for_type(etype), e1, e2, nbhd1, nbhd2
        )
        if reduced is not None:
            assert len(reduced[0]) <= len(nbhd1)
            assert len(reduced[1]) <= len(nbhd2)
