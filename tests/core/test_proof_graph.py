"""Tests of proof graphs: construction from chase provenance and verification."""

from __future__ import annotations

import pytest

from repro.core.chase import chase
from repro.core.proof_graph import (
    ProofGraph,
    ProofNode,
    explain,
    proof_from_chase,
    verify_proof,
)
from repro.exceptions import ProofError


class TestProofConstruction:
    def test_proof_from_chase_has_one_node_per_direct_step(self, music):
        graph, keys, _ = music
        result = chase(graph, keys)
        proof = proof_from_chase(result)
        assert len(proof) == len(result.steps)
        assert ("alb1", "alb2") in proof

    def test_topological_order_respects_prerequisites(self, music):
        graph, keys, _ = music
        proof = proof_from_chase(chase(graph, keys))
        order = [node.pair for node in proof.topological_order()]
        assert order.index(("alb1", "alb2")) < order.index(("art1", "art2"))

    def test_restricted_to_target(self, music):
        graph, keys, _ = music
        proof = proof_from_chase(chase(graph, keys))
        sub = proof.restricted_to(("art1", "art2"))
        assert set(sub.pairs()) == {("alb1", "alb2"), ("art1", "art2")}


class TestVerification:
    def test_valid_proofs_verify(self, music, business):
        for graph, keys, _ in (music, business):
            result = chase(graph, keys)
            proof = proof_from_chase(result)
            assert verify_proof(graph, keys, proof)
            for pair in result.pairs():
                assert verify_proof(graph, keys, proof, target=pair)

    def test_missing_prerequisite_rejected(self, music):
        graph, keys, _ = music
        forged = ProofGraph()
        forged.add(
            ProofNode(pair=("art1", "art2"), key_name="Q3", prerequisites=(("alb1", "alb2"),))
        )
        with pytest.raises(ProofError):
            verify_proof(graph, keys, forged)

    def test_wrong_key_rejected(self, music):
        graph, keys, _ = music
        forged = ProofGraph()
        forged.add(ProofNode(pair=("alb1", "alb3"), key_name="Q2"))
        with pytest.raises(ProofError):
            verify_proof(graph, keys, forged)

    def test_unknown_key_rejected(self, music):
        graph, keys, _ = music
        forged = ProofGraph()
        forged.add(ProofNode(pair=("alb1", "alb2"), key_name="Q99"))
        with pytest.raises(ProofError):
            verify_proof(graph, keys, forged)

    def test_cyclic_proof_rejected(self, music):
        graph, keys, _ = music
        cyclic = ProofGraph()
        cyclic.add(ProofNode(("alb1", "alb2"), "Q2", (("art1", "art2"),)))
        cyclic.add(ProofNode(("art1", "art2"), "Q3", (("alb1", "alb2"),)))
        with pytest.raises(ProofError):
            cyclic.topological_order()

    def test_unproven_target_rejected(self, music):
        graph, keys, _ = music
        proof = proof_from_chase(chase(graph, keys))
        with pytest.raises(ProofError):
            verify_proof(graph, keys, proof, target=("alb1", "alb3"))


class TestExplain:
    def test_explanation_for_identified_pair(self, music):
        graph, keys, _ = music
        result = chase(graph, keys)
        steps = explain(graph, keys, result, "art1", "art2")
        assert [node.pair for node in steps] == [("alb1", "alb2"), ("art1", "art2")]

    def test_explanation_for_unidentified_pair_is_empty(self, music):
        graph, keys, _ = music
        result = chase(graph, keys)
        assert explain(graph, keys, result, "alb1", "alb3") == []
