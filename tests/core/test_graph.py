"""Unit tests for the Graph triple store."""

from __future__ import annotations

import pytest

from repro.core.graph import Graph, merge_graphs
from repro.core.triples import Literal, Triple
from repro.exceptions import DuplicateEntityError, UnknownEntityError


@pytest.fixture
def graph() -> Graph:
    g = Graph()
    g.add_entity("a", "album")
    g.add_entity("b", "album")
    g.add_entity("r", "artist")
    g.add_value("a", "name_of", "X")
    g.add_value("b", "name_of", "X")
    g.add_edge("a", "recorded_by", "r")
    return g


class TestConstruction:
    def test_counts(self, graph: Graph):
        assert graph.num_entities == 3
        assert graph.num_triples == 3
        # two albums share the same name value node
        assert graph.num_nodes == 4

    def test_readding_entity_same_type_is_noop(self, graph: Graph):
        graph.add_entity("a", "album")
        assert graph.num_entities == 3

    def test_readding_entity_different_type_fails(self, graph: Graph):
        with pytest.raises(DuplicateEntityError):
            graph.add_entity("a", "artist")

    def test_triple_with_unknown_subject_fails(self, graph: Graph):
        with pytest.raises(UnknownEntityError):
            graph.add_edge("missing", "p", "a")

    def test_triple_with_unknown_entity_object_fails(self, graph: Graph):
        with pytest.raises(UnknownEntityError):
            graph.add_edge("a", "p", "missing")

    def test_duplicate_triples_are_deduplicated(self, graph: Graph):
        graph.add_edge("a", "recorded_by", "r")
        assert graph.num_triples == 3

    def test_from_triples(self):
        g = Graph.from_triples(
            {"a": "album", "r": "artist"},
            [Triple("a", "recorded_by", "r"), Triple("a", "name_of", Literal("X"))],
        )
        assert g.num_triples == 2

    def test_copy_is_independent(self, graph: Graph):
        clone = graph.copy()
        clone.add_entity("new", "album")
        assert not graph.has_entity("new")
        assert clone == clone and clone != graph


class TestQueries:
    def test_entity_lookup(self, graph: Graph):
        assert graph.entity_type("a") == "album"
        with pytest.raises(UnknownEntityError):
            graph.entity_type("zzz")

    def test_entities_of_type_sorted(self, graph: Graph):
        assert graph.entities_of_type("album") == ["a", "b"]
        assert graph.entities_of_type("nonexistent") == []

    def test_types_and_predicates(self, graph: Graph):
        assert graph.types() == {"album", "artist"}
        assert graph.predicates() == {"name_of", "recorded_by"}

    def test_objects_and_subjects(self, graph: Graph):
        assert graph.objects("a", "recorded_by") == {"r"}
        assert graph.subjects("name_of", Literal("X")) == {"a", "b"}
        assert graph.objects("a", "missing") == set()

    def test_out_in_triples(self, graph: Graph):
        assert len(graph.out_triples("a")) == 2
        assert len(graph.in_triples("r")) == 1

    def test_neighbors_are_undirected(self, graph: Graph):
        assert "r" in graph.neighbors("a")
        assert "a" in graph.neighbors("r")
        assert Literal("X") in graph.neighbors("a")

    def test_has_triple_and_contains(self, graph: Graph):
        assert graph.has_triple("a", "recorded_by", "r")
        assert Triple("a", "recorded_by", "r") in graph
        assert "a" in graph
        assert "zzz" not in graph

    def test_value_nodes_and_degree(self, graph: Graph):
        assert graph.value_nodes() == {Literal("X")}
        assert graph.degree("a") == 2

    def test_stats(self, graph: Graph):
        stats = graph.stats()
        assert stats["entities"] == 3
        assert stats["triples"] == 3
        assert stats["types"] == 2


class TestStructure:
    def test_induced_subgraph(self, graph: Graph):
        sub = graph.induced_subgraph({"a", "r"})
        assert sub.num_entities == 2
        assert sub.num_triples == 1
        assert sub.has_triple("a", "recorded_by", "r")

    def test_union_and_merge(self, graph: Graph):
        other = Graph()
        other.add_entity("c", "album")
        other.add_value("c", "name_of", "Y")
        merged = graph.union(other)
        assert merged.num_entities == 4
        assert merge_graphs([graph, other]).num_triples == 4

    def test_connectivity(self, graph: Graph):
        assert graph.is_connected()
        graph.add_entity("lonely", "album")
        assert not graph.is_connected()
        assert len(graph.connected_components()) == 2

    def test_is_tree(self):
        tree = Graph()
        tree.add_entity("root", "t")
        tree.add_entity("child", "t")
        tree.add_edge("root", "p", "child")
        assert tree.is_tree()
        tree.add_entity("grand", "t")
        tree.add_edge("child", "p", "grand")
        tree.add_edge("root", "q", "grand")  # creates a cycle
        assert not tree.is_tree()

    def test_empty_graph_is_trivially_tree_and_connected(self):
        assert Graph().is_tree()
        assert Graph().is_connected()


class TestNonMonotoneMutations:
    """remove_triple / remove_edge / remove_value / set_value / retype_entity."""

    def test_remove_triple_updates_every_index(self, graph: Graph):
        graph.remove_edge("a", "recorded_by", "r")
        assert not graph.has_triple("a", "recorded_by", "r")
        assert graph.num_triples == 2
        assert graph.objects("a", "recorded_by") == set()
        assert graph.subjects("recorded_by", "r") == set()
        assert "r" not in graph.neighbors("a")
        assert "a" not in graph.neighbors("r")

    def test_remove_keeps_undirected_edge_with_parallel_triple(self, graph: Graph):
        graph.add_edge("a", "produced_by", "r")  # parallel edge a—r
        graph.remove_edge("a", "recorded_by", "r")
        assert "r" in graph.neighbors("a")
        graph.remove_edge("a", "produced_by", "r")
        assert "r" not in graph.neighbors("a")

    def test_remove_keeps_undirected_edge_with_reverse_triple(self, graph: Graph):
        graph.add_edge("r", "performs_on", "a")
        graph.remove_edge("a", "recorded_by", "r")
        assert "r" in graph.neighbors("a") and "a" in graph.neighbors("r")

    def test_remove_value_shares_value_nodes_correctly(self, graph: Graph):
        graph.remove_value("a", "name_of", "X")
        # "b" still holds the shared value node
        assert graph.has_triple("b", "name_of", Literal("X"))
        assert Literal("X") in graph.value_nodes()
        assert "a" not in graph.subjects("name_of", Literal("X"))

    def test_removal_is_journalled(self, graph: Graph):
        version = graph.version
        graph.remove_edge("a", "recorded_by", "r")
        assert graph.version > version
        touched = graph.touched_since(version)
        assert touched == {"a", "r"}

    def test_absent_removal_is_a_noop(self, graph: Graph):
        version = graph.version
        graph.remove_edge("a", "never_there", "r")
        assert graph.version == version

    def test_set_value_replaces_and_journals(self, graph: Graph):
        version = graph.version
        graph.set_value("a", "name_of", "Y")
        assert graph.objects("a", "name_of") == {Literal("Y")}
        touched = graph.touched_since(version)
        assert "a" in touched and Literal("X") in touched and Literal("Y") in touched

    def test_set_value_same_value_is_a_noop(self, graph: Graph):
        version = graph.version
        graph.set_value("a", "name_of", "X")
        assert graph.version == version

    def test_retype_entity_moves_type_buckets(self, graph: Graph):
        version = graph.version
        graph.retype_entity("a", "bootleg")
        assert graph.entity_type("a") == "bootleg"
        assert graph.entities_of_type("album") == ["b"]
        assert graph.entities_of_type("bootleg") == ["a"]
        assert graph.touched_since(version) == {"a"}
        # incident triples survive a retype
        assert graph.has_triple("a", "recorded_by", "r")

    def test_retype_to_same_type_is_a_noop(self, graph: Graph):
        version = graph.version
        graph.retype_entity("a", "album")
        assert graph.version == version

    def test_retype_unknown_entity_raises(self, graph: Graph):
        with pytest.raises(UnknownEntityError):
            graph.retype_entity("ghost", "album")

    def test_copy_equality_after_removals(self, graph: Graph):
        graph.remove_edge("a", "recorded_by", "r")
        clone = graph.copy()
        assert clone == graph
        assert clone.neighbors("a") == graph.neighbors("a")
