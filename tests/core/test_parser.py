"""Tests of the textual DSL: parsing, serialization, round trips, errors."""

from __future__ import annotations

import pytest

from repro.core.parser import (
    load_graph,
    load_keys,
    parse_graph,
    parse_keys,
    save_graph,
    save_keys,
    serialize_graph,
    serialize_keys,
)
from repro.core.pattern import NodeKind
from repro.datasets.business import business_keys
from repro.datasets.music import music_graph, music_keys
from repro.exceptions import ParseError

GRAPH_TEXT = """
# the music example
entity alb1 : album
entity art1 : artist
alb1 -[name_of]-> "Anthology 2"
alb1 -[release_year]-> 1996
alb1 -[recorded_by]-> art1
art1 -[active]-> true
"""

KEYS_TEXT = """
key Q1 for album:
  x -[name_of]-> name*
  x -[recorded_by]-> artist1:artist

key Q6 for street:
  x -[nation_of]-> "UK"
  x -[zip_code]-> code*

key Q4 for company:
  x -[name_of]-> name*
  _p:company -[name_of]-> name*
  _p:company -[parent_of]-> x
  other:company -[parent_of]-> x
"""


class TestGraphParsing:
    def test_parse_entities_values_and_edges(self):
        graph = parse_graph(GRAPH_TEXT)
        assert graph.num_entities == 2
        assert graph.entity_type("alb1") == "album"
        assert graph.has_triple("alb1", "recorded_by", "art1")
        objects = {t.obj for t in graph.out_triples("alb1") if t.object_is_value()}
        values = {o.value for o in objects}  # type: ignore[union-attr]
        assert values == {"Anthology 2", 1996}

    def test_boolean_values(self):
        graph = parse_graph(GRAPH_TEXT)
        assert any(
            t.object_is_value() and t.obj.value is True  # type: ignore[union-attr]
            for t in graph.out_triples("art1")
        )

    def test_undeclared_object_entity_rejected(self):
        with pytest.raises(ParseError):
            parse_graph("entity a : t\na -[p]-> missing_entity")

    def test_garbage_line_rejected_with_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            parse_graph("entity a : t\nthis is not a triple")
        assert excinfo.value.line == 2

    def test_round_trip(self):
        original = music_graph()
        assert parse_graph(serialize_graph(original)) == original

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "graph.kfg"
        save_graph(music_graph(), path)
        assert load_graph(path) == music_graph()


class TestKeyParsing:
    def test_parse_kinds(self):
        keys = parse_keys(KEYS_TEXT)
        assert keys.cardinality == 3
        q1 = keys.by_name("Q1")
        assert q1.target_type == "album"
        assert q1.is_recursive
        q6 = keys.by_name("Q6")
        kinds = {node.kind for node in q6.pattern.nodes()}
        assert NodeKind.CONSTANT in kinds
        q4 = keys.by_name("Q4")
        assert len(q4.pattern.wildcards()) == 1
        assert len(q4.pattern.entity_variables()) == 1

    def test_triple_outside_key_block_rejected(self):
        with pytest.raises(ParseError):
            parse_keys("x -[p]-> name*")

    def test_key_without_triples_rejected(self):
        with pytest.raises(ParseError):
            parse_keys("key Q for album:\n\nkey R for album:\n  x -[p]-> v*")

    def test_bad_pattern_node_rejected(self):
        with pytest.raises(ParseError):
            parse_keys("key Q for album:\n  x -[p]-> barevariable")

    def test_missing_type_rejected(self):
        with pytest.raises(ParseError):
            parse_keys("key Q for album:\n  x -[p]-> y:")

    def test_round_trip_music_and_business(self):
        for keys in (music_keys(), business_keys()):
            parsed = parse_keys(serialize_keys(keys))
            assert parsed.cardinality == keys.cardinality
            for key in keys:
                assert parsed.by_name(key.name).pattern == key.pattern

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "keys.kfk"
        save_keys(music_keys(), path)
        assert load_keys(path).cardinality == 3
