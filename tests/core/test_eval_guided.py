"""Tests of the guided, early-terminating per-pair check (EvalMR)."""

from __future__ import annotations

import itertools

import pytest

from repro.core.equivalence import EquivalenceRelation
from repro.core.eval_guided import GuidedPairEvaluator
from repro.core.matching import identify_pair_by_enumeration
from repro.core.neighborhood import NeighborhoodIndex
from repro.datasets.business import business_dataset, business_graph, key_q4, key_q5
from repro.datasets.music import key_q1, key_q2, key_q3, music_dataset, music_graph


class TestGuidedEvaluator:
    def test_value_based_identification(self):
        graph = music_graph()
        evaluator = GuidedPairEvaluator(graph)
        eq = EquivalenceRelation()
        assert evaluator.identify(key_q2(), "alb1", "alb2", eq)
        assert not evaluator.identify(key_q2(), "alb1", "alb3", eq)

    def test_recursive_identification_needs_eq(self):
        graph = music_graph()
        evaluator = GuidedPairEvaluator(graph)
        eq = EquivalenceRelation()
        assert not evaluator.identify(key_q3(), "art1", "art2", eq)
        eq.merge("alb1", "alb2")
        assert evaluator.identify(key_q3(), "art1", "art2", eq)

    def test_wildcards_do_not_require_identity(self):
        """Q4 identifies (com4, com5) even though their same-named parents differ."""
        graph = business_graph()
        evaluator = GuidedPairEvaluator(graph)
        eq = EquivalenceRelation()
        assert evaluator.identify(key_q4(), "com4", "com5", eq)

    def test_type_mismatch_returns_false(self):
        graph = music_graph()
        evaluator = GuidedPairEvaluator(graph)
        eq = EquivalenceRelation()
        assert not evaluator.identify(key_q2(), "art1", "art2", eq)
        assert not evaluator.identify(key_q2(), "alb1", "missing", eq)

    def test_witness_contains_all_pattern_nodes(self):
        graph = music_graph()
        evaluator = GuidedPairEvaluator(graph)
        eq = EquivalenceRelation()
        witness = evaluator.identify_with_witness(key_q2(), "alb1", "alb2", eq)
        assert witness is not None
        assert set(witness.keys()) == key_q2().pattern.node_names()
        assert witness["x"] == ("alb1", "alb2")

    def test_identify_with_any_returns_first_matching_key(self):
        graph = music_graph()
        evaluator = GuidedPairEvaluator(graph)
        eq = EquivalenceRelation()
        found = evaluator.identify_with_any([key_q1(), key_q2()], "alb1", "alb2", eq)
        assert found is not None and found.name == "Q2"
        assert evaluator.identify_with_any([key_q1()], "alb1", "alb2", eq) is None

    def test_neighborhood_restriction(self):
        graph, keys = music_dataset()
        evaluator = GuidedPairEvaluator(graph)
        eq = EquivalenceRelation()
        index = NeighborhoodIndex(graph, keys)
        assert evaluator.identify(
            key_q2(), "alb1", "alb2", eq, index.nodes("alb1"), index.nodes("alb2")
        )
        # an overly small neighbourhood hides the witness
        assert not evaluator.identify(key_q2(), "alb1", "alb2", eq, {"alb1"}, {"alb2"})

    def test_statistics_accumulate(self):
        graph = music_graph()
        evaluator = GuidedPairEvaluator(graph)
        eq = EquivalenceRelation()
        evaluator.identify(key_q2(), "alb1", "alb2", eq)
        evaluator.identify(key_q2(), "alb1", "alb3", eq)
        stats = evaluator.stats
        assert stats.calls == 2
        assert stats.successes == 1
        assert stats.work > 0


class TestAgreementWithEnumeration:
    """Lemma 8: the guided check agrees with the enumerate-then-coincide semantics."""

    @pytest.mark.parametrize("dataset_name", ["music", "business"])
    def test_guided_equals_enumeration_on_paper_examples(self, dataset_name):
        graph, keys = music_dataset() if dataset_name == "music" else business_dataset()
        evaluator = GuidedPairEvaluator(graph)
        eq = EquivalenceRelation()
        for key in keys:
            entities = graph.entities_of_type(key.target_type)
            for e1, e2 in itertools.combinations(entities, 2):
                guided = evaluator.identify(key, e1, e2, eq)
                enumerated = identify_pair_by_enumeration(graph, key, e1, e2, eq=eq)
                assert guided == enumerated, (key.name, e1, e2)
