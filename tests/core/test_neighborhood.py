"""Unit tests for d-neighbourhood extraction and the neighbourhood index."""

from __future__ import annotations

import pytest

from repro.core.graph import Graph
from repro.core.neighborhood import (
    NeighborhoodIndex,
    d_neighborhood_nodes,
    d_neighborhood_subgraph,
    radius_per_type,
)
from repro.core.triples import Literal
from repro.datasets.music import music_dataset


@pytest.fixture
def chain_graph() -> Graph:
    g = Graph()
    for index in range(5):
        g.add_entity(f"n{index}", "node")
    for index in range(4):
        g.add_edge(f"n{index}", "next", f"n{index + 1}")
    g.add_value("n0", "label", "start")
    return g


class TestDNeighborhood:
    def test_radius_zero_is_just_the_entity(self, chain_graph: Graph):
        assert d_neighborhood_nodes(chain_graph, "n2", 0) == {"n2"}

    def test_radius_grows_symmetrically(self, chain_graph: Graph):
        nodes = d_neighborhood_nodes(chain_graph, "n2", 1)
        assert nodes == {"n1", "n2", "n3"}
        nodes2 = d_neighborhood_nodes(chain_graph, "n2", 2)
        assert nodes2 == {"n0", "n1", "n2", "n3", "n4"}
        nodes3 = d_neighborhood_nodes(chain_graph, "n2", 3)
        assert Literal("start") in nodes3

    def test_negative_radius_rejected(self, chain_graph: Graph):
        with pytest.raises(ValueError):
            d_neighborhood_nodes(chain_graph, "n0", -1)

    def test_subgraph_induced(self, chain_graph: Graph):
        sub = d_neighborhood_subgraph(chain_graph, "n2", 1)
        assert sub.num_entities == 3
        assert sub.has_triple("n1", "next", "n2")
        assert not sub.has_triple("n0", "next", "n1")


class TestNeighborhoodIndex:
    def test_radius_per_type_uses_keys(self):
        graph, keys = music_dataset()
        radii = radius_per_type(keys)
        assert radii == {"album": 1, "artist": 1}

    def test_index_caches_and_reports_sizes(self):
        graph, keys = music_dataset()
        index = NeighborhoodIndex(graph, keys)
        nodes = index.nodes("alb1")
        assert "alb1" in nodes and "art1" in nodes
        assert index.nodes("alb1") is nodes  # cached object reused
        index.precompute(["alb2", "art1"])
        assert len(index) == 3
        assert index.total_size() >= index.max_size() > 0
        assert index.cached_entities() == {"alb1", "alb2", "art1"}

    def test_radius_for_unkeyed_type_is_zero(self):
        graph, keys = music_dataset()
        graph.add_entity("stray", "label")
        index = NeighborhoodIndex(graph, keys)
        assert index.radius_for("stray") == 0
        assert index.nodes("stray") == {"stray"}

    def test_restrict_keeps_entity(self):
        graph, keys = music_dataset()
        index = NeighborhoodIndex(graph, keys)
        index.nodes("alb1")
        index.restrict("alb1", {"art1"})
        assert index.nodes("alb1") == {"alb1", "art1"}

    def test_subgraph_view(self):
        graph, keys = music_dataset()
        index = NeighborhoodIndex(graph, keys)
        sub = index.subgraph("alb1")
        assert sub.has_entity("alb1")
        assert sub.num_triples <= graph.num_triples
