"""Unit tests for graph patterns and their validation."""

from __future__ import annotations

import pytest

from repro.core.pattern import (
    GraphPattern,
    NodeKind,
    PatternTriple,
    constant,
    designated,
    entity_var,
    value_var,
    wildcard,
)
from repro.exceptions import PatternError


def simple_pattern() -> GraphPattern:
    x = designated("x", "album")
    return GraphPattern(
        [
            PatternTriple(x, "name_of", value_var("name")),
            PatternTriple(x, "recorded_by", entity_var("artist1", "artist")),
        ],
        name="Q1",
    )


class TestPatternNodes:
    def test_constructors_set_kinds(self):
        assert designated("x", "t").kind is NodeKind.DESIGNATED
        assert entity_var("y", "t").kind is NodeKind.ENTITY_VAR
        assert value_var("v").kind is NodeKind.VALUE_VAR
        assert wildcard("w", "t").kind is NodeKind.WILDCARD
        assert constant("UK").kind is NodeKind.CONSTANT

    def test_entity_kinds_require_type(self):
        with pytest.raises(PatternError):
            designated("x", "")

    def test_value_kinds_reject_type(self):
        with pytest.raises(PatternError):
            from repro.core.pattern import PatternNode

            PatternNode("v", NodeKind.VALUE_VAR, etype="album")

    def test_constant_requires_value(self):
        with pytest.raises(PatternError):
            from repro.core.pattern import PatternNode

            PatternNode("c", NodeKind.CONSTANT)

    def test_predicates_helpers(self):
        node = entity_var("y", "t")
        assert node.is_entity and node.is_entity_variable
        assert not node.is_value
        assert value_var("v").is_value


class TestPatternValidation:
    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            GraphPattern([])

    def test_exactly_one_designated_variable(self):
        y = entity_var("y", "album")
        with pytest.raises(PatternError):
            GraphPattern([PatternTriple(y, "name_of", value_var("n"))])
        x1 = designated("x1", "album")
        x2 = designated("x2", "album")
        with pytest.raises(PatternError):
            GraphPattern([PatternTriple(x1, "related_to", x2)])

    def test_subject_must_be_entity_kind(self):
        x = designated("x", "album")
        with pytest.raises(PatternError):
            GraphPattern([PatternTriple(value_var("v"), "p", x)])

    def test_inconsistent_node_reuse_rejected(self):
        x = designated("x", "album")
        with pytest.raises(PatternError):
            GraphPattern(
                [
                    PatternTriple(x, "p", entity_var("y", "artist")),
                    PatternTriple(x, "q", entity_var("y", "company")),
                ]
            )

    def test_disconnected_pattern_rejected(self):
        x = designated("x", "album")
        a = wildcard("a", "artist")
        b = wildcard("b", "artist")
        with pytest.raises(PatternError):
            GraphPattern(
                [
                    PatternTriple(x, "p", value_var("v")),
                    PatternTriple(a, "q", b),
                ]
            )


class TestPatternProperties:
    def test_size_and_nodes(self):
        pattern = simple_pattern()
        assert pattern.size == 2
        assert len(pattern) == 2
        assert pattern.node_names() == {"x", "name", "artist1"}
        assert pattern.node("name").is_value_variable
        with pytest.raises(PatternError):
            pattern.node("missing")

    def test_recursive_flag(self):
        pattern = simple_pattern()
        assert pattern.is_recursive
        assert not pattern.is_value_based
        x = designated("x", "album")
        value_based = GraphPattern([PatternTriple(x, "name_of", value_var("n"))])
        assert value_based.is_value_based

    def test_radius(self):
        pattern = simple_pattern()
        assert pattern.radius == 1
        x = designated("x", "street")
        w = wildcard("w", "city")
        chain = GraphPattern(
            [
                PatternTriple(x, "in", w),
                PatternTriple(w, "zip", value_var("z")),
            ]
        )
        assert chain.radius == 2

    def test_entity_variable_types(self):
        assert simple_pattern().entity_variable_types() == {"artist"}

    def test_target_type_and_designated(self):
        pattern = simple_pattern()
        assert pattern.target_type == "album"
        assert pattern.designated.name == "x"

    def test_adjacent_triples(self):
        pattern = simple_pattern()
        assert len(pattern.adjacent_triples("x")) == 2
        assert len(pattern.adjacent_triples("name")) == 1

    def test_equality_and_describe(self):
        assert simple_pattern() == simple_pattern()
        text = simple_pattern().describe()
        assert "name_of" in text and "recorded_by" in text
