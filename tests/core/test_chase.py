"""Tests of the sequential chase (Section 3) on the paper's examples."""

from __future__ import annotations

import pytest

from repro.core.chase import ChaseResult, candidate_pairs, chase, entities_identified
from repro.core.key import KeySet
from repro.datasets.music import key_q1, key_q2, key_q3
from repro.exceptions import MatchingError


class TestCandidatePairs:
    def test_candidates_are_same_type_keyed_pairs(self, music):
        graph, keys, _ = music
        pairs = candidate_pairs(graph, keys)
        assert ("alb1", "alb2") in pairs
        assert ("art1", "art3") in pairs
        assert all(graph.entity_type(a) == graph.entity_type(b) for a, b in pairs)
        # 3 albums and 3 artists → 3 + 3 candidate pairs
        assert len(pairs) == 6

    def test_no_candidates_without_keys(self, music):
        graph, _, _ = music
        assert candidate_pairs(graph, KeySet()) == []


class TestChaseExamples:
    def test_example7_music(self, music):
        """Example 7: (alb1, alb2) by Q2, then (art1, art2) by Q3."""
        graph, keys, expected = music
        result = chase(graph, keys)
        assert result.pairs() == expected
        step_albums = result.step_for("alb1", "alb2")
        step_artists = result.step_for("art1", "art2")
        assert step_albums is not None and step_albums.key_name == "Q2"
        assert step_artists is not None and step_artists.key_name == "Q3"
        # the artists' identification depends on the albums' identification
        assert ("alb1", "alb2") in step_artists.prerequisites

    def test_example7_business(self, business):
        graph, keys, expected = business
        result = chase(graph, keys)
        assert result.pairs() == expected

    def test_address_q6(self, address):
        graph, keys, expected = address
        result = chase(graph, keys)
        assert result.pairs() == expected

    def test_decision_problem_wrapper(self, music):
        graph, keys, _ = music
        assert entities_identified(graph, keys, "alb1", "alb2")
        assert not entities_identified(graph, keys, "alb1", "alb3")

    def test_empty_keyset_identifies_nothing(self, music):
        graph, _, _ = music
        result = chase(graph, KeySet())
        assert result.pairs() == set()

    def test_summary_and_counters(self, music):
        graph, keys, _ = music
        result = chase(graph, keys)
        summary = result.summary()
        assert summary["identified_pairs"] == 2
        assert summary["direct_steps"] == 2
        assert summary["rounds"] >= 2
        assert result.checks > 0
        assert result.eval_stats.work > 0

    def test_unknown_entity_in_explicit_order_rejected(self, music):
        graph, keys, _ = music
        with pytest.raises(MatchingError):
            chase(graph, keys, pair_order=[("alb1", "ghost")])


class TestChaseOrders:
    """Proposition 1 (Church–Rosser): the chase result is order-independent."""

    def test_reversed_pair_order(self, music):
        graph, keys, expected = music
        pairs = candidate_pairs(graph, keys)
        forward = chase(graph, keys, pair_order=pairs)
        backward = chase(graph, keys, pair_order=list(reversed(pairs)))
        assert forward.pairs() == backward.pairs() == expected

    def test_reversed_key_order(self, music):
        graph, keys, expected = music
        reordered = [key_q3(), key_q2(), key_q1()]
        result = chase(graph, keys, key_order=reordered)
        assert result.pairs() == expected

    def test_without_neighborhood_locality(self, music):
        """Data locality: restricting checks to d-neighbourhoods changes nothing."""
        graph, keys, expected = music
        with_nbhd = chase(graph, keys, use_neighborhoods=True)
        without_nbhd = chase(graph, keys, use_neighborhoods=False)
        assert with_nbhd.pairs() == without_nbhd.pairs() == expected

    def test_provenance_can_be_disabled(self, music):
        graph, keys, expected = music
        result = chase(graph, keys, record_provenance=False)
        assert result.pairs() == expected
        assert result.steps == []
