"""Unit tests for the primitive data model (entities, literals, triples)."""

from __future__ import annotations

import pytest

from repro.core.triples import Entity, Literal, Triple, as_object, is_entity_ref, is_literal


class TestEntity:
    def test_requires_non_empty_id(self):
        with pytest.raises(ValueError):
            Entity("", "album")

    def test_requires_non_empty_type(self):
        with pytest.raises(ValueError):
            Entity("alb1", "")

    def test_equality_and_hash(self):
        assert Entity("alb1", "album") == Entity("alb1", "album")
        assert hash(Entity("alb1", "album")) == hash(Entity("alb1", "album"))
        assert Entity("alb1", "album") != Entity("alb1", "artist")


class TestLiteral:
    def test_value_equality(self):
        assert Literal("1996") == Literal("1996")
        assert Literal("1996") != Literal(1996)

    def test_unhashable_value_rejected(self):
        with pytest.raises(TypeError):
            Literal(["a", "list"])

    def test_usable_in_sets(self):
        assert len({Literal("a"), Literal("a"), Literal("b")}) == 2


class TestTriple:
    def test_object_kind_helpers(self):
        value_triple = Triple("alb1", "name_of", Literal("Anthology 2"))
        edge_triple = Triple("alb1", "recorded_by", "art1")
        assert value_triple.object_is_value()
        assert not value_triple.object_is_entity()
        assert edge_triple.object_is_entity()
        assert not edge_triple.object_is_value()

    def test_is_named_tuple(self):
        triple = Triple("s", "p", "o")
        subject, predicate, obj = triple
        assert (subject, predicate, obj) == ("s", "p", "o")


class TestHelpers:
    def test_is_literal_and_is_entity_ref(self):
        assert is_literal(Literal(3))
        assert not is_literal("e1")
        assert is_entity_ref("e1")
        assert not is_entity_ref(Literal(3))

    def test_as_object_wraps_non_strings(self):
        assert as_object(42) == Literal(42)
        assert as_object("e1") == "e1"
        assert as_object(Literal("x")) == Literal("x")
