"""Wire serialization of MatchConfig: strict, round-trippable JSON."""

from __future__ import annotations

import json

import pytest

from repro.api.config import MatchConfig
from repro.exceptions import ConfigError


def test_round_trip_preserves_every_field(tmp_path):
    config = MatchConfig(
        algorithm="EMOptVC",
        processors=8,
        executor="thread",
        workers=3,
        snapshot_store=tmp_path / "store",
        incremental=True,
        options={"fanout": 4},
    )
    rebuilt = MatchConfig.from_dict(json.loads(json.dumps(config.to_dict())))
    assert rebuilt.algorithm == "EMOptVC"
    assert rebuilt.processors == 8
    assert rebuilt.executor == "thread" and rebuilt.workers == 3
    assert rebuilt.snapshot_store == str(tmp_path / "store")  # path, not handle
    assert rebuilt.incremental is True
    assert rebuilt.options == {"fanout": 4}


def test_defaults_survive_an_empty_payload():
    config = MatchConfig.from_dict({})
    assert config == MatchConfig()


def test_unknown_fields_are_rejected():
    with pytest.raises(ConfigError, match="unknown config field"):
        MatchConfig.from_dict({"algorithm": "chase", "procesors": 2})


def test_ill_typed_options_are_rejected():
    with pytest.raises(ConfigError, match="options must be a mapping"):
        MatchConfig.from_dict({"options": [1, 2]})
    with pytest.raises(ConfigError, match="algorithm must be a string"):
        MatchConfig.from_dict({"algorithm": 7})
