"""Tests of MatchConfig validation and option passthrough."""

from __future__ import annotations

import pytest

from repro import MatchConfig, match_entities
from repro.datasets.music import music_dataset
from repro.exceptions import ConfigError, MatchingError


@pytest.fixture(scope="module")
def music():
    return music_dataset()


class TestMatchConfigValidation:
    def test_defaults_resolve(self):
        spec, options = MatchConfig().resolve()
        assert spec.name == "EMOptVC" and options == {}

    @pytest.mark.parametrize("processors", [0, -1, 2.5, True])
    def test_bad_processors_rejected(self, processors):
        with pytest.raises(ConfigError):
            MatchConfig(processors=processors)

    def test_unknown_algorithm_rejected_on_resolve(self):
        with pytest.raises(MatchingError):
            MatchConfig(algorithm="EMNope").resolve()

    @pytest.mark.parametrize(
        "algorithm", ["chase", "EMMR", "EMVF2MR", "EMVC"]
    )
    def test_backends_without_options_reject_fanout(self, algorithm):
        with pytest.raises(ConfigError, match="does not accept option"):
            MatchConfig(algorithm=algorithm, options={"fanout": 2}).resolve()

    def test_emoptvc_accepts_fanout_and_prioritize(self):
        config = MatchConfig(algorithm="EMOptVC", options={"fanout": 8, "prioritize": False})
        _, validated = config.resolve()
        assert validated == {"fanout": 8, "prioritize": False}

    def test_wrong_option_type_rejected(self):
        with pytest.raises(ConfigError, match="expects int"):
            MatchConfig(algorithm="EMOptVC", options={"fanout": "wide"}).resolve()

    def test_emoptmr_accepts_reduce_neighborhoods(self):
        config = MatchConfig(algorithm="EMOptMR", options={"reduce_neighborhoods": False})
        assert config.validated() is config

    def test_config_is_hashable_value_object(self):
        first = MatchConfig(algorithm="EMOptVC", options={"fanout": 2})
        second = MatchConfig(algorithm="EMOptVC", options={"fanout": 2})
        assert first == second and hash(first) == hash(second)
        assert len({first, second}) == 1

    def test_fluent_copies(self):
        base = MatchConfig(algorithm="EMVC", processors=8)
        tuned = base.using("EMOptVC", fanout=2).with_options(prioritize=True)
        assert base.algorithm == "EMVC" and base.options == {}
        assert tuned.algorithm == "EMOptVC" and tuned.processors == 8
        assert tuned.options == {"fanout": 2, "prioritize": True}
        assert "EMOptVC" in tuned.describe() and "fanout" in tuned.describe()


class TestDispatcherPassthrough:
    def test_match_entities_forwards_fanout(self, music):
        graph, keys = music
        generous = match_entities(graph, keys, algorithm="EMOptVC", fanout=64)
        stingy = match_entities(graph, keys, algorithm="EMOptVC", fanout=1)
        assert generous.pairs() == stingy.pairs()
        # a tighter fan-out budget defers forks instead of sending immediately
        assert stingy.cost_breakdown["deferred_forks"] >= generous.cost_breakdown["deferred_forks"]

    def test_match_entities_rejects_unknown_option(self, music):
        graph, keys = music
        with pytest.raises(ConfigError):
            match_entities(graph, keys, algorithm="EMMR", fanout=2)

    def test_match_entities_forwards_reduce_neighborhoods(self, music):
        graph, keys = music
        reduced = match_entities(graph, keys, algorithm="EMOptMR")
        unreduced = match_entities(graph, keys, algorithm="EMOptMR", reduce_neighborhoods=False)
        assert reduced.pairs() == unreduced.pairs()
        assert (
            reduced.stats.neighborhood_total <= unreduced.stats.neighborhood_total
        )


class TestRuntimeConfig:
    """executor= / workers= on MatchConfig and match_entities."""

    def test_executor_and_workers_accepted(self):
        config = MatchConfig(algorithm="EMMR", executor="process", workers=4)
        assert config.executor == "process" and config.workers == 4
        assert "executor=process" in config.describe()
        assert "workers=4" in config.describe()

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigError, match="unknown executor"):
            MatchConfig(executor="gpu")

    @pytest.mark.parametrize("workers", [0, -3, True, "two"])
    def test_invalid_workers_rejected(self, workers):
        with pytest.raises(ConfigError):
            MatchConfig(executor="thread", workers=workers)

    def test_workers_require_an_executor(self):
        with pytest.raises(ConfigError, match="workers requires an executor"):
            MatchConfig(workers=2)

    def test_resolve_validates_executor_capability_per_backend(self):
        MatchConfig(algorithm="EMOptVC", executor="serial").validated()
        with pytest.raises(ConfigError, match="does not support executor"):
            MatchConfig(algorithm="chase", executor="serial").validated()

    def test_hash_includes_runtime_fields(self):
        plain = MatchConfig(algorithm="EMMR")
        pooled = MatchConfig(algorithm="EMMR", executor="process", workers=2)
        assert hash(plain) != hash(pooled)

    def test_match_entities_forwards_executor(self, music):
        graph, keys = music
        classic = match_entities(graph, keys, algorithm="EMOptMR")
        pooled = match_entities(
            graph, keys, algorithm="EMOptMR", executor="thread", workers=2
        )
        assert pooled.pairs() == classic.pairs()
        assert pooled.wall_seconds > 0

    def test_match_entities_rejects_workers_without_executor(self, music):
        graph, keys = music
        with pytest.raises(ConfigError, match="workers requires an executor"):
            match_entities(graph, keys, algorithm="EMOptMR", workers=2)
