"""Async runs, cancellation, and concurrent artifact-sharing guarantees.

The contracts under test (the service layer's foundation):

* ``run_async`` resolves to a result bit-identical to a synchronous ``run``;
* concurrent ``run()`` / ``run_async()`` on one session serialize and each
  result matches the serial baseline;
* sibling sessions sharing one ``SessionArtifacts`` — or one snapshot store —
  build every expensive artifact exactly once (``snapshot_builds == 1``).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import ALGORITHMS, MatchSession
from repro.api.session import SessionArtifacts
from repro.exceptions import MatchingError
from repro.storage import SnapshotStore


def result_key(result):
    """A deterministic fingerprint of one run outcome (wall time excluded)."""
    return (
        result.algorithm,
        result.stats.identified_pairs,
        tuple(sorted(tuple(sorted(c)) for c in result.eq.nontrivial_classes())),
    )


class TestRunAsync:
    def test_future_matches_synchronous_run(self, music):
        graph, keys, expected = music
        baseline = MatchSession(graph).with_keys(keys).run("EMOptVC")
        session = MatchSession(graph).with_keys(keys)
        future = session.run_async("EMOptVC")
        result = future.result(timeout=60.0)
        assert result.pairs() == expected
        assert result_key(result) == result_key(baseline)
        assert len(session.history) == 1

    def test_future_carries_the_run_exception(self, music):
        graph, _keys, _expected = music
        session = MatchSession(graph)  # no keys: the run must fail
        future = session.run_async("EMOptVC")
        with pytest.raises(MatchingError, match="no keys"):
            future.result(timeout=60.0)

    def test_events_stream_a_background_run(self, music):
        graph, keys, expected = music
        session = MatchSession(graph).with_keys(keys)
        stream = session.events()
        future = session.run_async("EMMR")
        future.add_done_callback(lambda _: stream.close())
        stages = [event.stage for event in stream]
        assert future.result(timeout=60.0).pairs() == expected
        assert stages and stages[-1] == "done"

    def test_cancel_while_queued_behind_the_run_lock(self, music):
        graph, keys, expected = music
        session = MatchSession(graph).with_keys(keys)
        with session._lock:  # simulate a long-running foreground run
            future = session.run_async("EMOptVC")
            assert future.cancel()  # still waiting on the lock: cancellable
        assert future.cancelled()
        assert session.history == ()  # the run body never executed

    def test_cannot_cancel_a_started_run(self, music):
        graph, keys, expected = music
        session = MatchSession(graph).with_keys(keys)
        started = threading.Event()

        original = SessionArtifacts.snapshot

        def slow_snapshot(self):
            started.set()
            return original(self)

        SessionArtifacts.snapshot = slow_snapshot
        try:
            future = session.run_async("EMOptVC")
            assert started.wait(timeout=30.0)
            assert not future.cancel()  # already running
        finally:
            SessionArtifacts.snapshot = original
        assert future.result(timeout=60.0).pairs() == expected


class TestConcurrentOneSession:
    def test_fuzz_mixed_run_and_run_async(self, music):
        graph, keys, expected = music
        algorithms = sorted(ALGORITHMS)
        serial = {}
        for name in algorithms:
            serial[name] = result_key(MatchSession(graph).with_keys(keys).run(name))

        session = MatchSession(graph).with_keys(keys)
        jobs = [algorithms[i % len(algorithms)] for i in range(12)]
        outcomes = []
        failures = []

        def sync_job(name):
            try:
                outcomes.append((name, result_key(session.run(name))))
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        with ThreadPoolExecutor(max_workers=6) as pool:
            for i, name in enumerate(jobs):
                if i % 2:
                    pool.submit(sync_job, name)
                else:
                    future = session.run_async(name)
                    future.add_done_callback(
                        lambda f, n=name: outcomes.append((n, result_key(f.result())))
                    )
            pool.shutdown(wait=True)
        # run_async futures resolve on their own daemon threads; wait via history
        deadline = threading.Event()
        for _ in range(600):
            if len(outcomes) == len(jobs):
                break
            deadline.wait(0.05)
        assert not failures
        assert len(outcomes) == len(jobs)
        for name, key in outcomes:
            assert key == serial[name], name
        info = session.cache_info()
        assert info.snapshot_builds == 1
        assert info.traversal_order_builds == 1

    def test_concurrent_runs_build_each_flavor_once(self, music):
        graph, keys, _expected = music
        session = MatchSession(graph).with_keys(keys)
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda _: session.run("EMOptVC"), range(8)))
        info = session.cache_info()
        assert info.snapshot_builds == 1
        assert info.neighborhood_index_builds == 1
        assert info.product_graph_builds == 1


class TestSharedArtifacts:
    def test_sibling_sessions_share_one_artifacts_cache(self, music):
        graph, keys, expected = music
        artifacts = SessionArtifacts(graph, keys)
        sessions = [
            MatchSession(graph, keys, artifacts=artifacts) for _ in range(6)
        ]
        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(lambda s: s.run("EMOptVC"), sessions))
        assert all(result.pairs() == expected for result in results)
        info = artifacts.cache_info()
        assert info.snapshot_builds == 1
        assert info.neighborhood_index_builds == 1
        assert info.product_graph_builds == 1

    def test_shared_artifacts_reject_a_different_graph(self, music, business):
        graph, keys, _expected = music
        other_graph, _other_keys, _pairs = business
        artifacts = SessionArtifacts(graph, keys)
        with pytest.raises(MatchingError, match="different graph"):
            MatchSession(other_graph, keys, artifacts=artifacts)

    def test_sessions_sharing_a_store_build_the_snapshot_once(self, music, tmp_path):
        graph, keys, expected = music
        store = SnapshotStore(tmp_path / "store")
        sessions = [
            MatchSession(graph, keys, snapshot_store=store) for _ in range(6)
        ]
        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(lambda s: s.run("chase"), sessions))
        assert all(result.pairs() == expected for result in results)
        assert store.builds == 1  # one racer built; every sibling loaded
        assert store.hits == len(sessions) - 1
        total_builds = sum(s.cache_info().snapshot_builds for s in sessions)
        assert total_builds == 1
