"""Tests of the MatchSession facade: caching, consistency, incremental runs."""

from __future__ import annotations

import pytest

from repro import ALGORITHMS, Graph, MatchSession, Session, parse_keys
from repro.datasets.music import EXPECTED_IDENTIFIED_PAIRS, music_dataset
from repro.exceptions import ConfigError, MatchingError

ALBUM_KEYS = """
key album_by_name_and_year for album:
  x -[name_of]-> name*
  x -[release_year]-> year*
"""


def album_graph(with_second_year: bool = True) -> Graph:
    graph = Graph()
    graph.add_entity("alb1", "album")
    graph.add_entity("alb2", "album")
    graph.add_value("alb1", "name_of", "Anthology 2")
    graph.add_value("alb2", "name_of", "Anthology 2")
    graph.add_value("alb1", "release_year", "1996")
    if with_second_year:
        graph.add_value("alb2", "release_year", "1996")
    return graph


class TestFluentApi:
    def test_quickstart_chain(self):
        graph, keys = music_dataset()
        result = Session(graph).with_keys(keys).using("EMOptVC", processors=8, fanout=4).run()
        assert result.algorithm == "EMOptVC" and result.processors == 8
        assert result.pairs() == set(EXPECTED_IDENTIFIED_PAIRS)

    def test_every_registered_name_runs_through_using(self):
        graph, keys = music_dataset()
        session = MatchSession(graph).with_keys(keys)
        for name in ALGORITHMS:
            assert session.using(name).run().pairs() == set(EXPECTED_IDENTIFIED_PAIRS)

    def test_run_without_keys_raises(self):
        with pytest.raises(MatchingError, match="no keys"):
            MatchSession(album_graph()).run()

    def test_options_validated_per_backend(self):
        graph, keys = music_dataset()
        session = MatchSession(graph).with_keys(keys)
        with pytest.raises(ConfigError):
            session.run("EMMR", fanout=2)

    def test_history_records_provenance(self):
        graph, keys = music_dataset()
        session = MatchSession(graph).with_keys(keys)
        session.run("chase")
        session.run("EMOptVC", fanout=2)
        assert [config.algorithm for config, _ in session.history] == ["chase", "EMOptVC"]
        assert session.history[1][0].options == {"fanout": 2}
        assert session.history[1][1].algorithm == "EMOptVC"


@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_all_registered_algorithms_agree_on_paper_example(algorithm):
    graph, keys = music_dataset()
    session = MatchSession(graph).with_keys(keys)
    assert session.run(algorithm).pairs() == set(EXPECTED_IDENTIFIED_PAIRS)


class TestArtifactReuse:
    def test_neighborhood_index_built_once_across_two_runs(self):
        graph, keys = music_dataset()
        session = MatchSession(graph).with_keys(keys)
        session.run("EMVC")
        session.run("EMOptVC")
        assert session.cache_info().neighborhood_index_builds == 1

    def test_index_and_product_graph_shared_across_families(self):
        graph, keys = music_dataset()
        session = MatchSession(graph).with_keys(keys)
        results = session.run_all()
        info = session.cache_info()
        assert info.neighborhood_index_builds == 1
        assert info.product_graph_builds == 1  # EMVC and EMOptVC share one Gp
        assert info.traversal_order_builds == 1
        pairs = {frozenset(r.pairs()) for r in results.values()}
        assert len(pairs) == 1  # all backends agree

    def test_session_results_match_one_shot_runs(self):
        graph, keys = music_dataset()
        session = MatchSession(graph).with_keys(keys)
        from repro import match_entities

        for name in ALGORITHMS:
            assert session.run(name).pairs() == match_entities(graph, keys, algorithm=name).pairs()

    def test_reduced_flavor_does_not_stale_shared_index(self):
        graph, keys = music_dataset()
        session = MatchSession(graph).with_keys(keys)
        session.run("EMOptMR")  # restricts a *clone* of the shared index
        vc = session.run("EMVC")  # must still see unreduced neighbourhoods
        assert vc.pairs() == set(EXPECTED_IDENTIFIED_PAIRS)

    def test_with_new_keys_drops_caches(self):
        graph, keys = music_dataset()
        session = MatchSession(graph).with_keys(keys)
        session.run("EMVC")
        session.with_keys(parse_keys(ALBUM_KEYS))
        session.run("EMVC")
        assert session.cache_info().neighborhood_index_builds == 1  # fresh cache object

    def test_repassing_same_keyset_object_drops_caches(self):
        # a KeySet can be mutated in place; re-passing it must not serve
        # stale traversal orders / candidate sets from the old contents
        graph, keys = music_dataset()
        session = MatchSession(graph).with_keys(keys)
        session.run("EMOptVC")
        assert session.cache_info().neighborhood_index_builds == 1
        session.with_keys(keys)
        session.run("EMOptVC")
        assert session.cache_info().neighborhood_index_builds == 1  # rebuilt fresh


class TestIncrementalRematching:
    def test_rematch_after_add_value(self):
        graph = album_graph(with_second_year=False)
        session = MatchSession(graph).with_keys(parse_keys(ALBUM_KEYS)).using("EMOptVC")
        first = session.run()
        assert not first.identified("alb1", "alb2")
        graph.add_value("alb2", "release_year", "1996")
        second = session.rematch()
        assert second.identified("alb1", "alb2")

    def test_mutation_invalidates_only_stale_neighborhoods(self):
        graph = album_graph(with_second_year=False)
        session = MatchSession(graph).with_keys(parse_keys(ALBUM_KEYS))
        session.run("EMVC")
        graph.add_value("alb2", "release_year", "1996")
        session.run("EMVC")
        info = session.cache_info()
        # the index object survived the mutation (selective eviction, no rebuild)
        assert info.neighborhood_index_builds == 1
        assert info.invalidations == 1

    def test_rematch_consistent_across_backends_after_mutation(self):
        graph = album_graph(with_second_year=False)
        session = MatchSession(graph).with_keys(parse_keys(ALBUM_KEYS))
        session.run_all()
        graph.add_value("alb2", "release_year", "1996")
        results = session.run_all()
        for result in results.values():
            assert result.identified("alb1", "alb2"), result.algorithm


class TestObserverHooks:
    def test_round_events_delivered(self):
        graph, keys = music_dataset()
        events = []
        session = MatchSession(graph).with_keys(keys).on_progress(events.append)
        session.run("EMMR")
        stages = [event.stage for event in events]
        assert "round" in stages and stages[-1] == "done"
        rounds = [event.round for event in events if event.stage == "round"]
        assert rounds == sorted(rounds) and rounds[0] == 1

    def test_vertex_centric_stage_events(self):
        graph, keys = music_dataset()
        events = []
        session = MatchSession(graph).with_keys(keys).on_progress(events.append)
        session.run("EMOptVC")
        stages = {event.stage for event in events}
        assert {"candidates", "product-graph", "engine", "done"} <= stages

    def test_multiple_observers_all_notified(self):
        graph, keys = music_dataset()
        first, second = [], []
        session = MatchSession(graph).with_keys(keys)
        session.on_progress(first.append).on_progress(second.append)
        session.run("EMMR")
        assert len(first) == len(second) > 0


class TestGraphMutationJournal:
    def test_version_increases_on_mutation(self):
        graph = Graph()
        v0 = graph.version
        graph.add_entity("e1", "thing")
        assert graph.version > v0
        v1 = graph.version
        graph.add_value("e1", "name_of", "x")
        assert graph.version > v1

    def test_touched_since_reports_mutated_nodes(self):
        graph = album_graph()
        version = graph.version
        assert graph.touched_since(version) == set()
        graph.add_value("alb2", "release_year", "1997")
        touched = graph.touched_since(version)
        assert touched is not None and "alb2" in touched

    def test_duplicate_triple_does_not_bump_version(self):
        graph = album_graph()
        version = graph.version
        graph.add_value("alb1", "release_year", "1996")  # already present
        assert graph.version == version
